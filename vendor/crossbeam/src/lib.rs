//! Minimal offline stand-in for `crossbeam`, covering the scoped-thread
//! API this workspace uses (`crossbeam::thread::scope` + `Scope::spawn`).
//! Backed by `std::thread::scope`, with crossbeam's `Result` return
//! (child panics surface as `Err` instead of propagating).

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; closures passed to [`Scope::spawn`] receive it so
    /// they can spawn further scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread, joined automatically at scope exit.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope whose threads all join before return.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if `f` or any spawned
    /// thread panics.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let counter = AtomicUsize::new(0);
        let r = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(r.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
