//! Offline stand-in for `serde_derive`, written directly against
//! `proc_macro` (no syn/quote — the build container has no registry).
//!
//! Supports the shapes this workspace actually derives on:
//!
//! * structs with named fields → JSON objects;
//! * tuple structs (newtypes serialize as their inner value, wider
//!   tuples as arrays);
//! * enums with unit variants (→ the variant name as a string), tuple
//!   variants and struct variants (→ externally tagged objects) —
//!   matching upstream serde's default representation.
//!
//! `#[serde(...)]` attributes are NOT interpreted (none exist in this
//! workspace); generics are not supported. `Deserialize` expands to
//! nothing: the workspace only ever deserializes into
//! `serde_json::Value`, which has its own parser.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives nothing: deserialization into concrete types is unused here.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attributes (including doc comments, which arrive
    /// pre-expanded to `#[doc = "..."]`).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Consumes tokens until a top-level comma (angle-bracket aware) or
    /// the end of the stream. Returns true if a comma was consumed.
    fn skip_until_comma(&mut self) -> bool {
        let mut angle: i32 = 0;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        self.pos += 1;
                        return true;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
        false
    }
}

/// Parses `{ field: Type, ... }` contents into field names.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        cur.skip_attributes();
        cur.skip_visibility();
        match cur.next() {
            Some(TokenTree::Ident(id)) => {
                match cur.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => {
                        return Err(format!("expected ':' after field `{id}`, found {other:?}"))
                    }
                }
                fields.push(id.to_string());
                if !cur.skip_until_comma() {
                    break;
                }
            }
            None => break,
            other => return Err(format!("unexpected token in fields: {other:?}")),
        }
    }
    Ok(fields)
}

/// Counts top-level comma-separated items in a tuple body `( ... )`.
fn tuple_arity(body: TokenStream) -> usize {
    let mut cur = Cursor::new(body);
    if cur.peek().is_none() {
        return 0;
    }
    let mut arity = 1;
    loop {
        // A trailing comma with nothing after it doesn't add an item.
        if !cur.skip_until_comma() {
            break;
        }
        if cur.peek().is_none() {
            break;
        }
        arity += 1;
    }
    arity
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

fn enum_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        cur.skip_attributes();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("unexpected token in enum: {other:?}")),
        };
        match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                cur.pos += 1;
                variants.push(Variant::Tuple(name, arity));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                cur.pos += 1;
                variants.push(Variant::Struct(name, fields));
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip any discriminant (`= expr`) and the separating comma.
        if !cur.skip_until_comma() {
            break;
        }
    }
    Ok(variants)
}

fn generate(input: TokenStream) -> Result<String, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let kind = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    // Reject generics: nothing in this workspace derives on generic types.
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    let body = match kind.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                struct_body(&fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                tuple_struct_body(tuple_arity(g.stream()))
            }
            // Unit struct (`struct X;`).
            _ => "serde::value::Value::Null".to_string(),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                enum_body(&name, &enum_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive Serialize for `{other}`")),
    };

    Ok(format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::value::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    ))
}

fn struct_body(fields: &[String]) -> String {
    let mut out = String::from("let mut __m = serde::value::Map::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__m.insert({f:?}.to_string(), serde::Serialize::to_value(&self.{f}));\n"
        ));
    }
    out.push_str("serde::value::Value::Object(__m)");
    out
}

fn tuple_struct_body(arity: usize) -> String {
    match arity {
        0 => "serde::value::Value::Null".to_string(),
        // Newtype: serialize as the inner value (upstream default).
        1 => "serde::Serialize::to_value(&self.0)".to_string(),
        n => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::value::Value::Array(vec![{}])", items.join(", "))
        }
    }
}

fn enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match v {
            Variant::Unit(vn) => arms.push_str(&format!(
                "{name}::{vn} => serde::value::Value::String({vn:?}.to_string()),\n"
            )),
            Variant::Tuple(vn, arity) => {
                let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                let inner = if *arity == 1 {
                    "serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    format!("serde::value::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({}) => {{\n\
                         let mut __m = serde::value::Map::new();\n\
                         __m.insert({vn:?}.to_string(), {inner});\n\
                         serde::value::Value::Object(__m)\n\
                     }}\n",
                    binders.join(", ")
                ));
            }
            Variant::Struct(vn, fields) => {
                let mut inner = String::from("let mut __fm = serde::value::Map::new();\n");
                for f in fields {
                    inner.push_str(&format!(
                        "__fm.insert({f:?}.to_string(), serde::Serialize::to_value({f}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => {{\n\
                         {inner}\
                         let mut __m = serde::value::Map::new();\n\
                         __m.insert({vn:?}.to_string(), serde::value::Value::Object(__fm));\n\
                         serde::value::Value::Object(__m)\n\
                     }}\n",
                    fields.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}
