//! Minimal offline stand-in for `criterion`.
//!
//! Runs each benchmark for a short wall-clock budget and prints the
//! mean iteration time. No statistics, plots, or baselines — just
//! enough to keep `cargo bench` useful for spotting gross regressions
//! in a container without a crates registry.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to benchmark closures to drive timed iterations.
pub struct Bencher {
    /// Accumulated measured time.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Per-benchmark time budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times repeated calls of `routine` until the budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let per = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if per >= 1e9 {
        (per / 1e9, "s")
    } else if per >= 1e6 {
        (per / 1e6, "ms")
    } else if per >= 1e3 {
        (per / 1e3, "µs")
    } else {
        (per, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter  ({} iters)", b.iters);
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` runs every benchmark exactly once
        // (smoke mode, mirroring real criterion): a zero budget makes
        // the iteration loops below break after their first pass.
        if std::env::args().any(|a| a == "--test") {
            return Criterion {
                budget: Duration::ZERO,
            };
        }
        // Keep runs quick; override with CRITERION_BUDGET_MS.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(name, &b);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub's budget is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
