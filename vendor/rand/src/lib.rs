//! Minimal offline stand-in for the `rand` crate.
//!
//! The build container has no reachable crates registry, so the
//! workspace vendors the small API surface it actually uses:
//! [`rngs::StdRng`] (a xoshiro256++ generator seeded via SplitMix64),
//! the [`RngCore`] / [`SeedableRng`] traits, and the [`Rng`] extension
//! trait with `gen`, `gen_range`, and `fill`.
//!
//! Streams are deterministic per seed, which is all the simulator needs
//! (reproducible experiments), but this is NOT the upstream rand
//! algorithm: seeds produce different (still high-quality) streams.

use std::fmt;
use std::ops::Range;

/// Error type carried by [`RngCore::try_fill_bytes`]. The vendored
/// generators are infallible, so this is never constructed by them.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Core random-number generation: raw word and byte output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; infallible here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end - self.start) as u64;
                // Modulo with rejection of the biased tail.
                let zone = u64::MAX - u64::MAX.wrapping_rem(width);
                loop {
                    let v = rng.next_u64();
                    if v < zone || zone == 0 {
                        return self.start + (v % width) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = self.end.wrapping_sub(self.start) as $u as u64;
                let zone = u64::MAX - u64::MAX.wrapping_rem(width);
                loop {
                    let v = rng.next_u64();
                    if v < zone || zone == 0 {
                        return self.start.wrapping_add((v % width) as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        loop {
            let u = f64::sample_standard(rng);
            let v = self.start + u * (self.end - self.start);
            // Guard against rounding landing exactly on the excluded end.
            if v < self.end {
                return v.max(self.start);
            }
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        loop {
            let u = f32::sample_standard(rng);
            let v = self.start + u * (self.end - self.start);
            if v < self.end {
                return v.max(self.start);
            }
        }
    }
}

/// Extension methods over [`RngCore`], mirroring the subset of the real
/// `Rng` trait this workspace calls.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
    /// Draws uniformly from `range` (half-open).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }
}
