//! Minimal offline stand-in for `serde`.
//!
//! The real serde's visitor-based model is far more than this workspace
//! needs: every serialized type here is a plain struct or enum rendered
//! to JSON, and deserialization only ever targets `serde_json::Value`.
//! So [`Serialize`] is a single method producing a [`value::Value`]
//! tree, and [`Deserialize`] is a marker satisfied by the derive.
//!
//! The `Serialize`/`Deserialize` derive macros are re-exported from the
//! companion `serde_derive` crate, so `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` work exactly as
//! with upstream serde (for attribute-free types).

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Types renderable to a JSON-like [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Marker for types the derive claims deserializable. The stub never
/// deserializes into concrete types (only into [`Value`]), so there are
/// no methods.
pub trait DeserializeOwned {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
impl_serialize_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

/// Externally tagged, matching upstream serde's `Result` encoding.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        match self {
            Ok(v) => m.insert("Ok".to_string(), v.to_value()),
            Err(e) => m.insert("Err".to_string(), e.to_value()),
        };
        Value::Object(m)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_string(), v.to_value());
        }
        m.sort_keys();
        Value::Object(m)
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_string(), v.to_value());
        }
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
