//! The JSON-like value tree shared by the vendored `serde` and
//! `serde_json` stand-ins.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point.
    F64(f64),
}

impl Number {
    /// Wraps an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number::U64(v)
    }
    /// Wraps a signed integer (normalised to `U64` when non-negative).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::U64(v as u64)
        } else {
            Number::I64(v)
        }
    }
    /// Wraps a float.
    pub fn from_f64(v: f64) -> Self {
        Number::F64(v)
    }
    /// The value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(_) => None,
            Number::F64(_) => None,
        }
    }
    /// The value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }
    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(v) => Some(v as f64),
            Number::I64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    if v == v.trunc() && v.abs() < 1e15 {
                        // Match serde_json: floats always carry a ".0".
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serde_json writes null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An ordered string-keyed map (insertion order preserved, like
/// serde_json's `preserve_order` feature).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts `key` → `value`, replacing any existing entry in place.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates `(key, value)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts entries by key (used for deterministic map serialization).
    pub fn sort_keys(&mut self) {
        self.entries.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

/// A JSON value tree, API-compatible with the slice of `serde_json::Value`
/// this workspace uses.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map<String, Value>),
}

impl Value {
    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    /// The value as an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    /// Object field lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Compact JSON rendering (matches `serde_json::to_string`).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}
