//! Minimal offline stand-in for `serde_json`.
//!
//! Serialization renders the [`Value`] tree produced by the vendored
//! `serde::Serialize`; deserialization parses JSON text into [`Value`]
//! (the only target type this workspace ever deserializes into).

use std::fmt;

pub use serde::value::{Map, Number, Value};

/// Error from JSON parsing or serialization.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` straight to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            let n = map.len();
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < n {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        // Scalars, empty arrays and empty objects render compactly.
        other => out.push_str(&other.to_string()),
    }
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let text = r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5}"#;
        let v = from_str(text).unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2].as_str(), Some("x\n"));
        assert_eq!(v["c"].as_f64(), Some(-2.5));
        let again = from_str(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn pretty_parses_back() {
        let v = from_str(r#"{"rows":[{"k":1},{"k":2}],"empty":[]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{oops}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }
}
