//! Minimal offline stand-in for `parking_lot`: the `Mutex`/`RwLock`
//! API (no poisoning, guard returned directly from `lock`), backed by
//! `std::sync`. A poisoned std lock — only possible after a panic while
//! holding it — is recovered into its inner value, matching
//! parking_lot's poison-free semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A poison-free mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
