//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and tuple
//! strategies, `prop::sample::select`, `proptest::collection::vec`, and
//! `any::<bool>()`. Cases are generated from a deterministic RNG seeded
//! by the test name and case index, so failures are reproducible; there
//! is NO shrinking — a failing case reports its values directly (every
//! call site here formats the inputs into the assertion message or can
//! rerun under the same seed).

pub mod strategy {
    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = ((hi - lo) as u64).wrapping_add(1);
                    if width == 0 {
                        // Full-domain range: use the raw draw.
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % width) as $t
                }
            }
        )*};
    }
    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_sint {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add((rng.next_u64() % width) as $t)
                }
            }
        )*};
    }
    impl_range_strategy_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + rng.unit() * (self.end - self.start);
            if v < self.end {
                v.max(self.start)
            } else {
                self.start
            }
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + (rng.unit() as f32) * (self.end - self.start);
            if v < self.end {
                v.max(self.start)
            } else {
                self.start
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Chooses uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty set");
        Select { options }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with random length and elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % width) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` strategy with length drawn from `len` (half-open).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is skipped.
        Reject(String),
        /// The case failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            }
        }
    }

    /// Runner configuration (the supported knobs).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 32,
                max_shrink_iters: 0,
            }
        }
    }
}

/// Drives one property: runs cases until `config.cases` succeed, skipping
/// rejected cases (with a cap to avoid livelock), panicking on failure.
pub fn run_proptest<F>(config: &test_runner::ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut strategy::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    // FNV-1a over the test name gives a stable per-test seed base.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        base ^= u64::from(*b);
        base = base.wrapping_mul(0x1000_0000_01b3);
    }
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(64);
    for attempt in 0..max_attempts {
        if successes >= config.cases {
            return;
        }
        let mut rng = strategy::TestRng::new(base.wrapping_add(u64::from(attempt)));
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(test_runner::TestCaseError::Reject(_)) => rejects += 1,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed (seed {base}, case {attempt}): {msg}")
            }
        }
    }
    if successes == 0 {
        panic!("proptest `{name}`: all {rejects} generated cases were rejected");
    }
}

pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Grammar-compatible with upstream for the
/// forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config = $cfg;
                $crate::run_proptest(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                    let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property, failing the case (not the process) on false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u64..17,
            b in -4i32..9,
            f in 0.5f64..1.5,
            flag in any::<bool>(),
            pick in prop::sample::select(vec![2u8, 4, 8]),
            xs in crate::collection::vec(0u32..100, 1..20),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..9).contains(&b));
            prop_assert!((0.5..1.5).contains(&f));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!([2u8, 4, 8].contains(&pick));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|x| *x < 100));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..10) {
            prop_assume!(n < 5);
            prop_assert!(n < 5);
        }
    }

    #[test]
    #[should_panic(expected = "failed (seed")]
    fn failing_property_panics() {
        crate::run_proptest(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::fail("nope")) },
        );
    }
}
