//! Property tests for the span machinery (ISSUE 5 satellite): every
//! completed span tree must have `end ≥ begin`, leg intervals nested
//! within the span, per-leg slices summing exactly to the leg interval,
//! and critical-path attribution conserving the span's duration
//! (`attributed + unattributed == end − begin`).

use proptest::prelude::*;
use rolo_disk::ServiceBreakdown;
use rolo_obs::{
    critical_path, BgSpan, BgSpanKind, LegFlavor, Phase, RequestSpan, SpanAnalysis, SpanCollector,
};
use rolo_sim::{Duration, SimTime};
use rolo_trace::ReqKind;

/// One synthetic leg drawn by the strategy below: a submit delay after
/// span begin, three wait components, three service components (µs
/// each) and a flavor index.
type LegDraw = (u64, u64, u64, u64, (u64, u64, u64), usize);

/// The strategy for one leg. Tuples are the vendored proptest's
/// combinator, so the fields are positional; see [`LegDraw`].
fn leg_strategy() -> impl Strategy<Value = LegDraw> {
    (
        0u64..10_000,                            // submit_delta
        0u64..5_000,                             // spin-up stall
        0u64..5_000,                             // bg interference
        0u64..5_000,                             // queue wait
        (0u64..5_000, 0u64..5_000, 1u64..5_000), // seek, rotation, transfer
        0usize..4,                               // flavor index
    )
}

const FLAVORS: [LegFlavor; 4] = [
    LegFlavor::Transfer,
    LegFlavor::LogAppend,
    LegFlavor::MirrorCopy,
    LegFlavor::DegradedRedirect,
];

/// Builds a finished span from drawn legs via the collector API,
/// exactly the way the simulation driver does.
fn build_span(begin: u64, legs: &[LegDraw]) -> (RequestSpan, Vec<BgSpan>) {
    build_span_under(BgSpanKind::Destage, begin, legs)
}

/// Same, with the covering background span of a chosen kind (destage
/// vs. compaction interference are attributed to different phases).
fn build_span_under(kind: BgSpanKind, begin: u64, legs: &[LegDraw]) -> (RequestSpan, Vec<BgSpan>) {
    let mut c = SpanCollector::new();
    let disks: Vec<usize> = (0..legs.len()).collect();
    let bg = c.begin_bg(kind, &disks, SimTime::from_micros(begin));
    c.open_request(1, ReqKind::Write, SimTime::from_micros(begin));
    let mut close_at = begin;
    for (i, &(submit_delta, stall, interference, queue, (seek, rotation, transfer), flavor)) in
        legs.iter().enumerate()
    {
        let io = 100 + i as u64;
        let submit = begin + submit_delta;
        let start = submit + stall + interference + queue;
        let end = start + seek + rotation + transfer;
        close_at = close_at.max(end);
        c.tag_io(io, 1, FLAVORS[flavor]);
        c.record_leg(
            io,
            i, // one disk per leg
            &ServiceBreakdown {
                id: io,
                background: false,
                submit: SimTime::from_micros(submit),
                start: SimTime::from_micros(start),
                end: SimTime::from_micros(end),
                seek: Duration::from_micros(seek),
                rotation: Duration::from_micros(rotation),
                transfer: Duration::from_micros(transfer),
                spinup_stall: Duration::from_micros(stall),
                bg_interference: Duration::from_micros(interference),
            },
        );
    }
    c.close_request(1, SimTime::from_micros(close_at));
    c.end_bg(bg, SimTime::from_micros(close_at));
    let (mut spans, bgs) = c.into_finished();
    assert_eq!(spans.len(), 1);
    (spans.pop().unwrap(), bgs)
}

proptest! {
    #[test]
    fn prop_span_tree_invariants(
        begin in 0u64..1_000_000,
        legs in prop::collection::vec(leg_strategy(), 1..6),
    ) {
        let (span, _) = build_span(begin, &legs);

        // end ≥ begin, legs nested, slices sum to leg intervals.
        prop_assert!(span.end >= span.begin);
        span.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(span.legs.len(), legs.len());

        // Critical-path attribution conserves the span duration exactly
        // (integer microseconds: "within rounding" is zero here).
        let path = critical_path(&span);
        prop_assert_eq!(path.total_us, span.duration().as_micros());
        prop_assert_eq!(
            path.attributed_us() + path.unattributed_us,
            path.total_us,
            "phase totals + unattributed must equal the span duration"
        );
    }

    #[test]
    fn prop_single_leg_at_begin_attributes_fully(
        begin in 0u64..1_000_000,
        leg in leg_strategy(),
    ) {
        // A leg submitted at admission (how user sub-I/Os behave in the
        // simulator) leaves nothing unattributed.
        let mut leg = leg;
        leg.0 = 0;
        let (span, _) = build_span(begin, std::slice::from_ref(&leg));
        let path = critical_path(&span);
        prop_assert_eq!(path.unattributed_us, 0);
        prop_assert_eq!(path.attributed_us(), span.duration().as_micros());
    }

    #[test]
    fn prop_analysis_attribution_bounded(
        begin in 0u64..100_000,
        spans in prop::collection::vec(
            prop::collection::vec(leg_strategy(), 1..4), 1..10),
    ) {
        let mut analysis = SpanAnalysis::default();
        for legs in &spans {
            let (span, _) = build_span(begin, legs);
            analysis.observe(&span);
        }
        let f = analysis.all.attributed_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
        let total: u64 = analysis.all.phase_us.iter().sum();
        prop_assert!(total + analysis.all.unattributed_us == analysis.all.total_us);
    }

    #[test]
    fn prop_interference_links_bg_causality(
        begin in 0u64..100_000,
        leg in leg_strategy(),
    ) {
        let mut leg = leg;
        leg.2 = leg.2.max(1); // force non-zero interference
        let (span, bgs) = build_span(begin, std::slice::from_ref(&leg));
        // Leg 0 runs on disk 0, which the destage span covers.
        let l = &span.legs[0];
        prop_assert_eq!(l.delayed_by, Some(bgs[0].id));
        prop_assert!(bgs[0].delayed.contains(&span.id));
    }

    /// Interference under an open compaction span is attributed to the
    /// `Compaction` phase — and only the interference slice moves there;
    /// the attribution identity stays conserved, so DestageInterference
    /// totals are never double-counted against compaction.
    #[test]
    fn prop_compaction_interference_typed_and_conserved(
        begin in 0u64..100_000,
        leg in leg_strategy(),
    ) {
        let mut leg = leg;
        leg.0 = 0; // submit at admission: nothing unattributed
        leg.2 = leg.2.max(1); // force non-zero interference
        let (span, bgs) = build_span_under(
            BgSpanKind::Compaction, begin, std::slice::from_ref(&leg));
        prop_assert_eq!(bgs[0].kind, BgSpanKind::Compaction);
        let path = critical_path(&span);
        let compact_us = path.phase_us[Phase::Compaction.index()];
        prop_assert_eq!(compact_us, leg.2, "interference slice must land in Compaction");
        prop_assert_eq!(
            path.phase_us[Phase::DestageInterference.index()], 0,
            "no destage ran: nothing may be typed as destage interference"
        );
        prop_assert_eq!(path.attributed_us() + path.unattributed_us, path.total_us);
        prop_assert_eq!(path.unattributed_us, 0);

        // The same legs under a destage span attribute the identical
        // slice to DestageInterference instead.
        let (span_d, _) = build_span(begin, std::slice::from_ref(&leg));
        let path_d = critical_path(&span_d);
        prop_assert_eq!(path_d.phase_us[Phase::DestageInterference.index()], leg.2);
        prop_assert_eq!(path_d.phase_us[Phase::Compaction.index()], 0);
    }
}
