//! Property tests for the quantile sketch (DESIGN.md §12): merging is
//! associative and commutative, and sketch quantiles stay within the
//! 1 % relative-error bound of the exact sample percentiles across
//! latency-shaped inputs (µs-scale cache hits through multi-second
//! spin-up stalls — the bench matrix's dynamic range).

use proptest::prelude::*;
use rolo_metrics::exact_percentile;
use rolo_obs::QuantileSketch;

/// One drawn sample stream: a scale index (spreads streams across the
/// µs → multi-second latency decades) and raw values within the scale.
type StreamDraw = (usize, Vec<u64>);

fn stream_strategy() -> impl Strategy<Value = StreamDraw> {
    (0usize..6, proptest::collection::vec(1u64..100_000, 1..200))
}

/// Scales a draw into f64 samples: decade `d` multiplies by 10^d, so
/// streams cover 1 µs up to ~10^10 µs.
fn samples_of((decade, raw): &StreamDraw) -> Vec<f64> {
    let scale = 10f64.powi(*decade as i32);
    raw.iter().map(|&v| v as f64 * scale).collect()
}

fn sketch_of(samples: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in samples {
        s.record(v);
    }
    s
}

proptest! {
    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): merge order cannot change any
    /// reported state.
    #[test]
    fn merge_is_associative(
        a in stream_strategy(),
        b in stream_strategy(),
        c in stream_strategy(),
    ) {
        let (sa, sb, sc) = (
            sketch_of(&samples_of(&a)),
            sketch_of(&samples_of(&b)),
            sketch_of(&samples_of(&c)),
        );
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// a ∪ b == b ∪ a.
    #[test]
    fn merge_is_commutative(a in stream_strategy(), b in stream_strategy()) {
        let (sa, sb) = (sketch_of(&samples_of(&a)), sketch_of(&samples_of(&b)));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Every ladder quantile of a merged sketch lands within 1 % of
    /// the exact percentile over the pooled samples (the sketch and
    /// `exact_percentile` share the same rank convention).
    #[test]
    fn quantiles_within_one_percent_of_exact(
        a in stream_strategy(),
        b in stream_strategy(),
    ) {
        let mut pooled = samples_of(&a);
        pooled.extend(samples_of(&b));
        let mut merged = sketch_of(&samples_of(&a));
        merged.merge(&sketch_of(&samples_of(&b)));
        prop_assert_eq!(merged.count(), pooled.len() as u64);
        for p in [50.0, 90.0, 95.0, 99.0] {
            let exact = exact_percentile(&pooled, p).unwrap();
            let est = merged.percentile(p).unwrap();
            let err = (est / exact - 1.0).abs();
            prop_assert!(
                err < 0.01,
                "p{}: sketch {} vs exact {} (err {})", p, est, exact, err
            );
        }
    }
}
