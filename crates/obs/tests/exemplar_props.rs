//! Property tests for the tail-exemplar recorder (DESIGN.md §14): for
//! any stream of completed spans the selection is deterministic, never
//! retains more than k spans per window, and is insensitive to the
//! order completions arrive within a window — the recorder's streaming
//! top-k always equals the offline sort under the same total order.

use proptest::prelude::*;
use rolo_obs::{critical_path, ranks_before, ExemplarRecorder, RequestSpan};
use rolo_sim::{Duration, SimTime};
use rolo_trace::ReqKind;

/// Telemetry window used throughout (the paper default).
const WINDOW_US: u64 = 60_000_000;

/// A legless span completing at `end_us` with the given response; the
/// recorder keys selection on the critical path's total, which for a
/// completed span is exactly its duration.
fn span_of(rid: u64, response_us: u64, end_us: u64) -> RequestSpan {
    RequestSpan {
        id: rid,
        kind: ReqKind::Read,
        begin: SimTime::from_micros(end_us - response_us),
        end: SimTime::from_micros(end_us),
        legs: Vec::new(),
    }
}

fn recorder(k: usize) -> ExemplarRecorder {
    ExemplarRecorder::new(k, Duration::from_micros(WINDOW_US), 256)
}

/// Feeds spans to a fresh recorder in the given order (all completions
/// within one window) and returns the retained rids, slowest first.
fn retained_rids(k: usize, spans: &[RequestSpan]) -> Vec<u64> {
    let mut rec = recorder(k);
    for s in spans {
        rec.observe(s.end, s, &critical_path(s), &[]);
    }
    let set = rec.finish();
    set.windows
        .iter()
        .flat_map(|w| w.spans.iter().map(|e| e.rid))
        .collect()
}

/// One drawn completion: (response_us, permutation key). The rid is
/// the draw's index, so rids are distinct and the selection order is
/// total.
type Draw = (u64, u64);

fn completions() -> impl Strategy<Value = (Vec<Draw>, usize)> {
    (
        proptest::collection::vec((1u64..2_000_000, 0u64..1_000_000), 1..40),
        1usize..10,
    )
}

/// Builds the spans in draw order; completions land inside window 0
/// (responses are < 2 s, the window is 60 s) at distinct instants so
/// the stream looks like a real completion sequence.
fn spans_of(draws: &[Draw]) -> Vec<RequestSpan> {
    draws
        .iter()
        .enumerate()
        .map(|(i, &(resp, _))| span_of(i as u64, resp, 2_000_000 + i as u64))
        .collect()
}

proptest! {
    /// Same stream, same order → byte-identical exemplar sets, twice.
    #[test]
    fn selection_is_deterministic(draw in completions()) {
        let (draws, k) = draw;
        let spans = spans_of(&draws);
        let run = |spans: &[RequestSpan]| {
            let mut rec = recorder(k);
            for s in spans {
                rec.observe(s.end, s, &critical_path(s), &[]);
            }
            rec.finish()
        };
        prop_assert_eq!(run(&spans), run(&spans));
    }
}

proptest! {
    /// No window ever retains more than k spans, whatever the stream
    /// offers, and retained spans always carry their window's index.
    #[test]
    fn selection_is_bounded(
        draw in completions(),
        windows in proptest::collection::vec(0u64..5, 1..40),
    ) {
        let (draws, k) = draw;
        // Spread completions over several (sorted, hence monotone)
        // windows; extra draws beyond `windows` stay in the last one.
        let mut wins = windows.clone();
        wins.sort_unstable();
        let mut rec = recorder(k);
        for (i, &(resp, _)) in draws.iter().enumerate() {
            let w = *wins.get(i).or(wins.last()).expect("non-empty");
            let at = w * WINDOW_US + 2_000_000 + i as u64;
            let s = span_of(i as u64, resp, at);
            rec.observe(s.end, &s, &critical_path(&s), &[]);
        }
        let set = rec.finish();
        for w in &set.windows {
            prop_assert!(w.spans.len() <= k, "window {} holds {} > k = {k}", w.window, w.spans.len());
            for e in &w.spans {
                prop_assert_eq!(e.window, w.window);
            }
        }
    }
}

proptest! {
    /// Observation order within a window cannot change the selection:
    /// the drawn order and the key-permuted order retain the same rids
    /// in the same rank order, and both equal the offline sort under
    /// `ranks_before`.
    #[test]
    fn selection_is_order_insensitive(draw in completions()) {
        let (draws, k) = draw;
        let spans = spans_of(&draws);
        let mut permuted = spans.clone();
        // A deterministic permutation drawn from the input: stable
        // sort by the draw's key column.
        permuted.sort_by_key(|s| draws[s.id as usize].1);

        let a = retained_rids(k, &spans);
        let b = retained_rids(k, &permuted);
        prop_assert_eq!(&a, &b);

        // Offline reference: full sort under the same total order.
        let mut sorted: Vec<&RequestSpan> = spans.iter().collect();
        sorted.sort_by(|x, y| {
            if ranks_before(x.duration().as_micros(), x.id, y.duration().as_micros(), y.id) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        let expect: Vec<u64> = sorted.iter().take(k).map(|s| s.id).collect();
        prop_assert_eq!(a, expect);

        // And the shared offline helper agrees with the recorder.
        let helper: Vec<u64> = rolo_obs::slowest_spans(&spans, k).iter().map(|s| s.id).collect();
        prop_assert_eq!(b, helper);
    }
}
