//! Mergeable streaming quantile sketch with log-scaled buckets.
//!
//! [`QuantileSketch`] is the always-on quantile engine of the telemetry
//! pipeline (DESIGN.md §12): an HDR-style histogram whose bucket
//! boundaries grow geometrically by [`GROWTH`] = 1.02, so any reported
//! quantile is within `sqrt(1.02) − 1 ≈ 0.995 %` of the exact sample
//! quantile — the ≤ 1 % relative-error bar — while storing only dense
//! `u64` bucket counts. Because the state is a pure sum of per-sample
//! one-hot increments plus order-independent aggregates (count, sum,
//! min, max), [`QuantileSketch::merge`] is associative and commutative:
//! per-shard or per-window sketches fold into fleet rollups in any
//! order and yield identical quantiles.
//!
//! Values are unit-less non-negative `f64`s; latency call sites record
//! **microseconds** so the `[1, GROWTH^MAX_BUCKETS)` resolution band
//! (1 µs … ~28 h) covers everything from a cache hit to a spin-up
//! stalled read miss. Values below 1 clamp into the first bucket.

use serde::Serialize;

/// Geometric growth factor of bucket boundaries. Bucket `i` covers
/// `[GROWTH^i, GROWTH^(i+1))`; reporting the geometric bucket midpoint
/// bounds the relative quantile error by `sqrt(GROWTH) − 1 < 1 %`.
pub const GROWTH: f64 = 1.02;

/// Hard cap on bucket count; `GROWTH^1400 µs ≈ 3·10^6 s`, far past any
/// simulated response time. Values beyond the cap clamp into the last
/// bucket (their quantile error is then bounded by `max`-clamping).
const MAX_BUCKETS: usize = 1400;

/// A mergeable log-bucketed quantile sketch.
///
/// # Example
///
/// ```
/// use rolo_obs::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for us in 1..=1000u64 {
///     s.record(us as f64);
/// }
/// let p95 = s.percentile(95.0).unwrap();
/// assert!((p95 / 950.0 - 1.0).abs() < 0.01, "{p95}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuantileSketch {
    /// Dense bucket counts, grown on demand up to [`MAX_BUCKETS`].
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    fn bucket_of(value: f64) -> usize {
        let v = value.max(1.0);
        let idx = v.ln() / GROWTH.ln();
        (idx as usize).min(MAX_BUCKETS - 1)
    }

    /// Geometric midpoint of bucket `i` — the value reported for any
    /// quantile landing in the bucket.
    fn bucket_mid(i: usize) -> f64 {
        GROWTH.powf(i as f64 + 0.5)
    }

    /// Records one non-negative observation.
    pub fn record(&mut self, value: f64) {
        let value = value.max(0.0);
        if self.total == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.total += 1;
        self.sum += value;
        let b = Self::bucket_of(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `p`-th percentile (0–100), or `None` when empty.
    ///
    /// Uses the same rank convention as the exact reference
    /// (`rolo_metrics::exact_percentile`): the value at 1-based rank
    /// `ceil(p/100 · n)`. The estimate is the geometric midpoint of the
    /// rank's bucket, clamped into `[min, max]` so degenerate sketches
    /// (single value, extreme p) stay exact.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.total == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_mid(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another sketch into this one.
    ///
    /// Merging is associative and commutative: bucket counts add
    /// element-wise and the scalar aggregates (count, sum, min, max)
    /// are order-independent, so folding shards in any order yields
    /// the same sketch.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.total == 0 {
            return;
        }
        if self.total == 0 {
            *self = other.clone();
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Merges an iterator of sketches into a fresh one.
    pub fn merged<'a, I>(parts: I) -> QuantileSketch
    where
        I: IntoIterator<Item = &'a QuantileSketch>,
    {
        let mut out = QuantileSketch::new();
        for s in parts {
            out.merge(s);
        }
        out
    }

    /// Compact serializable digest: count/sum/min/max/mean plus the
    /// standard quantile ladder. This is what window rollups and report
    /// exports embed instead of the raw bucket vector.
    pub fn digest(&self) -> SketchDigest {
        SketchDigest {
            count: self.total,
            sum: self.sum,
            min: self.min,
            max: self.max,
            mean: self.mean(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }
}

/// Compact summary of a [`QuantileSketch`]: scalar aggregates plus the
/// standard quantile ladder (`None` when the sketch was empty).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SketchDigest {
    /// Observations covered.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when none).
    pub min: f64,
    /// Largest observation (0 when none).
    pub max: f64,
    /// Mean observation (0 when none).
    pub mean: f64,
    /// Median.
    pub p50: Option<f64>,
    /// 90th percentile.
    pub p90: Option<f64>,
    /// 95th percentile.
    pub p95: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_percentiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert!(s.percentile(50.0).is_none());
        assert_eq!(s.digest().p95, None);
    }

    #[test]
    fn single_value_is_exact() {
        let mut s = QuantileSketch::new();
        s.record(1234.0);
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(s.percentile(p), Some(1234.0), "p{p}");
        }
    }

    #[test]
    fn quantiles_track_uniform_ramp_within_one_percent() {
        let mut s = QuantileSketch::new();
        for v in 1..=10_000u64 {
            s.record(v as f64);
        }
        for p in [10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let exact = ((p / 100.0) * 10_000.0_f64).ceil().max(1.0);
            let est = s.percentile(p).unwrap();
            let err = (est / exact - 1.0).abs();
            assert!(err < 0.01, "p{p}: est {est} vs exact {exact} (err {err})");
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut s = QuantileSketch::new();
        for us in [10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7] {
            for _ in 0..7 {
                s.record(us);
            }
        }
        let mut prev = 0.0;
        for p in [1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p).unwrap();
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut whole = QuantileSketch::new();
        for v in 1..=1000u64 {
            let v = (v * v % 7919) as f64;
            whole.record(v);
            if (v as u64).is_multiple_of(2) {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [10.0, 50.0, 95.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merge_into_empty_adopts_other() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        b.record(42.0);
        a.merge(&b);
        assert_eq!(a, b);
        // ... and merging an empty sketch is a no-op.
        let before = a.clone();
        a.merge(&QuantileSketch::new());
        assert_eq!(a, before);
    }

    #[test]
    fn values_below_one_clamp_into_first_bucket() {
        let mut s = QuantileSketch::new();
        s.record(0.0);
        s.record(0.5);
        assert_eq!(s.count(), 2);
        // max-clamping keeps the sub-unit estimates honest.
        assert!(s.percentile(0.0).unwrap() <= 0.5);
        assert_eq!(s.percentile(100.0), Some(0.5));
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn huge_values_clamp_to_last_bucket() {
        let mut s = QuantileSketch::new();
        s.record(1e300);
        assert_eq!(s.percentile(50.0), Some(1e300), "max-clamped");
    }
}
