//! The typed event taxonomy emitted by every instrumented layer.
//!
//! Events are deliberately small `Copy`-ish payloads (ids, offsets,
//! byte counts, enum states) rather than references into simulator
//! state, so a drained trace is self-describing and serializes to
//! one JSON object per event.

use rolo_disk::{DiskId, IoKind, PowerState};
use rolo_sim::SimTime;
use rolo_trace::ReqKind;
use serde::Serialize;

/// One structured simulation event.
///
/// Variants cover the full observable lifecycle: user requests
/// (arrive / dispatch / complete), disk power-state transitions,
/// logger rotation and destaging, logging-mode changes, and every
/// fault/retry/rebuild milestone.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SimEvent {
    /// A user request entered the simulator from the trace.
    RequestArrive {
        /// Trace-order user request id.
        id: u64,
        /// Read or write, as recorded in the trace.
        kind: ReqKind,
        /// Logical byte offset of the request.
        offset: u64,
        /// Request length in bytes.
        bytes: u64,
    },
    /// A (sub-)request was dispatched to a physical disk.
    RequestDispatch {
        /// Disk-level I/O id (policy tag).
        io: u64,
        /// Target physical disk.
        disk: DiskId,
        /// Read or write at the disk level.
        kind: IoKind,
        /// Physical byte offset on the disk.
        offset: u64,
        /// I/O length in bytes.
        bytes: u64,
        /// True for background (destage/rebuild) I/O.
        background: bool,
    },
    /// The last sub-request of a user request completed.
    RequestComplete {
        /// Trace-order user request id.
        id: u64,
        /// Read or write, as recorded in the trace.
        kind: ReqKind,
        /// End-to-end response time in microseconds.
        response_us: u64,
    },
    /// Initial power state of a disk at simulation start.
    DiskInit {
        /// Physical disk.
        disk: DiskId,
        /// State the disk starts the run in.
        state: PowerState,
    },
    /// A disk moved between power states.
    DiskState {
        /// Physical disk.
        disk: DiskId,
        /// State before the transition.
        from: PowerState,
        /// State after the transition.
        to: PowerState,
    },
    /// RoLo rotated its logger role to the next mirror slot.
    LoggerRotation {
        /// Slot that stops logging and starts destaging.
        outgoing: usize,
        /// Slot that takes over logging.
        incoming: usize,
        /// Rotation period counter after this rotation.
        period: u64,
    },
    /// A destage cycle started.
    DestageStart {
        /// Mirror pair being destaged, when the scheme destages
        /// per-pair (RoLo); `None` for whole-log destage (GRAID).
        pair: Option<usize>,
    },
    /// A destage cycle finished and its log space was reclaimed.
    DestageEnd {
        /// Mirror pair that finished, when per-pair; else `None`.
        pair: Option<usize>,
    },
    /// Write logging was switched off (log pressure); writes go direct.
    LoggingDeactivated,
    /// Write logging was re-enabled after log space was reclaimed.
    LoggingReactivated,
    /// A read miss forced a standby disk to spin up.
    ReadMissSpinUp {
        /// Disk being woken.
        disk: DiskId,
    },
    /// A read was redirected from a failed disk to its mirror partner.
    ReadRedirected {
        /// Disk the read was originally addressed to.
        from: DiskId,
        /// Surviving disk that serves it instead.
        to: DiskId,
    },
    /// A whole-disk failure fired; a hot spare was installed.
    DiskFailed {
        /// Slot that failed (the spare takes over the same slot).
        disk: DiskId,
        /// Fault epoch after the replacement.
        epoch: u64,
    },
    /// The fault plan scheduled a whole-disk failure before replay.
    FaultScheduled {
        /// Slot that will fail.
        disk: DiskId,
        /// Scheduled failure time in microseconds.
        at_us: u64,
    },
    /// An I/O completion was classified as a timeout.
    IoTimeout {
        /// Disk-level I/O id.
        io: u64,
    },
    /// A timed-out I/O was scheduled for retry with backoff.
    IoRetry {
        /// Disk-level I/O id.
        io: u64,
        /// Backoff before the retry, in microseconds.
        backoff_us: u64,
    },
    /// An I/O exhausted its retries and was declared lost.
    IoLost {
        /// Disk-level I/O id.
        io: u64,
    },
    /// An I/O completion was classified as a latent media error.
    MediaError {
        /// Disk-level I/O id.
        io: u64,
    },
    /// A degraded-mode rebuild onto a spare started.
    RebuildStarted {
        /// Slot being rebuilt.
        slot: DiskId,
        /// Bytes to reconstruct.
        bytes: u64,
    },
    /// A rebuild finished and the slot left degraded mode.
    RebuildCompleted {
        /// Slot that finished rebuilding.
        slot: DiskId,
        /// Rebuild duration in simulated microseconds.
        duration_us: u64,
    },
    /// A fresh log segment was opened (became the append target) on a
    /// logger disk's segment chain.
    SegmentAllocated {
        /// Logger disk owning the segment chain.
        disk: DiskId,
        /// Chain-local segment id (monotonically increasing).
        segment: u64,
    },
    /// An active segment filled up and was sealed (no further appends).
    SegmentSealed {
        /// Logger disk owning the segment chain.
        disk: DiskId,
        /// Segment that sealed; must have been allocated earlier.
        segment: u64,
        /// Bytes still live (referenced by the dirty map) at seal time.
        live_bytes: u64,
    },
    /// Live records were relocated out of a mostly-dead sealed segment.
    SegmentCompacted {
        /// Logger disk owning the segment chain.
        disk: DiskId,
        /// Segment the live records were relocated out of.
        segment: u64,
        /// Bytes relocated to the active segment.
        relocated_bytes: u64,
    },
    /// A cold fully-destaged segment was folded into an append-only
    /// compressed archive frame.
    SegmentArchived {
        /// Logger disk owning the segment chain.
        disk: DiskId,
        /// Segment that was archived; must have been allocated earlier.
        segment: u64,
        /// Archive frame the segment's records were compressed into.
        frame: u64,
        /// Compressed frame size in bytes.
        compressed_bytes: u64,
    },
    /// An archive frame outlived its TTL and was retired (deleted).
    ArchiveFrameRetired {
        /// Logger disk owning the archive.
        disk: DiskId,
        /// Frame that was retired.
        frame: u64,
    },
    /// A background compaction pass started on a pair's logger disks.
    CompactionStart {
        /// Mirror pair whose destage idle-slots host the pass, when
        /// per-pair (RoLo); `None` for centralized logs.
        pair: Option<usize>,
    },
    /// A background compaction pass finished.
    CompactionEnd {
        /// Mirror pair, when per-pair; else `None`.
        pair: Option<usize>,
    },
    /// A logger disk died and recovery-by-replay began scanning the
    /// surviving segment chains.
    ReplayStarted {
        /// The failed logger disk whose log state is being replayed.
        disk: DiskId,
    },
    /// A record failed its checksum during a replay scan (torn by the
    /// mid-write crash; excluded from redo).
    TornRecordDetected {
        /// The failed logger disk being replayed.
        disk: DiskId,
        /// Number of torn records found so far in this replay.
        count: u64,
    },
    /// Recovery-by-replay finished reconstructing the dirty map.
    ReplayCompleted {
        /// The failed logger disk that was replayed.
        disk: DiskId,
        /// Committed records redone into the reconstructed dirty map.
        records: u64,
        /// Torn records detected and excluded.
        torn: u64,
        /// Pairs whose replayed map diverged from the live controller
        /// state (must be 0 for a crash-consistent log).
        divergent_pairs: u64,
    },
    /// The fault injector marked an extent of a disk as silently
    /// corrupt (a latent sector error landed).
    CorruptionInjected {
        /// Disk holding the now-latent extent.
        disk: DiskId,
        /// Physical byte offset of the extent.
        offset: u64,
        /// Extent length in bytes.
        bytes: u64,
    },
    /// A correlated-failure shock hit a shared enclosure, failing or
    /// corrupting several of its disks within a short window.
    ShockInjected {
        /// First disk of the affected enclosure.
        enclosure_base: DiskId,
        /// Disks in the enclosure.
        disks: usize,
    },
    /// The scrub engine began a sequential verification pass over a
    /// disk's data region.
    ScrubStart {
        /// Disk being scrubbed.
        disk: DiskId,
        /// Pass number (0-based, monotone per disk).
        pass: u64,
    },
    /// The scrub engine detected a latent extent and repaired it from
    /// the surviving mirror copy.
    ScrubRepair {
        /// Disk the latent extent was found on.
        disk: DiskId,
        /// Physical byte offset of the repaired extent.
        offset: u64,
        /// Extent length in bytes.
        bytes: u64,
    },
    /// A scrub pass covered the whole data region of a disk.
    ScrubComplete {
        /// Disk that finished the pass.
        disk: DiskId,
        /// Pass number that completed.
        pass: u64,
        /// Bytes verified in the pass.
        bytes: u64,
    },
    /// A latent extent became unrecoverable: its mirror partner is dead
    /// or also corrupt, so the data is lost (counted, never silent).
    ExtentLost {
        /// Disk the unrecoverable extent is on.
        disk: DiskId,
        /// Physical byte offset of the lost extent.
        offset: u64,
        /// Extent length in bytes.
        bytes: u64,
    },
    /// An SLO's short-lookback burn rate crossed the warning threshold
    /// when a telemetry window closed (DESIGN.md §12).
    SloBurnWarning {
        /// Name of the SLO objective (e.g. `latency_p95`).
        slo: String,
        /// Telemetry window index whose close fired the alert.
        window: u64,
        /// Burn rate over the short lookback, in hundredths.
        burn_short_x100: u64,
        /// Burn rate over the long lookback, in hundredths.
        burn_long_x100: u64,
    },
    /// An SLO's burn rate crossed the breach threshold on both
    /// lookbacks; within a window a breach always follows its
    /// [`SimEvent::SloBurnWarning`].
    SloBreach {
        /// Name of the SLO objective (e.g. `latency_p95`).
        slo: String,
        /// Telemetry window index whose close fired the alert.
        window: u64,
        /// The window's observed value in milli-units (ns for latency
        /// objectives, mW for energy objectives).
        observed_x1000: u64,
        /// The objective's bound, in the same milli-units.
        target_x1000: u64,
    },
    /// The trace ran out; the driver began draining in-flight work.
    TraceEnded,
}

impl SimEvent {
    /// Short stable name of the variant, for per-kind summaries.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SimEvent::RequestArrive { .. } => "RequestArrive",
            SimEvent::RequestDispatch { .. } => "RequestDispatch",
            SimEvent::RequestComplete { .. } => "RequestComplete",
            SimEvent::DiskInit { .. } => "DiskInit",
            SimEvent::DiskState { .. } => "DiskState",
            SimEvent::LoggerRotation { .. } => "LoggerRotation",
            SimEvent::DestageStart { .. } => "DestageStart",
            SimEvent::DestageEnd { .. } => "DestageEnd",
            SimEvent::LoggingDeactivated => "LoggingDeactivated",
            SimEvent::LoggingReactivated => "LoggingReactivated",
            SimEvent::ReadMissSpinUp { .. } => "ReadMissSpinUp",
            SimEvent::ReadRedirected { .. } => "ReadRedirected",
            SimEvent::DiskFailed { .. } => "DiskFailed",
            SimEvent::FaultScheduled { .. } => "FaultScheduled",
            SimEvent::IoTimeout { .. } => "IoTimeout",
            SimEvent::IoRetry { .. } => "IoRetry",
            SimEvent::IoLost { .. } => "IoLost",
            SimEvent::MediaError { .. } => "MediaError",
            SimEvent::RebuildStarted { .. } => "RebuildStarted",
            SimEvent::RebuildCompleted { .. } => "RebuildCompleted",
            SimEvent::SegmentAllocated { .. } => "SegmentAllocated",
            SimEvent::SegmentSealed { .. } => "SegmentSealed",
            SimEvent::SegmentCompacted { .. } => "SegmentCompacted",
            SimEvent::SegmentArchived { .. } => "SegmentArchived",
            SimEvent::ArchiveFrameRetired { .. } => "ArchiveFrameRetired",
            SimEvent::CompactionStart { .. } => "CompactionStart",
            SimEvent::CompactionEnd { .. } => "CompactionEnd",
            SimEvent::ReplayStarted { .. } => "ReplayStarted",
            SimEvent::TornRecordDetected { .. } => "TornRecordDetected",
            SimEvent::ReplayCompleted { .. } => "ReplayCompleted",
            SimEvent::CorruptionInjected { .. } => "CorruptionInjected",
            SimEvent::ShockInjected { .. } => "ShockInjected",
            SimEvent::ScrubStart { .. } => "ScrubStart",
            SimEvent::ScrubRepair { .. } => "ScrubRepair",
            SimEvent::ScrubComplete { .. } => "ScrubComplete",
            SimEvent::ExtentLost { .. } => "ExtentLost",
            SimEvent::SloBurnWarning { .. } => "SloBurnWarning",
            SimEvent::SloBreach { .. } => "SloBreach",
            SimEvent::TraceEnded => "TraceEnded",
        }
    }

    /// The physical disk this event concerns, if it names one (for
    /// redirects, the disk the I/O was originally addressed to). Used by
    /// `trace_dump --check` to validate per-disk timestamp monotonicity.
    pub fn disk(&self) -> Option<DiskId> {
        match self {
            SimEvent::RequestDispatch { disk, .. }
            | SimEvent::DiskInit { disk, .. }
            | SimEvent::DiskState { disk, .. }
            | SimEvent::ReadMissSpinUp { disk }
            | SimEvent::DiskFailed { disk, .. }
            | SimEvent::FaultScheduled { disk, .. } => Some(*disk),
            SimEvent::ReadRedirected { from, .. } => Some(*from),
            SimEvent::RebuildStarted { slot, .. } | SimEvent::RebuildCompleted { slot, .. } => {
                Some(*slot)
            }
            SimEvent::SegmentAllocated { disk, .. }
            | SimEvent::SegmentSealed { disk, .. }
            | SimEvent::SegmentCompacted { disk, .. }
            | SimEvent::SegmentArchived { disk, .. }
            | SimEvent::ArchiveFrameRetired { disk, .. }
            | SimEvent::ReplayStarted { disk }
            | SimEvent::TornRecordDetected { disk, .. }
            | SimEvent::ReplayCompleted { disk, .. }
            | SimEvent::CorruptionInjected { disk, .. }
            | SimEvent::ScrubStart { disk, .. }
            | SimEvent::ScrubRepair { disk, .. }
            | SimEvent::ScrubComplete { disk, .. }
            | SimEvent::ExtentLost { disk, .. } => Some(*disk),
            _ => None,
        }
    }
}

/// A [`SimEvent`] paired with the simulated time it was recorded at.
///
/// This is the unit stored by sinks and the shape of one JSONL line in
/// `trace_dump` output: `{"at":<micros>,"event":{...}}`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TracedEvent {
    /// Simulated timestamp of the event.
    pub at: SimTime,
    /// The event payload.
    pub event: SimEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_externally_tagged() {
        let ev = TracedEvent {
            at: SimTime::from_micros(42),
            event: SimEvent::DiskState {
                disk: 3,
                from: PowerState::Idle,
                to: PowerState::Standby,
            },
        };
        let json = serde_json::to_string(&ev).unwrap();
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(v["at"].as_u64(), Some(42));
        assert_eq!(v["event"]["DiskState"]["disk"].as_u64(), Some(3));
        assert_eq!(v["event"]["DiskState"]["from"].as_str(), Some("Idle"));

        let unit = serde_json::to_string(&SimEvent::TraceEnded).unwrap();
        assert_eq!(unit, "\"TraceEnded\"");
    }

    #[test]
    fn kind_names_match_variants() {
        assert_eq!(
            SimEvent::RequestArrive {
                id: 0,
                kind: ReqKind::Read,
                offset: 0,
                bytes: 0
            }
            .kind_name(),
            "RequestArrive"
        );
        assert_eq!(SimEvent::TraceEnded.kind_name(), "TraceEnded");
    }
}
