//! Wall-clock profiling of one simulation run.

use serde::{Deserialize, Serialize};

/// Where the wall-clock time of a run went, plus event-throughput
/// figures.
///
/// Everything here is measured with the host clock and therefore
/// **non-deterministic**: two identical runs report different numbers.
/// The report's deterministic serialization strips this struct out —
/// see `SimReport::deterministic_json` in `rolo-core`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Name of the trace sink the run used (`"null"`, `"ring"`, ...).
    pub sink: String,
    /// Wall-clock time replaying the trace, in microseconds.
    pub wall_replay_us: u64,
    /// Wall-clock time draining in-flight work after the trace ended.
    pub wall_drain_us: u64,
    /// Total wall-clock time of the run, in microseconds.
    pub wall_total_us: u64,
    /// Simulator events popped from the event queue.
    pub events_processed: u64,
    /// Simulator events pushed onto the event queue.
    pub events_scheduled: u64,
    /// Queue events processed per wall-clock second.
    pub events_per_sec: f64,
    /// Trace events offered to the sink (0 with `NullSink`).
    pub trace_events_recorded: u64,
    /// Trace events the sink discarded for capacity.
    pub trace_events_dropped: u64,
}

impl RunProfile {
    /// Human-oriented one-line summary, used by bench binaries.
    pub fn summary(&self) -> String {
        format!(
            "sink={} wall={:.3}s (replay {:.3}s, drain {:.3}s) \
             events={} ({:.0}/s) traced={} dropped={}",
            self.sink,
            self.wall_total_us as f64 / 1e6,
            self.wall_replay_us as f64 / 1e6,
            self.wall_drain_us as f64 / 1e6,
            self.events_processed,
            self.events_per_sec,
            self.trace_events_recorded,
            self.trace_events_dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_sink_and_throughput() {
        let p = RunProfile {
            sink: "ring".to_string(),
            wall_total_us: 2_000_000,
            events_processed: 1000,
            events_per_sec: 500.0,
            ..RunProfile::default()
        };
        let s = p.summary();
        assert!(s.contains("sink=ring"));
        assert!(s.contains("500/s"));
    }
}
