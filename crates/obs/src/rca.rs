//! Automated root-cause attribution for SLO alert windows
//! (DESIGN.md §14).
//!
//! [`analyze`] folds the tail exemplars of every window that raised a
//! [`SloAlert`] (see [`crate::exemplar`]) into a phase-ranked blame
//! table, then walks the exemplar legs' `delayed_by` causality links
//! into the run's [`BgSpan`]s to name the culprit background activity
//! (destage / rebuild / compaction / scrub / spin-up) and the
//! [`crate::SimEvent`] kind that originated it — the machinery an
//! adaptive meta-controller needs before it can switch policies per
//! workload phase.
//!
//! # Conservation contract
//!
//! Per window, the blame rows partition the exemplars' attributed
//! critical-path time exactly: `Σ blame.us == attributed_us`,
//! `attributed_us + unattributed_us == total_us`, and the shares sum
//! to 1 (of attributed time) whenever anything was attributed.
//! [`RcaReport::check`] verifies all three, and the whole pass is a
//! pure function of its inputs — same exemplars and alerts, same
//! report, byte for byte.

use crate::exemplar::{ExemplarSet, ExemplarSpan};
use crate::slo::{SloAlert, SloSignal};
use crate::span::{BgSpan, BgSpanKind, Phase, NUM_PHASES};
use rolo_disk::{DiskId, PowerState};
use serde::Serialize;

/// One phase's row in a window's blame table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseBlame {
    /// Phase name ([`Phase::name`]).
    pub phase: &'static str,
    /// Critical-path microseconds the window's exemplars spent in the
    /// phase.
    pub us: u64,
    /// Share of the window's *attributed* exemplar tail time (the
    /// rows sum to 1.0 when anything was attributed).
    pub share: f64,
}

/// The background activity a window's dominant phase implicates, with
/// the causality evidence that names it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Culprit {
    /// Human-readable activity name: `spin-up`, `destage`, `rebuild`,
    /// `compaction`, `scrub`, `degraded-redirect` or `direct-mirror`.
    pub activity: &'static str,
    /// The background span kind behind the interference, when the
    /// dominant phase is caused by one (spin-up stalls and degraded
    /// redirects have no [`BgSpan`]; they implicate power state and
    /// failed disks instead).
    pub bg_kind: Option<BgSpanKind>,
    /// Kind name of the [`crate::SimEvent`] that originates this
    /// activity (e.g. `ReadMissSpinUp`, `DestageStart`, `DiskFailed`,
    /// `ScrubStart`, `LoggingDeactivated`).
    pub origin_event: &'static str,
    /// Ids of the background spans the exemplar legs were delayed
    /// behind, ascending, deduplicated.
    pub bg_spans: Vec<u64>,
    /// Disks whose legs carried the dominant phase, ascending.
    pub disks: Vec<DiskId>,
    /// Power state of each implicated disk as stamped at exemplar
    /// completion, ascending by disk.
    pub power_states: Vec<(DiskId, PowerState)>,
}

/// Root-cause attribution of one SLO alert window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowRca {
    /// Telemetry window index.
    pub window: u64,
    /// Name of the SLO that fired.
    pub slo: String,
    /// Warning or breach.
    pub signal: SloSignal,
    /// The window's observed value (µs for latency SLOs, watts for
    /// energy SLOs).
    pub observed: f64,
    /// The objective's bound, same unit.
    pub target: f64,
    /// Burn rate over the short lookback.
    pub burn_short: f64,
    /// Burn rate over the long lookback.
    pub burn_long: f64,
    /// Exemplars the window retained (0 when the breach window's tail
    /// was never captured, e.g. spans disabled).
    pub exemplars: usize,
    /// Summed end-to-end response of the exemplars (µs).
    pub total_us: u64,
    /// Microseconds the blame rows partition.
    pub attributed_us: u64,
    /// Exemplar microseconds no leg explains.
    pub unattributed_us: u64,
    /// Name of the dominant phase, if anything was attributed.
    pub dominant_phase: Option<&'static str>,
    /// Blame rows, largest share first (only phases that appear);
    /// equal shares order by [`Phase::ALL`] index, deterministically.
    pub blame: Vec<PhaseBlame>,
    /// The background activity the dominant phase implicates, when it
    /// names one.
    pub culprit: Option<Culprit>,
}

impl WindowRca {
    /// Verifies the conservation contract of this window's blame
    /// table.
    pub fn check(&self) -> Result<(), String> {
        let blamed: u64 = self.blame.iter().map(|b| b.us).sum();
        if blamed != self.attributed_us {
            return Err(format!(
                "window {}: blame rows sum to {blamed} µs but {} µs were attributed",
                self.window, self.attributed_us
            ));
        }
        if self.attributed_us + self.unattributed_us != self.total_us {
            return Err(format!(
                "window {}: attributed {} + unattributed {} != total {}",
                self.window, self.attributed_us, self.unattributed_us, self.total_us
            ));
        }
        if self.attributed_us > 0 {
            let shares: f64 = self.blame.iter().map(|b| b.share).sum();
            if (shares - 1.0).abs() > 1e-9 {
                return Err(format!(
                    "window {}: blame shares sum to {shares}, not 1",
                    self.window
                ));
            }
            if self.dominant_phase.is_none() {
                return Err(format!(
                    "window {}: attributed time but no dominant phase",
                    self.window
                ));
            }
        }
        Ok(())
    }
}

/// The typed forensics report: one entry per SLO alert, in alert
/// emission order. Empty when the run raised no alerts.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RcaReport {
    /// Per-alert-window attributions, in emission order.
    pub windows: Vec<WindowRca>,
    /// Alert windows with [`SloSignal::Warning`].
    pub warnings: usize,
    /// Alert windows with [`SloSignal::Breach`].
    pub breaches: usize,
}

impl RcaReport {
    /// True when the run raised no SLO alerts at all.
    pub fn is_clean(&self) -> bool {
        self.windows.is_empty()
    }

    /// The first breach window's attribution, if the run breached.
    pub fn first_breach(&self) -> Option<&WindowRca> {
        self.windows.iter().find(|w| w.signal == SloSignal::Breach)
    }

    /// Verifies the conservation contract for every window.
    pub fn check(&self) -> Result<(), String> {
        for w in &self.windows {
            w.check()?;
        }
        let warns = self
            .windows
            .iter()
            .filter(|w| w.signal == SloSignal::Warning)
            .count();
        let breaches = self
            .windows
            .iter()
            .filter(|w| w.signal == SloSignal::Breach)
            .count();
        if warns != self.warnings || breaches != self.breaches {
            return Err(format!(
                "counts ({}, {}) disagree with windows ({warns}, {breaches})",
                self.warnings, self.breaches
            ));
        }
        Ok(())
    }
}

/// Attributes every alert's window: folds its exemplar critical paths
/// into a blame table and names the culprit background activity via
/// `delayed_by` causality into `background`. Pure — same inputs, same
/// report.
pub fn analyze(alerts: &[SloAlert], exemplars: &ExemplarSet, background: &[BgSpan]) -> RcaReport {
    let mut report = RcaReport::default();
    for a in alerts {
        let spans: &[ExemplarSpan] = exemplars
            .window(a.window)
            .map(|w| w.spans.as_slice())
            .unwrap_or(&[]);
        let mut phase_us = [0u64; NUM_PHASES];
        let mut total = 0u64;
        let mut unattributed = 0u64;
        for e in spans {
            total += e.response_us;
            unattributed += e.unattributed_us;
            for (i, &us) in e.phase_us.iter().enumerate() {
                phase_us[i] += us;
            }
        }
        let attributed: u64 = phase_us.iter().sum();
        let mut blame: Vec<PhaseBlame> = Phase::ALL
            .iter()
            .filter(|p| phase_us[p.index()] > 0)
            .map(|&p| PhaseBlame {
                phase: p.name(),
                us: phase_us[p.index()],
                share: phase_us[p.index()] as f64 / attributed as f64,
            })
            .collect();
        // Descending by time; Phase::ALL order already breaks ties by
        // construction (stable sort on a pre-ordered list).
        blame.sort_by_key(|b| std::cmp::Reverse(b.us));
        let dominant = Phase::ALL
            .iter()
            .copied()
            .max_by(|x, y| {
                phase_us[x.index()]
                    .cmp(&phase_us[y.index()])
                    .then(y.index().cmp(&x.index()))
            })
            .filter(|p| phase_us[p.index()] > 0);
        report.windows.push(WindowRca {
            window: a.window,
            slo: a.slo.clone(),
            signal: a.signal,
            observed: a.observed,
            target: a.target,
            burn_short: a.burn_short,
            burn_long: a.burn_long,
            exemplars: spans.len(),
            total_us: total,
            attributed_us: attributed,
            unattributed_us: unattributed,
            dominant_phase: dominant.map(Phase::name),
            blame,
            culprit: dominant.and_then(|p| culprit_for(p, spans, background)),
        });
        match a.signal {
            SloSignal::Warning => report.warnings += 1,
            SloSignal::Breach => report.breaches += 1,
        }
    }
    report
}

/// Walks the exemplar legs carrying `dominant` into the background
/// span table and names the activity + originating event.
fn culprit_for(dominant: Phase, spans: &[ExemplarSpan], background: &[BgSpan]) -> Option<Culprit> {
    // Evidence: every leg whose slice list contains the dominant phase.
    let mut disks: Vec<DiskId> = Vec::new();
    let mut bg_ids: Vec<u64> = Vec::new();
    let mut states: Vec<(DiskId, PowerState)> = Vec::new();
    for e in spans {
        for leg in &e.span.legs {
            if !leg.slices.iter().any(|s| s.phase == dominant) {
                continue;
            }
            disks.push(leg.disk);
            if let Some(bg) = leg.delayed_by {
                bg_ids.push(bg);
            }
            if let Some(&(d, s)) = e.disk_states.iter().find(|(d, _)| *d == leg.disk) {
                states.push((d, s));
            }
        }
    }
    disks.sort_unstable();
    disks.dedup();
    bg_ids.sort_unstable();
    bg_ids.dedup();
    states.sort_unstable_by_key(|&(d, _)| d);
    states.dedup();
    // The background kind behind the interference, majority-voted over
    // the linked spans (ties break toward the smaller kind index, i.e.
    // BgSpanKind declaration order — deterministic).
    let kind_of = |id: u64| background.iter().find(|b| b.id == id).map(|b| b.kind);
    let bg_kind = {
        let mut votes = [0usize; 4];
        for &id in &bg_ids {
            if let Some(k) = kind_of(id) {
                votes[k as usize] += 1;
            }
        }
        const KINDS: [BgSpanKind; 4] = [
            BgSpanKind::Destage,
            BgSpanKind::Rebuild,
            BgSpanKind::Compaction,
            BgSpanKind::Scrub,
        ];
        votes
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| KINDS[i])
    };
    let (activity, bg_kind, origin_event) = match dominant {
        Phase::SpinUpStall => ("spin-up", None, "ReadMissSpinUp"),
        Phase::DestageInterference => match bg_kind {
            Some(BgSpanKind::Rebuild) => ("rebuild", bg_kind, "DiskFailed"),
            _ => ("destage", Some(BgSpanKind::Destage), "DestageStart"),
        },
        Phase::Compaction => (
            "compaction",
            Some(BgSpanKind::Compaction),
            "CompactionStart",
        ),
        Phase::ScrubInterference => ("scrub", Some(BgSpanKind::Scrub), "ScrubStart"),
        Phase::DegradedRedirect => ("degraded-redirect", None, "DiskFailed"),
        Phase::MirrorCopy => ("direct-mirror", None, "LoggingDeactivated"),
        // Plain foreground service phases implicate no background
        // activity — there is no culprit to name.
        _ => return None,
    };
    Some(Culprit {
        activity,
        bg_kind,
        origin_event,
        bg_spans: bg_ids,
        disks,
        power_states: states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exemplar::{ExemplarRecorder, ExemplarSet};
    use crate::span::{critical_path, PhaseSlice, RequestSpan, SpanLeg};
    use rolo_sim::{Duration, SimTime};
    use rolo_trace::ReqKind;

    fn stalled_span(rid: u64, disk: DiskId, stall_us: u64, xfer_us: u64) -> RequestSpan {
        let begin = SimTime::from_micros(0);
        let end = SimTime::from_micros(stall_us + xfer_us);
        RequestSpan {
            id: rid,
            kind: ReqKind::Read,
            begin,
            end,
            legs: vec![SpanLeg {
                io: rid * 10,
                disk,
                submit: begin,
                start: SimTime::from_micros(stall_us),
                end,
                slices: vec![
                    PhaseSlice {
                        phase: Phase::SpinUpStall,
                        duration: Duration::from_micros(stall_us),
                    },
                    PhaseSlice {
                        phase: Phase::Transfer,
                        duration: Duration::from_micros(xfer_us),
                    },
                ],
                delayed_by: None,
            }],
        }
    }

    fn alert(window: u64, signal: SloSignal) -> SloAlert {
        SloAlert {
            slo: "latency_p95".to_owned(),
            window,
            signal,
            burn_short: 9.0,
            burn_long: 6.0,
            observed: 1.0e7,
            target: 5.0e5,
        }
    }

    fn capture(spans: &[RequestSpan]) -> ExemplarSet {
        let mut rec = ExemplarRecorder::new(4, Duration::from_secs(60), 16);
        for s in spans {
            let path = critical_path(s);
            rec.observe(s.end, s, &path, &[PowerState::SpinningUp, PowerState::Idle]);
        }
        rec.finish()
    }

    #[test]
    fn spinup_dominated_window_names_the_spinup_culprit() {
        let spans = vec![
            stalled_span(1, 0, 10_000_000, 900),
            stalled_span(2, 1, 9_000_000, 500),
        ];
        let set = capture(&spans);
        let report = analyze(
            &[alert(0, SloSignal::Warning), alert(0, SloSignal::Breach)],
            &set,
            &[],
        );
        report.check().expect("conservation holds");
        assert_eq!((report.warnings, report.breaches), (1, 1));
        let breach = report.first_breach().expect("breach attributed");
        assert_eq!(breach.exemplars, 2);
        assert_eq!(breach.dominant_phase, Some("SpinUpStall"));
        assert_eq!(breach.total_us, 19_001_400);
        assert_eq!(
            breach.attributed_us + breach.unattributed_us,
            breach.total_us
        );
        let culprit = breach.culprit.as_ref().expect("culprit named");
        assert_eq!(culprit.activity, "spin-up");
        assert_eq!(culprit.origin_event, "ReadMissSpinUp");
        assert_eq!(culprit.disks, vec![0, 1]);
        assert_eq!(
            culprit.power_states,
            vec![(0, PowerState::SpinningUp), (1, PowerState::Idle)]
        );
    }

    #[test]
    fn no_alerts_yield_an_empty_report() {
        let set = capture(&[stalled_span(1, 0, 100, 100)]);
        let report = analyze(&[], &set, &[]);
        assert!(report.is_clean());
        report.check().expect("empty report is consistent");
    }

    #[test]
    fn destage_interference_walks_delayed_by_to_the_bg_span() {
        let begin = SimTime::from_micros(0);
        let end = SimTime::from_micros(5_000);
        let span = RequestSpan {
            id: 3,
            kind: ReqKind::Write,
            begin,
            end,
            legs: vec![SpanLeg {
                io: 30,
                disk: 1,
                submit: begin,
                start: SimTime::from_micros(4_000),
                end,
                slices: vec![
                    PhaseSlice {
                        phase: Phase::DestageInterference,
                        duration: Duration::from_micros(4_000),
                    },
                    PhaseSlice {
                        phase: Phase::LogAppend,
                        duration: Duration::from_micros(1_000),
                    },
                ],
                delayed_by: Some(7),
            }],
        };
        let bg = BgSpan {
            id: 7,
            kind: BgSpanKind::Destage,
            begin,
            end: Some(SimTime::from_micros(100_000)),
            delayed: vec![3],
        };
        let set = capture(std::slice::from_ref(&span));
        let report = analyze(&[alert(0, SloSignal::Breach)], &set, &[bg]);
        report.check().expect("conservation holds");
        let w = &report.windows[0];
        assert_eq!(w.dominant_phase, Some("DestageInterference"));
        let culprit = w.culprit.as_ref().expect("culprit named");
        assert_eq!(culprit.activity, "destage");
        assert_eq!(culprit.bg_kind, Some(BgSpanKind::Destage));
        assert_eq!(culprit.origin_event, "DestageStart");
        assert_eq!(culprit.bg_spans, vec![7]);
    }

    #[test]
    fn alert_window_without_exemplars_still_reports() {
        let report = analyze(
            &[alert(42, SloSignal::Breach)],
            &ExemplarSet::default(),
            &[],
        );
        report.check().expect("consistent");
        let w = &report.windows[0];
        assert_eq!((w.exemplars, w.total_us), (0, 0));
        assert!(w.dominant_phase.is_none() && w.culprit.is_none());
    }
}
