//! Named counters, gauges and histograms published by the driver and
//! controllers, with periodic snapshots into [`Timeline`]s.
//!
//! The registry is deterministic by construction: it touches no wall
//! clock and its export sorts metrics by name, so two runs with the same
//! seed and config export byte-identical reports regardless of tracing.

use crate::sketch::QuantileSketch;
use rolo_metrics::Timeline;
use rolo_sim::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Handle to a registered metric; cheap to copy and index with.
pub type MetricId = usize;

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing count (events, bytes, ...).
    Counter,
    /// Point-in-time level (outstanding requests, watts, ...).
    Gauge,
    /// Distribution of observed values in a mergeable log-bucketed
    /// quantile sketch ([`QuantileSketch`], ≤ 1 % relative error).
    Histogram,
}

#[derive(Debug, Clone)]
struct Metric {
    name: String,
    kind: MetricKind,
    /// Counter running total, or latest gauge level.
    value: f64,
    /// Histogram observations (count/sum/extremes/quantiles).
    sketch: QuantileSketch,
    timeline: Timeline,
}

impl Metric {
    fn current(&self) -> f64 {
        match self.kind {
            MetricKind::Counter | MetricKind::Gauge => self.value,
            MetricKind::Histogram => self.sketch.count() as f64,
        }
    }
}

/// Registry of named metrics, snapshotted periodically into timelines.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
    index: BTreeMap<String, MetricId>,
    snapshot_interval: Duration,
}

impl MetricsRegistry {
    /// Creates an empty registry whose timelines coalesce samples closer
    /// together than `snapshot_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot_interval` is zero (timelines reject it).
    pub fn new(snapshot_interval: Duration) -> Self {
        MetricsRegistry {
            metrics: Vec::new(),
            index: BTreeMap::new(),
            snapshot_interval,
        }
    }

    /// Registers (or looks up) a counter named `name`.
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Counter)
    }

    /// Registers (or looks up) a gauge named `name`.
    pub fn gauge(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Gauge)
    }

    /// Registers (or looks up) a histogram named `name`.
    pub fn histogram(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Histogram)
    }

    fn register(&mut self, name: &str, kind: MetricKind) -> MetricId {
        if let Some(&id) = self.index.get(name) {
            assert_eq!(
                self.metrics[id].kind, kind,
                "metric `{name}` re-registered with a different kind"
            );
            return id;
        }
        let id = self.metrics.len();
        self.metrics.push(Metric {
            name: name.to_string(),
            kind,
            value: 0.0,
            sketch: QuantileSketch::new(),
            timeline: Timeline::new(self.snapshot_interval),
        });
        self.index.insert(name.to_string(), id);
        id
    }

    /// Increments a counter by `delta`.
    pub fn inc(&mut self, id: MetricId, delta: u64) {
        debug_assert_eq!(self.metrics[id].kind, MetricKind::Counter);
        self.metrics[id].value += delta as f64;
    }

    /// Sets a gauge to `value`.
    pub fn set(&mut self, id: MetricId, value: f64) {
        debug_assert_eq!(self.metrics[id].kind, MetricKind::Gauge);
        self.metrics[id].value = value;
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: MetricId, value: f64) {
        let m = &mut self.metrics[id];
        debug_assert_eq!(m.kind, MetricKind::Histogram);
        m.sketch.record(value);
    }

    /// Read-only view of a histogram metric's sketch (e.g. for fleet
    /// merges across shards).
    pub fn sketch(&self, id: MetricId) -> &QuantileSketch {
        debug_assert_eq!(self.metrics[id].kind, MetricKind::Histogram);
        &self.metrics[id].sketch
    }

    /// Current value of a counter/gauge (histograms report their count).
    pub fn value(&self, id: MetricId) -> f64 {
        self.metrics[id].current()
    }

    /// Pushes every metric's current level into its timeline at `now`.
    ///
    /// The driver calls this at its power-sampling cadence; the
    /// [`Timeline`] coalesces pushes closer than the registry interval.
    pub fn snapshot(&mut self, now: SimTime) {
        for m in &mut self.metrics {
            let v = m.current();
            m.timeline.push(now, v);
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Exports a deterministic, name-sorted summary of every metric.
    pub fn export(&self) -> MetricsReport {
        let metrics = self
            .index
            .values()
            .map(|&id| {
                let m = &self.metrics[id];
                MetricSummary {
                    name: m.name.clone(),
                    kind: m.kind,
                    value: m.current(),
                    count: m.sketch.count(),
                    sum: m.sketch.sum(),
                    min: m.sketch.min(),
                    max: m.sketch.max(),
                    mean: m.sketch.mean(),
                    p50: m.sketch.percentile(50.0),
                    p95: m.sketch.percentile(95.0),
                    p99: m.sketch.percentile(99.0),
                    samples: m.timeline.samples().to_vec(),
                }
            })
            .collect();
        MetricsReport { metrics }
    }
}

/// One metric's exported state: identity, aggregates and its sampled
/// timeline (`(time, value)` pairs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Dotted metric name, e.g. `sim.user_completions`.
    pub name: String,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Counter total / latest gauge level / histogram count.
    pub value: f64,
    /// Histogram observation count (0 for counters and gauges).
    pub count: u64,
    /// Sum of histogram observations.
    pub sum: f64,
    /// Smallest histogram observation (0 when none).
    pub min: f64,
    /// Largest histogram observation (0 when none).
    pub max: f64,
    /// Mean histogram observation (0 when none).
    pub mean: f64,
    /// Median histogram observation (`None` for counters/gauges or
    /// when no observation landed).
    pub p50: Option<f64>,
    /// 95th-percentile histogram observation.
    pub p95: Option<f64>,
    /// 99th-percentile histogram observation.
    pub p99: Option<f64>,
    /// Periodic snapshots of the metric level.
    pub samples: Vec<(SimTime, f64)>,
}

/// Deterministic, name-sorted export of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Every registered metric, sorted by name.
    pub metrics: Vec<MetricSummary>,
}

impl MetricsReport {
    /// Looks up an exported metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut reg = MetricsRegistry::new(Duration::from_secs(1));
        let c = reg.counter("io.dispatched");
        let g = reg.gauge("sim.power_w");
        let h = reg.histogram("sim.response_us");
        assert_eq!(reg.counter("io.dispatched"), c, "idempotent registration");

        reg.inc(c, 2);
        reg.inc(c, 3);
        reg.set(g, 41.5);
        reg.observe(h, 100.0);
        reg.observe(h, 300.0);
        reg.snapshot(SimTime::from_secs(1));
        reg.snapshot(SimTime::from_secs(3));

        let report = reg.export();
        let names: Vec<&str> = report.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["io.dispatched", "sim.power_w", "sim.response_us"],
            "export is name-sorted"
        );
        let c = report.get("io.dispatched").unwrap();
        assert_eq!(c.value, 5.0);
        assert_eq!(c.samples.len(), 2);
        let h = report.get("sim.response_us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 100.0);
        assert_eq!(h.max, 300.0);
        assert_eq!(h.mean, 200.0);
        // Sketch-backed quantiles: within 1 % of the exact samples.
        assert!((h.p50.unwrap() / 100.0 - 1.0).abs() < 0.01);
        assert!((h.p99.unwrap() / 300.0 - 1.0).abs() < 0.01);
        assert_eq!(report.get("io.dispatched").unwrap().p95, None);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let mut reg = MetricsRegistry::new(Duration::from_secs(1));
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_sketches_merge_across_registries() {
        let mut a = MetricsRegistry::new(Duration::from_secs(1));
        let mut b = MetricsRegistry::new(Duration::from_secs(1));
        let ha = a.histogram("sim.response_us");
        let hb = b.histogram("sim.response_us");
        a.observe(ha, 10.0);
        b.observe(hb, 1000.0);
        let mut fleet = a.sketch(ha).clone();
        fleet.merge(b.sketch(hb));
        assert_eq!(fleet.count(), 2);
        assert_eq!(fleet.max(), 1000.0);
    }
}
