//! Fixed-interval windowed telemetry rollups with bounded retention.
//!
//! A [`Telemetry`] hub holds labeled series — counters, gauges and
//! quantile series — and rolls them up into fixed simulated-time
//! windows (`[k·w, (k+1)·w)` for a window length `w`). Closing a window
//! freezes one [`WindowRollup`] per series: counters report the delta
//! over the window, gauges the last/mean/min/max of their samples, and
//! quantile series a [`SketchDigest`] of the window's
//! [`QuantileSketch`]. Closed windows are retained in a bounded ring
//! (oldest evicted first) so a week-long trace holds O(retain) state
//! per series no matter how long it runs.
//!
//! The hub is driven entirely by simulated time: callers record
//! observations as they happen and call [`Telemetry::advance`] from an
//! existing periodic hook (the driver's power-sampling cadence), which
//! closes every window whose end has passed and reports them for
//! online consumers (the SLO monitor in [`crate::slo`]). Nothing here
//! reads the wall clock, so runs stay deterministic, and the hub is
//! never consulted by the simulation itself — enabling or disabling
//! telemetry cannot perturb outcomes.

use crate::sketch::{QuantileSketch, SketchDigest};
use rolo_sim::{Duration, SimTime};
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};

/// Handle to a registered series; cheap to copy and index with.
pub type SeriesId = usize;

/// What a telemetry series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SeriesKind {
    /// Monotonically increasing total; windows report the delta.
    Counter,
    /// Point-in-time level; windows report last/mean/min/max.
    Gauge,
    /// Distribution; windows report a quantile digest.
    Quantile,
}

/// One series' frozen value for one closed window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RollupValue {
    /// Counter increase over the window.
    Counter {
        /// Total increments that landed in the window.
        delta: f64,
    },
    /// Gauge sample statistics over the window.
    Gauge {
        /// Level at window close (carried forward when unsampled).
        last: f64,
        /// Mean of the window's samples (= `last` when unsampled).
        mean: f64,
        /// Smallest sample (= `last` when unsampled).
        min: f64,
        /// Largest sample (= `last` when unsampled).
        max: f64,
        /// Samples observed in the window.
        samples: u64,
    },
    /// Quantile digest of the window's observations.
    Quantile(SketchDigest),
}

/// One closed window of one series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowRollup {
    /// Window index `k` (the window covered `[k·w, (k+1)·w)`).
    pub window: u64,
    /// Window start time.
    pub start: SimTime,
    /// The frozen rollup.
    pub value: RollupValue,
}

#[derive(Debug, Clone)]
struct Series {
    name: String,
    kind: SeriesKind,
    /// Counter cumulative total / latest gauge level.
    cum: f64,
    /// Counter cumulative total at the last window close.
    prev_cum: f64,
    gauge_sum: f64,
    gauge_min: f64,
    gauge_max: f64,
    gauge_samples: u64,
    sketch: QuantileSketch,
    windows: VecDeque<WindowRollup>,
}

impl Series {
    fn close_window(&mut self, window: u64, start: SimTime, retain: usize) {
        let value = match self.kind {
            SeriesKind::Counter => {
                let delta = self.cum - self.prev_cum;
                self.prev_cum = self.cum;
                RollupValue::Counter { delta }
            }
            SeriesKind::Gauge => {
                let v = if self.gauge_samples == 0 {
                    RollupValue::Gauge {
                        last: self.cum,
                        mean: self.cum,
                        min: self.cum,
                        max: self.cum,
                        samples: 0,
                    }
                } else {
                    RollupValue::Gauge {
                        last: self.cum,
                        mean: self.gauge_sum / self.gauge_samples as f64,
                        min: self.gauge_min,
                        max: self.gauge_max,
                        samples: self.gauge_samples,
                    }
                };
                self.gauge_sum = 0.0;
                self.gauge_min = 0.0;
                self.gauge_max = 0.0;
                self.gauge_samples = 0;
                v
            }
            SeriesKind::Quantile => {
                let digest = self.sketch.digest();
                self.sketch = QuantileSketch::new();
                RollupValue::Quantile(digest)
            }
        };
        self.windows.push_back(WindowRollup {
            window,
            start,
            value,
        });
        while self.windows.len() > retain {
            self.windows.pop_front();
        }
    }
}

/// A closed window, as reported by [`Telemetry::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedWindow {
    /// Window index.
    pub window: u64,
    /// Window start time.
    pub start: SimTime,
    /// Window end time (exclusive).
    pub end: SimTime,
}

/// Windowed rollup hub: labeled series, fixed-interval windows, bounded
/// retention. See the module docs for the design.
#[derive(Debug, Clone)]
pub struct Telemetry {
    window: Duration,
    retain: usize,
    /// Index of the currently open window.
    open: u64,
    series: Vec<Series>,
    index: BTreeMap<String, SeriesId>,
}

impl Telemetry {
    /// Creates a hub with the given window length and per-series
    /// retention (closed windows kept before the oldest is evicted).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `retain` is zero.
    pub fn new(window: Duration, retain: usize) -> Self {
        assert!(!window.is_zero(), "telemetry window must be positive");
        assert!(retain > 0, "telemetry retention must be positive");
        Telemetry {
            window,
            retain,
            open: 0,
            series: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Window length.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Registers (or looks up) a counter series named `name`.
    pub fn counter(&mut self, name: &str) -> SeriesId {
        self.register(name, SeriesKind::Counter)
    }

    /// Registers (or looks up) a gauge series named `name`.
    pub fn gauge(&mut self, name: &str) -> SeriesId {
        self.register(name, SeriesKind::Gauge)
    }

    /// Registers (or looks up) a quantile series named `name`.
    pub fn quantile(&mut self, name: &str) -> SeriesId {
        self.register(name, SeriesKind::Quantile)
    }

    fn register(&mut self, name: &str, kind: SeriesKind) -> SeriesId {
        if let Some(&id) = self.index.get(name) {
            assert_eq!(
                self.series[id].kind, kind,
                "series `{name}` re-registered with a different kind"
            );
            return id;
        }
        let id = self.series.len();
        self.series.push(Series {
            name: name.to_string(),
            kind,
            cum: 0.0,
            prev_cum: 0.0,
            gauge_sum: 0.0,
            gauge_min: 0.0,
            gauge_max: 0.0,
            gauge_samples: 0,
            sketch: QuantileSketch::new(),
            windows: VecDeque::new(),
        });
        self.index.insert(name.to_string(), id);
        id
    }

    /// Increments a counter series.
    pub fn add(&mut self, id: SeriesId, delta: f64) {
        debug_assert_eq!(self.series[id].kind, SeriesKind::Counter);
        self.series[id].cum += delta;
    }

    /// Samples a gauge series.
    pub fn set(&mut self, id: SeriesId, value: f64) {
        let s = &mut self.series[id];
        debug_assert_eq!(s.kind, SeriesKind::Gauge);
        s.cum = value;
        if s.gauge_samples == 0 {
            s.gauge_min = value;
            s.gauge_max = value;
        } else {
            s.gauge_min = s.gauge_min.min(value);
            s.gauge_max = s.gauge_max.max(value);
        }
        s.gauge_sum += value;
        s.gauge_samples += 1;
    }

    /// Records one observation into a quantile series.
    pub fn observe(&mut self, id: SeriesId, value: f64) {
        debug_assert_eq!(self.series[id].kind, SeriesKind::Quantile);
        self.series[id].sketch.record(value);
    }

    /// Closes every window whose end is at or before `now`, returning
    /// them oldest first. Call this from any periodic hook; window
    /// boundaries depend only on the window length, never on the call
    /// cadence, so a coarse caller just closes several windows at once.
    pub fn advance(&mut self, now: SimTime) -> Vec<ClosedWindow> {
        let mut closed = Vec::new();
        loop {
            let start = SimTime::ZERO + self.window * self.open;
            let end = start + self.window;
            if now < end {
                return closed;
            }
            for s in &mut self.series {
                s.close_window(self.open, start, self.retain);
            }
            closed.push(ClosedWindow {
                window: self.open,
                start,
                end,
            });
            self.open += 1;
        }
    }

    /// A series' rollup for a closed window still in retention.
    pub fn rollup(&self, id: SeriesId, window: u64) -> Option<&WindowRollup> {
        let s = &self.series[id];
        let first = s.windows.front()?.window;
        let i = window.checked_sub(first)? as usize;
        s.windows.get(i)
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series is registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Deterministic, name-sorted export of every series' retained
    /// windows.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            window_us: self.window.as_micros(),
            retain: self.retain,
            series: self
                .index
                .values()
                .map(|&id| {
                    let s = &self.series[id];
                    SeriesSnapshot {
                        name: s.name.clone(),
                        kind: s.kind,
                        windows: s.windows.iter().cloned().collect(),
                    }
                })
                .collect(),
        }
    }
}

/// One series' exported state: label, kind and retained windows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesSnapshot {
    /// Dotted series label, e.g. `disk.3.dispatch_bytes`.
    pub name: String,
    /// Counter, gauge or quantile.
    pub kind: SeriesKind,
    /// Retained closed windows, oldest first.
    pub windows: Vec<WindowRollup>,
}

/// Deterministic, name-sorted export of a [`Telemetry`] hub.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct TelemetrySnapshot {
    /// Window length in microseconds.
    pub window_us: u64,
    /// Per-series retention bound the hub ran with.
    pub retain: usize,
    /// Every series, sorted by name.
    pub series: Vec<SeriesSnapshot>,
}

impl TelemetrySnapshot {
    /// Looks up an exported series by name.
    pub fn get(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn counter_windows_report_deltas() {
        let mut h = Telemetry::new(Duration::from_secs(10), 8);
        let c = h.counter("io.bytes");
        h.add(c, 100.0);
        assert!(h.advance(t(5)).is_empty(), "window still open");
        h.add(c, 50.0);
        let closed = h.advance(t(10));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].window, 0);
        match &h.rollup(c, 0).unwrap().value {
            RollupValue::Counter { delta } => assert_eq!(*delta, 150.0),
            v => panic!("wrong rollup: {v:?}"),
        }
        // Next window sees only new increments.
        h.add(c, 7.0);
        h.advance(t(20));
        match &h.rollup(c, 1).unwrap().value {
            RollupValue::Counter { delta } => assert_eq!(*delta, 7.0),
            v => panic!("wrong rollup: {v:?}"),
        }
    }

    #[test]
    fn gauge_carries_forward_when_unsampled() {
        let mut h = Telemetry::new(Duration::from_secs(10), 8);
        let g = h.gauge("power_w");
        h.set(g, 400.0);
        h.set(g, 200.0);
        h.advance(t(10));
        match &h.rollup(g, 0).unwrap().value {
            RollupValue::Gauge {
                last,
                mean,
                min,
                max,
                samples,
            } => {
                assert_eq!(*last, 200.0);
                assert_eq!(*mean, 300.0);
                assert_eq!(*min, 200.0);
                assert_eq!(*max, 400.0);
                assert_eq!(*samples, 2);
            }
            v => panic!("wrong rollup: {v:?}"),
        }
        // No samples in window 1: the last level carries forward.
        h.advance(t(20));
        match &h.rollup(g, 1).unwrap().value {
            RollupValue::Gauge {
                last,
                mean,
                samples,
                ..
            } => {
                assert_eq!(*last, 200.0);
                assert_eq!(*mean, 200.0);
                assert_eq!(*samples, 0);
            }
            v => panic!("wrong rollup: {v:?}"),
        }
    }

    #[test]
    fn quantile_windows_reset_between_windows() {
        let mut h = Telemetry::new(Duration::from_secs(10), 8);
        let q = h.quantile("response_us");
        for v in [10.0, 20.0, 30.0] {
            h.observe(q, v);
        }
        h.advance(t(10));
        h.observe(q, 1000.0);
        h.advance(t(20));
        let w0 = match &h.rollup(q, 0).unwrap().value {
            RollupValue::Quantile(d) => d.clone(),
            v => panic!("wrong rollup: {v:?}"),
        };
        let w1 = match &h.rollup(q, 1).unwrap().value {
            RollupValue::Quantile(d) => d.clone(),
            v => panic!("wrong rollup: {v:?}"),
        };
        assert_eq!(w0.count, 3);
        assert_eq!(w1.count, 1, "window sketch must reset");
        assert_eq!(w1.p50, Some(1000.0));
    }

    #[test]
    fn coarse_advance_closes_all_elapsed_windows() {
        let mut h = Telemetry::new(Duration::from_secs(10), 100);
        let c = h.counter("x");
        h.add(c, 1.0);
        let closed = h.advance(t(55));
        assert_eq!(closed.len(), 5);
        assert_eq!(closed[0].window, 0);
        assert_eq!(closed[4].window, 4);
        assert_eq!(closed[4].end, t(50));
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut h = Telemetry::new(Duration::from_secs(1), 3);
        let c = h.counter("x");
        h.advance(t(10));
        assert!(h.rollup(c, 6).is_none(), "evicted");
        assert!(h.rollup(c, 7).is_some());
        assert!(h.rollup(c, 9).is_some());
        assert!(h.rollup(c, 10).is_none(), "still open");
        let snap = h.snapshot();
        assert_eq!(snap.get("x").unwrap().windows.len(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let mut h = Telemetry::new(Duration::from_secs(1), 1);
        h.counter("x");
        h.gauge("x");
    }
}
