//! Windowed tail-exemplar capture (DESIGN.md §14).
//!
//! An [`ExemplarRecorder`] retains the top-k *slowest* finished
//! [`RequestSpan`]s of every telemetry window, in bounded memory, so a
//! post-run forensics pass (see [`crate::rca`]) can explain exactly
//! which requests an SLO-breaching window's tail was made of. Capture
//! is observational only: the simulation never reads the recorder, so
//! enabling it cannot perturb outcomes.
//!
//! # Determinism contract
//!
//! Selection is a pure function of the *set* of spans completed in a
//! window, not of their arrival order: a span is kept iff fewer than k
//! spans rank before it under the strict total order "longer response
//! first, ties broken by smaller request id" ([`ranks_before`]). Two
//! runs over the same seed therefore retain byte-identical exemplars,
//! and replaying a window's completions in any order yields the same
//! selection (locked down by the `exemplar_props` suite).
//!
//! The recorder is a threshold + bounded insertion structure: once a
//! window holds k exemplars, a completing span is compared against the
//! current floor (the k-th slowest) and rejected without cloning
//! unless it ranks before it.

use crate::span::{PathAttribution, RequestSpan, NUM_PHASES};
use rolo_disk::{DiskId, PowerState};
use rolo_sim::{Duration, SimTime};
use rolo_trace::ReqKind;
use serde::Serialize;
use std::collections::VecDeque;

/// One captured tail exemplar: a slow request's span plus the
/// critical-path decomposition and the power states of the disks it
/// touched, stamped at completion time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExemplarSpan {
    /// Trace-order user request id.
    pub rid: u64,
    /// Read or write.
    pub kind: ReqKind,
    /// Telemetry window the request *completed* in (window `k` covers
    /// `[k·w, (k+1)·w)` of simulated time, same clock as
    /// [`crate::timeseries::Telemetry`]).
    pub window: u64,
    /// Completion instant.
    pub completed: SimTime,
    /// End-to-end response time (µs) — the selection key.
    pub response_us: u64,
    /// Critical-path microseconds per phase, by
    /// [`crate::span::Phase::index`].
    pub phase_us: [u64; NUM_PHASES],
    /// Microseconds of the span no leg explains.
    pub unattributed_us: u64,
    /// The full span, for causality walks (`delayed_by` links).
    pub span: RequestSpan,
    /// Power state of every distinct disk the span's legs touched, as
    /// of the completion instant, sorted by disk id.
    pub disk_states: Vec<(DiskId, PowerState)>,
}

impl ExemplarSpan {
    /// The phase with the largest critical-path share of this span, if
    /// any time was attributed (ties break toward the earlier phase in
    /// [`crate::span::Phase::ALL`] order, deterministically).
    pub fn dominant_phase(&self) -> Option<crate::span::Phase> {
        let (i, &us) = self
            .phase_us
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        (us > 0).then(|| crate::span::Phase::ALL[i])
    }
}

/// The retained exemplars of one closed telemetry window, slowest
/// first.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowExemplars {
    /// Telemetry window index.
    pub window: u64,
    /// Captured spans, ordered by [`ranks_before`] (slowest first,
    /// ties by ascending rid). Never more than the recorder's k.
    pub spans: Vec<ExemplarSpan>,
}

/// Every window's retained exemplars, exported at end of run via
/// `RunObservations`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ExemplarSet {
    /// Telemetry window length (µs).
    pub window_us: u64,
    /// The per-window retention bound k the recorder ran with.
    pub per_window: usize,
    /// Non-empty windows in ascending window order (empty windows are
    /// not stored).
    pub windows: Vec<WindowExemplars>,
}

impl ExemplarSet {
    /// The exemplars of window `idx`, if any were captured.
    pub fn window(&self, idx: u64) -> Option<&WindowExemplars> {
        self.windows.iter().find(|w| w.window == idx)
    }

    /// Total exemplars retained across all windows.
    pub fn total(&self) -> usize {
        self.windows.iter().map(|w| w.spans.len()).sum()
    }
}

/// The strict total selection order: `true` when span `a` should be
/// retained in preference to span `b` — longer response first, equal
/// responses broken by smaller request id. Total over distinct rids,
/// so top-k selection under it is order-insensitive.
pub fn ranks_before(a_response_us: u64, a_rid: u64, b_response_us: u64, b_rid: u64) -> bool {
    a_response_us > b_response_us || (a_response_us == b_response_us && a_rid < b_rid)
}

/// The `k` slowest spans of a finished set under [`ranks_before`],
/// slowest first — the offline (whole-run) form of the recorder's
/// per-window selection, shared by `span_report --top`.
pub fn slowest_spans(spans: &[RequestSpan], k: usize) -> Vec<&RequestSpan> {
    let mut top: Vec<&RequestSpan> = Vec::with_capacity(k.min(spans.len()));
    for s in spans {
        let (resp, rid) = (s.duration().as_micros(), s.id);
        if top.len() == k {
            match top.last() {
                Some(last) if ranks_before(resp, rid, last.duration().as_micros(), last.id) => {}
                _ => continue,
            }
        }
        let at = top
            .iter()
            .position(|t| ranks_before(resp, rid, t.duration().as_micros(), t.id))
            .unwrap_or(top.len());
        top.insert(at, s);
        top.truncate(k);
    }
    top
}

/// Bounded per-window top-k recorder of the slowest request spans.
///
/// Windows follow the telemetry clock (window `k` covers
/// `[k·w, (k+1)·w)`); completions arrive in non-decreasing simulated
/// time, so a window seals as soon as a later one is observed (or on
/// [`ExemplarRecorder::advance`], which the context calls alongside
/// `Telemetry::advance`). At most `retain` sealed windows are kept,
/// oldest evicted first — memory is bounded by `retain · k` spans.
#[derive(Debug)]
pub struct ExemplarRecorder {
    k: usize,
    window_us: u64,
    retain: usize,
    current_window: u64,
    /// The open window's selection, ordered by [`ranks_before`].
    current: Vec<ExemplarSpan>,
    sealed: VecDeque<WindowExemplars>,
    considered: u64,
    captured: u64,
}

impl ExemplarRecorder {
    /// Creates a recorder keeping the `k` slowest spans per `window`,
    /// retaining at most `retain` sealed windows.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the window is zero-length (the config
    /// layer validates both).
    pub fn new(k: usize, window: Duration, retain: usize) -> Self {
        assert!(k > 0, "zero exemplars per window");
        assert!(!window.is_zero(), "zero exemplar window");
        ExemplarRecorder {
            k,
            window_us: window.as_micros(),
            retain: retain.max(1),
            current_window: 0,
            current: Vec::new(),
            sealed: VecDeque::new(),
            considered: 0,
            captured: 0,
        }
    }

    /// The per-window retention bound k.
    pub fn per_window(&self) -> usize {
        self.k
    }

    /// Spans offered to the recorder so far.
    pub fn considered(&self) -> u64 {
        self.considered
    }

    /// Offers a finished span completing at `at` with its critical
    /// path already computed; `power` is the per-slot power-state
    /// cache for stamping the disks the span touched (slots beyond
    /// the slice are skipped).
    pub fn observe(
        &mut self,
        at: SimTime,
        span: &RequestSpan,
        path: &PathAttribution,
        power: &[PowerState],
    ) {
        let window = at.as_micros() / self.window_us;
        self.roll_to(window);
        self.considered += 1;
        let (resp, rid) = (path.total_us, span.id);
        if self.current.len() == self.k {
            // Threshold fast path: reject without cloning unless the
            // span outranks the current floor.
            let floor = self.current.last().expect("k > 0");
            if !ranks_before(resp, rid, floor.response_us, floor.rid) {
                return;
            }
        }
        let mut disks: Vec<DiskId> = span.legs.iter().map(|l| l.disk).collect();
        disks.sort_unstable();
        disks.dedup();
        let disk_states = disks
            .into_iter()
            .filter_map(|d| power.get(d).map(|&s| (d, s)))
            .collect();
        let ex = ExemplarSpan {
            rid,
            kind: span.kind,
            window,
            completed: at,
            response_us: resp,
            phase_us: path.phase_us,
            unattributed_us: path.unattributed_us,
            span: span.clone(),
            disk_states,
        };
        let at_idx = self
            .current
            .iter()
            .position(|t| ranks_before(resp, rid, t.response_us, t.rid))
            .unwrap_or(self.current.len());
        self.current.insert(at_idx, ex);
        self.current.truncate(self.k);
        self.captured += 1;
    }

    /// Seals every window that ended at or before `now`, mirroring
    /// `Telemetry::advance` so the exemplar ring and the telemetry
    /// ring stay on the same clock.
    pub fn advance(&mut self, now: SimTime) {
        self.roll_to(now.as_micros() / self.window_us);
    }

    fn roll_to(&mut self, window: u64) {
        if window <= self.current_window {
            return;
        }
        if !self.current.is_empty() {
            self.sealed.push_back(WindowExemplars {
                window: self.current_window,
                spans: std::mem::take(&mut self.current),
            });
            while self.sealed.len() > self.retain {
                self.sealed.pop_front();
            }
        }
        self.current_window = window;
    }

    /// Consumes the recorder, sealing the open window and returning
    /// every retained window in ascending order.
    pub fn finish(mut self) -> ExemplarSet {
        if !self.current.is_empty() {
            self.sealed.push_back(WindowExemplars {
                window: self.current_window,
                spans: std::mem::take(&mut self.current),
            });
            while self.sealed.len() > self.retain {
                self.sealed.pop_front();
            }
        }
        ExemplarSet {
            window_us: self.window_us,
            per_window: self.k,
            windows: self.sealed.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::critical_path;

    fn span(rid: u64, begin_us: u64, end_us: u64) -> RequestSpan {
        RequestSpan {
            id: rid,
            kind: ReqKind::Read,
            begin: SimTime::from_micros(begin_us),
            end: SimTime::from_micros(end_us),
            legs: Vec::new(),
        }
    }

    fn offer(rec: &mut ExemplarRecorder, s: &RequestSpan) {
        let path = critical_path(s);
        rec.observe(s.end, s, &path, &[]);
    }

    #[test]
    fn keeps_the_k_slowest_with_rid_tiebreak() {
        let mut rec = ExemplarRecorder::new(2, Duration::from_secs(60), 8);
        for (rid, dur) in [(1, 100), (2, 300), (3, 300), (4, 50)] {
            offer(&mut rec, &span(rid, 0, dur));
        }
        let set = rec.finish();
        assert_eq!(set.total(), 2);
        let w = &set.windows[0];
        assert_eq!(w.window, 0);
        // Both 300 µs spans survive; the tie ranks rid 2 first.
        assert_eq!(w.spans[0].rid, 2);
        assert_eq!(w.spans[1].rid, 3);
    }

    #[test]
    fn windows_follow_the_telemetry_clock() {
        let w = Duration::from_secs(60);
        let mut rec = ExemplarRecorder::new(4, w, 8);
        offer(&mut rec, &span(1, 0, 10));
        offer(&mut rec, &span(2, 60_000_000, 60_000_500));
        offer(&mut rec, &span(3, 125_000_000, 125_000_900));
        let set = rec.finish();
        let windows: Vec<u64> = set.windows.iter().map(|x| x.window).collect();
        assert_eq!(windows, vec![0, 1, 2]);
        assert_eq!(set.window(1).unwrap().spans[0].rid, 2);
    }

    #[test]
    fn retention_evicts_the_oldest_window() {
        let w = Duration::from_secs(60);
        let mut rec = ExemplarRecorder::new(1, w, 2);
        for i in 0..5u64 {
            offer(&mut rec, &span(i, i * 60_000_000, i * 60_000_000 + 100));
        }
        let set = rec.finish();
        let windows: Vec<u64> = set.windows.iter().map(|x| x.window).collect();
        assert_eq!(windows, vec![3, 4], "only the freshest two windows kept");
    }

    #[test]
    fn slowest_spans_matches_the_recorder_order() {
        let spans: Vec<RequestSpan> = [(1u64, 40u64), (2, 90), (3, 90), (4, 10), (5, 70)]
            .iter()
            .map(|&(rid, d)| span(rid, 0, d))
            .collect();
        let top = slowest_spans(&spans, 3);
        let rids: Vec<u64> = top.iter().map(|s| s.id).collect();
        assert_eq!(rids, vec![2, 3, 5]);
        let mut rec = ExemplarRecorder::new(3, Duration::from_secs(60), 1);
        for s in &spans {
            offer(&mut rec, s);
        }
        let set = rec.finish();
        let rec_rids: Vec<u64> = set.windows[0].spans.iter().map(|e| e.rid).collect();
        assert_eq!(rec_rids, rids);
    }
}
