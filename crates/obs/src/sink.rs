//! Trace sinks: where emitted [`SimEvent`]s go.
//!
//! The simulation context owns one `Box<dyn TraceSink>`. Emit points
//! check [`TraceSink::enabled`] once (cached as a bool on the context),
//! so with the default [`NullSink`] the hot path pays a single predicted
//! branch and never constructs the event value.

use crate::event::{SimEvent, TracedEvent};
use rolo_sim::SimTime;
use std::collections::BTreeMap;

/// Destination for structured trace events.
///
/// Implementations run on the (single-threaded) simulation thread, so
/// `record` takes `&mut self` and needs no synchronization; the bounded
/// [`RingSink`] keeps recording O(1) and allocation-free once warm.
pub trait TraceSink: std::fmt::Debug {
    /// Whether emit points should record into this sink at all.
    ///
    /// Cached by the simulation context at construction: a sink must not
    /// change its answer over its lifetime.
    fn enabled(&self) -> bool;

    /// Records one event at simulated time `at`.
    fn record(&mut self, at: SimTime, event: SimEvent);

    /// Total events offered to the sink (recorded + dropped).
    fn recorded(&self) -> u64 {
        0
    }

    /// Events overwritten/discarded due to capacity limits.
    fn dropped(&self) -> u64 {
        0
    }

    /// Removes and returns the retained events in emission order.
    fn drain(&mut self) -> Vec<TracedEvent> {
        Vec::new()
    }

    /// Short sink name for profiling output (e.g. `"null"`, `"ring"`).
    fn name(&self) -> &'static str;
}

/// The default no-op sink: tracing off.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _at: SimTime, _event: SimEvent) {}

    fn name(&self) -> &'static str {
        "null"
    }
}

/// Bounded ring buffer keeping the most recent events.
///
/// When full, the oldest event is overwritten and counted as dropped, so
/// a long run with a small ring retains its tail — the part that matters
/// for post-mortem debugging.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<TracedEvent>,
    capacity: usize,
    /// Index of the oldest retained event once the buffer has wrapped.
    head: usize,
    recorded: u64,
    dropped: u64,
    /// Overwritten events rolled up per [`SimEvent`] kind, so per-kind
    /// counts over a drained ring can be corrected for wrap-around.
    dropped_by_kind: BTreeMap<&'static str, u64>,
}

impl RingSink {
    /// Creates a ring sink retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingSink capacity must be non-zero");
        RingSink {
            buf: Vec::new(),
            capacity,
            head: 0,
            recorded: 0,
            dropped: 0,
            dropped_by_kind: BTreeMap::new(),
        }
    }

    /// Overwritten-event counts per [`SimEvent::kind_name`]. A kind's
    /// true emission count is its count in the drained buffer plus its
    /// entry here.
    pub fn dropped_by_kind(&self) -> &BTreeMap<&'static str, u64> {
        &self.dropped_by_kind
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been retained yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at: SimTime, event: SimEvent) {
        self.recorded += 1;
        let ev = TracedEvent { at, event };
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            let evicted = self.buf[self.head].event.kind_name();
            *self.dropped_by_kind.entry(evicted).or_default() += 1;
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn drain(&mut self) -> Vec<TracedEvent> {
        let head = self.head;
        self.head = 0;
        self.recorded = 0;
        self.dropped = 0;
        self.dropped_by_kind.clear();
        let mut out = std::mem::take(&mut self.buf);
        out.rotate_left(head);
        out
    }

    fn name(&self) -> &'static str {
        "ring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> (SimTime, SimEvent) {
        (SimTime::from_micros(i), SimEvent::IoTimeout { io: i })
    }

    #[test]
    fn null_sink_records_nothing() {
        let mut s = NullSink;
        assert!(!s.enabled());
        let (at, e) = ev(1);
        s.record(at, e);
        assert_eq!(s.recorded(), 0);
        assert!(s.drain().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_drains_in_order() {
        let mut s = RingSink::new(3);
        for i in 0..5 {
            let (at, e) = ev(i);
            s.record(at, e);
        }
        assert_eq!(s.recorded(), 5);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.len(), 3);
        let drained = s.drain();
        let times: Vec<u64> = drained.iter().map(|t| t.at.as_micros()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert!(s.is_empty());
        assert_eq!(s.recorded(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn ring_rejects_zero_capacity() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn dropped_events_are_counted_per_kind() {
        let mut s = RingSink::new(2);
        // Two kinds interleaved; the first three get evicted.
        s.record(SimTime::from_micros(0), SimEvent::IoTimeout { io: 0 });
        s.record(SimTime::from_micros(1), SimEvent::TraceEnded);
        s.record(SimTime::from_micros(2), SimEvent::IoTimeout { io: 2 });
        s.record(SimTime::from_micros(3), SimEvent::IoTimeout { io: 3 });
        s.record(SimTime::from_micros(4), SimEvent::IoLost { io: 4 });
        assert_eq!(s.dropped(), 3);
        let by_kind = s.dropped_by_kind();
        assert_eq!(by_kind.get("IoTimeout").copied(), Some(2));
        assert_eq!(by_kind.get("TraceEnded").copied(), Some(1));
        assert_eq!(
            by_kind.values().sum::<u64>(),
            s.dropped(),
            "per-kind drops must sum to the aggregate"
        );
        // Drain resets the roll-up with the other counters.
        let _ = s.drain();
        assert!(s.dropped_by_kind().is_empty());
    }

    #[test]
    fn mixed_kind_overflow_accounts_every_drop_exactly() {
        use std::collections::BTreeMap;
        let mut s = RingSink::new(7);
        // 100 events cycling through three kinds, far past capacity.
        let mut emitted: BTreeMap<&'static str, u64> = BTreeMap::new();
        for i in 0..100u64 {
            let event = match i % 3 {
                0 => SimEvent::IoTimeout { io: i },
                1 => SimEvent::IoLost { io: i },
                _ => SimEvent::TraceEnded,
            };
            *emitted.entry(event.kind_name()).or_default() += 1;
            s.record(SimTime::from_micros(i), event);
        }
        assert_eq!(s.recorded(), 100);
        assert_eq!(s.dropped(), 93);
        assert_eq!(
            s.dropped_by_kind().values().sum::<u64>(),
            s.dropped(),
            "per-kind drops must sum to the aggregate"
        );
        // Retained + dropped reconstructs the true per-kind emission
        // counts exactly.
        let by_kind = s.dropped_by_kind().clone();
        let drained = s.drain();
        let mut reconstructed = by_kind;
        for t in &drained {
            *reconstructed.entry(t.event.kind_name()).or_default() += 1;
        }
        assert_eq!(reconstructed, emitted);
        // Overwrite-oldest: exactly the newest `capacity` events
        // survive, still in emission order.
        let times: Vec<u64> = drained.iter().map(|t| t.at.as_micros()).collect();
        assert_eq!(times, (93..100).collect::<Vec<_>>());
    }
}
