//! Declarative SLOs with online multi-window burn-rate alerting.
//!
//! An [`SloSpec`] states an objective over one telemetry window — a
//! latency quantile target ("p95 ≤ 500 ms") or an energy budget ("mean
//! draw ≤ 600 W"). The [`SloMonitor`] consumes each closed window from
//! the [`crate::timeseries`] hub, marks it good or bad against every
//! objective, and converts the recent bad-window history into burn
//! rates over two lookbacks (SRE-style multi-window alerting): the
//! *short* lookback reacts quickly, the *long* lookback suppresses
//! one-off blips. A window whose short burn crosses the warning
//! threshold yields [`SloSignal::Warning`]; one whose short *and* long
//! burns cross the (higher) breach threshold yields
//! [`SloSignal::Breach`]. Because the breach condition strictly implies
//! the warning condition, a breach window always carries its warning
//! first — the lifecycle ordering `trace_dump --slo` checks.
//!
//! The monitor is pure bookkeeping over already-frozen rollups: it
//! never touches simulator state, so evaluating SLOs online cannot
//! perturb a run.

use crate::sketch::SketchDigest;
use rolo_sim::Duration;
use serde::Serialize;
use std::collections::VecDeque;

/// Which rung of the digest's quantile ladder an SLO targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Quantile {
    /// Median.
    P50,
    /// 90th percentile.
    P90,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
}

impl Quantile {
    /// Short stable name (`p95`), for labels and event payloads.
    pub fn name(self) -> &'static str {
        match self {
            Quantile::P50 => "p50",
            Quantile::P90 => "p90",
            Quantile::P95 => "p95",
            Quantile::P99 => "p99",
        }
    }

    /// Reads this rung from a window digest (`None` when the window
    /// saw no observations).
    pub fn of(self, d: &SketchDigest) -> Option<f64> {
        match self {
            Quantile::P50 => d.p50,
            Quantile::P90 => d.p90,
            Quantile::P95 => d.p95,
            Quantile::P99 => d.p99,
        }
    }
}

/// What an SLO constrains, per telemetry window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SloObjective {
    /// A response-time quantile must stay at or under `target`.
    LatencyQuantile {
        /// Which quantile of the window's response distribution.
        quantile: Quantile,
        /// Upper bound for a good window.
        target: Duration,
    },
    /// Mean array power draw over the window must stay at or under the
    /// budget.
    EnergyBudget {
        /// Upper bound on mean watts for a good window.
        max_mean_watts: f64,
    },
}

/// One declarative objective with a stable name.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloSpec {
    /// Stable identifier carried in emitted events (e.g.
    /// `latency_p95`).
    pub name: String,
    /// The per-window objective.
    pub objective: SloObjective,
}

impl SloSpec {
    /// A latency-quantile objective.
    pub fn latency(name: &str, quantile: Quantile, target: Duration) -> Self {
        SloSpec {
            name: name.to_string(),
            objective: SloObjective::LatencyQuantile { quantile, target },
        }
    }

    /// An energy-budget objective.
    pub fn energy(name: &str, max_mean_watts: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            objective: SloObjective::EnergyBudget { max_mean_watts },
        }
    }

    /// Validates the spec, returning a description of the first
    /// problem.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.name.is_empty() {
            return Err("SLO name must be non-empty");
        }
        match &self.objective {
            SloObjective::LatencyQuantile { target, .. } => {
                if target.is_zero() {
                    return Err("latency SLO target must be positive");
                }
            }
            SloObjective::EnergyBudget { max_mean_watts } => {
                if max_mean_watts.is_nan() || *max_mean_watts <= 0.0 {
                    return Err("energy SLO budget must be positive");
                }
            }
        }
        Ok(())
    }
}

/// Multi-window burn-rate alerting thresholds.
///
/// The burn rate over a lookback of `n` windows is
/// `bad_fraction / error_budget`: burning at exactly 1.0 consumes the
/// allowed bad-window budget, higher burns exhaust it proportionally
/// faster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BurnRatePolicy {
    /// Fast lookback length, in windows.
    pub short_windows: usize,
    /// Slow lookback length, in windows (`≥ short_windows`).
    pub long_windows: usize,
    /// Allowed bad-window fraction, in `(0, 1]`.
    pub error_budget: f64,
    /// Warning fires when the short burn reaches this.
    pub warn_burn: f64,
    /// Breach fires when *both* burns reach this (`≥ warn_burn`).
    pub breach_burn: f64,
}

impl BurnRatePolicy {
    /// Validates the policy, returning a description of the first
    /// problem.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.short_windows == 0 {
            return Err("short lookback must be at least one window");
        }
        if self.long_windows < self.short_windows {
            return Err("long lookback must be at least the short lookback");
        }
        if !(self.error_budget > 0.0 && self.error_budget <= 1.0) {
            return Err("error budget must be in (0, 1]");
        }
        if self.warn_burn.is_nan() || self.warn_burn <= 0.0 {
            return Err("warn burn threshold must be positive");
        }
        if self.breach_burn < self.warn_burn {
            return Err("breach burn threshold must be at least the warn threshold");
        }
        Ok(())
    }
}

/// Signal strength of an emitted SLO event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SloSignal {
    /// The short-lookback burn crossed the warning threshold.
    Warning,
    /// Both lookbacks crossed the breach threshold.
    Breach,
}

/// One alert produced by a window evaluation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloAlert {
    /// Name of the [`SloSpec`] that fired.
    pub slo: String,
    /// Telemetry window index that closed the evaluation.
    pub window: u64,
    /// Warning or breach.
    pub signal: SloSignal,
    /// Burn rate over the short lookback.
    pub burn_short: f64,
    /// Burn rate over the long lookback.
    pub burn_long: f64,
    /// The window's observed value (µs for latency, watts for
    /// energy); 0 when the window had no observations.
    pub observed: f64,
    /// The objective's bound, in the same unit.
    pub target: f64,
}

#[derive(Debug, Clone)]
struct SloState {
    spec: SloSpec,
    /// Recent windows' good/bad verdicts, newest last, bounded by the
    /// long lookback.
    bad: VecDeque<bool>,
    windows_seen: u64,
}

impl SloState {
    fn burn(&self, lookback: usize, budget: f64) -> f64 {
        let n = self.bad.len().min(lookback);
        if n == 0 {
            return 0.0;
        }
        let bad = self.bad.iter().rev().take(n).filter(|&&b| b).count();
        (bad as f64 / n as f64) / budget
    }
}

/// What one closed telemetry window looked like, as fed to the
/// monitor.
#[derive(Debug, Clone, Copy)]
pub struct WindowObservation<'a> {
    /// Window index.
    pub window: u64,
    /// Digest of the window's response-time quantile series.
    pub latency: &'a SketchDigest,
    /// Mean array power draw over the window, in watts.
    pub mean_watts: f64,
}

/// Online SLO evaluator: feed it every closed window, get back the
/// alerts that window raised (warnings before breaches, specs in
/// declaration order).
#[derive(Debug, Clone)]
pub struct SloMonitor {
    policy: BurnRatePolicy,
    slos: Vec<SloState>,
}

impl SloMonitor {
    /// Builds a monitor for `specs` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy or any spec fails validation — drivers
    /// validate via `SimConfig::check` first.
    pub fn new(policy: BurnRatePolicy, specs: Vec<SloSpec>) -> Self {
        policy.check().expect("valid burn-rate policy");
        let slos = specs
            .into_iter()
            .map(|spec| {
                spec.check().expect("valid SLO spec");
                SloState {
                    spec,
                    bad: VecDeque::new(),
                    windows_seen: 0,
                }
            })
            .collect();
        SloMonitor { policy, slos }
    }

    /// Number of configured SLOs.
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// True when no SLO is configured.
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Evaluates one closed window against every SLO.
    ///
    /// A warning needs a full short lookback of history; a breach a
    /// full long lookback — so the first windows of a run can warn
    /// but never breach, and a breach always implies (and follows) a
    /// warning for the same window.
    pub fn observe_window(&mut self, obs: WindowObservation<'_>) -> Vec<SloAlert> {
        let mut alerts = Vec::new();
        let p = self.policy;
        for s in &mut self.slos {
            let (observed, target, bad) = match &s.spec.objective {
                SloObjective::LatencyQuantile { quantile, target } => {
                    let t = target.as_micros() as f64;
                    match quantile.of(obs.latency) {
                        // An idle window burns no latency budget.
                        None => (0.0, t, false),
                        Some(v) => (v, t, v > t),
                    }
                }
                SloObjective::EnergyBudget { max_mean_watts } => (
                    obs.mean_watts,
                    *max_mean_watts,
                    obs.mean_watts > *max_mean_watts,
                ),
            };
            s.bad.push_back(bad);
            while s.bad.len() > p.long_windows {
                s.bad.pop_front();
            }
            s.windows_seen += 1;
            let burn_short = s.burn(p.short_windows, p.error_budget);
            let burn_long = s.burn(p.long_windows, p.error_budget);
            let alert = |signal| SloAlert {
                slo: s.spec.name.clone(),
                window: obs.window,
                signal,
                burn_short,
                burn_long,
                observed,
                target,
            };
            if s.windows_seen >= p.short_windows as u64 && burn_short >= p.warn_burn {
                alerts.push(alert(SloSignal::Warning));
                if s.windows_seen >= p.long_windows as u64
                    && burn_short >= p.breach_burn
                    && burn_long >= p.breach_burn
                {
                    alerts.push(alert(SloSignal::Breach));
                }
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::QuantileSketch;

    fn policy() -> BurnRatePolicy {
        BurnRatePolicy {
            short_windows: 2,
            long_windows: 4,
            error_budget: 0.5,
            warn_burn: 1.0,
            breach_burn: 2.0,
        }
    }

    fn digest_of(vals: &[f64]) -> SketchDigest {
        let mut s = QuantileSketch::new();
        for &v in vals {
            s.record(v);
        }
        s.digest()
    }

    fn slow() -> SketchDigest {
        digest_of(&[600_000.0; 10])
    }

    fn fast() -> SketchDigest {
        digest_of(&[4_000.0; 10])
    }

    fn latency_monitor() -> SloMonitor {
        SloMonitor::new(
            policy(),
            vec![SloSpec::latency(
                "latency_p95",
                Quantile::P95,
                Duration::from_millis(500),
            )],
        )
    }

    fn feed(m: &mut SloMonitor, window: u64, d: &SketchDigest) -> Vec<SloAlert> {
        m.observe_window(WindowObservation {
            window,
            latency: d,
            mean_watts: 100.0,
        })
    }

    #[test]
    fn warning_precedes_breach_and_needs_history() {
        let mut m = latency_monitor();
        // Window 0: bad, but the short lookback isn't full yet.
        assert!(feed(&mut m, 0, &slow()).is_empty());
        // Window 1: short lookback full and 100% bad → warn (burn 2.0
        // ≥ warn 1.0); long lookback not full yet → no breach.
        let a = feed(&mut m, 1, &slow());
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].signal, SloSignal::Warning);
        assert!(a[0].burn_short >= 2.0);
        feed(&mut m, 2, &slow());
        // Window 3: long lookback full, both burns 2.0 ≥ breach 2.0 →
        // warning then breach, in that order, same window.
        let a = feed(&mut m, 3, &slow());
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].signal, SloSignal::Warning);
        assert_eq!(a[1].signal, SloSignal::Breach);
        assert_eq!(a[0].window, a[1].window);
    }

    #[test]
    fn good_windows_stay_silent_and_recover() {
        let mut m = latency_monitor();
        for w in 0..4 {
            assert!(feed(&mut m, w, &fast()).is_empty(), "window {w}");
        }
        // One bad window of four: short burn = (1/2)/0.5 = 1 → warn,
        // long burn = (1/4)/0.5 = 0.5 < 2 → no breach.
        let a = feed(&mut m, 4, &slow());
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].signal, SloSignal::Warning);
        // Recovery: the bad window still sits in the short lookback at
        // window 5 (burn exactly 1.0 → warn), then ages out.
        assert_eq!(feed(&mut m, 5, &fast()).len(), 1);
        assert!(feed(&mut m, 6, &fast()).is_empty());
    }

    #[test]
    fn idle_windows_burn_no_budget() {
        let mut m = latency_monitor();
        let idle = QuantileSketch::new().digest();
        for w in 0..6 {
            assert!(feed(&mut m, w, &idle).is_empty(), "window {w}");
        }
    }

    #[test]
    fn energy_budget_tracks_mean_watts() {
        let mut m = SloMonitor::new(policy(), vec![SloSpec::energy("power_budget", 200.0)]);
        let d = fast();
        let mut hot = |w, watts| {
            m.observe_window(WindowObservation {
                window: w,
                latency: &d,
                mean_watts: watts,
            })
        };
        assert!(hot(0, 300.0).is_empty());
        let a = hot(1, 300.0);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].observed, 300.0);
        assert_eq!(a[0].target, 200.0);
        hot(2, 300.0);
        let a = hot(3, 300.0);
        assert_eq!(a.last().unwrap().signal, SloSignal::Breach);
    }

    #[test]
    fn invalid_policy_is_rejected() {
        let mut p = policy();
        p.long_windows = 1;
        assert!(p.check().is_err());
        let mut p = policy();
        p.error_budget = 0.0;
        assert!(p.check().is_err());
        let mut p = policy();
        p.breach_burn = 0.5;
        assert!(p.check().is_err(), "breach below warn");
        assert!(SloSpec::latency("", Quantile::P95, Duration::from_secs(1))
            .check()
            .is_err());
        assert!(SloSpec::energy("e", 0.0).check().is_err());
    }
}
