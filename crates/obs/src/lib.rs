#![warn(missing_docs)]
//! Observability layer for the RoLo simulator: typed trace events, trace
//! sinks, a metrics registry and wall-clock run profiling.
//!
//! The simulator core stays agnostic of *how* events are consumed: every
//! instrumented layer (driver, controllers, fault injection, rebuild)
//! emits [`SimEvent`]s into a [`TraceSink`] owned by the simulation
//! context. The default sink is [`NullSink`], so an untraced run pays a
//! single predicted branch per emit point and never constructs the event
//! value. Swapping in a [`RingSink`] captures the most recent events in a
//! bounded ring buffer for post-mortem analysis (see the `trace_dump`
//! binary in `rolo-bench`).
//!
//! Alongside the event stream, a [`MetricsRegistry`] holds named
//! counters, gauges and histograms that controllers and the driver
//! publish into. The registry is *always on* and fully deterministic —
//! its export is embedded in the simulation report, so a run traced with
//! a `RingSink` produces byte-identical results to an untraced run.
//! Wall-clock profiling ([`RunProfile`]) is the one deliberately
//! non-deterministic part and is excluded from deterministic
//! serializations.

pub mod event;
pub mod exemplar;
pub mod profile;
pub mod rca;
pub mod registry;
pub mod sink;
pub mod sketch;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use event::{SimEvent, TracedEvent};
pub use exemplar::{
    ranks_before, slowest_spans, ExemplarRecorder, ExemplarSet, ExemplarSpan, WindowExemplars,
};
pub use profile::RunProfile;
pub use rca::{Culprit, PhaseBlame, RcaReport, WindowRca};
pub use registry::{MetricId, MetricKind, MetricSummary, MetricsRegistry, MetricsReport};
pub use sink::{NullSink, RingSink, TraceSink};
pub use sketch::{QuantileSketch, SketchDigest};
pub use slo::{
    BurnRatePolicy, Quantile, SloAlert, SloMonitor, SloObjective, SloSignal, SloSpec,
    WindowObservation,
};
pub use span::{
    critical_path, AttributionSummary, BgSpan, BgSpanKind, LegFlavor, PathAttribution, Phase,
    PhaseShare, PhaseSlice, PhaseStats, RequestSpan, SpanAnalysis, SpanCollector, SpanLeg, SpanSet,
    NUM_PHASES,
};
pub use timeseries::{
    ClosedWindow, RollupValue, SeriesId, SeriesKind, SeriesSnapshot, Telemetry, TelemetrySnapshot,
    WindowRollup,
};
