//! Per-request span trees with typed phases and critical-path
//! attribution (DESIGN.md §9).
//!
//! A [`RequestSpan`] covers one user request from admission to
//! completion. Each sub-I/O the controller issued for it becomes a
//! [`SpanLeg`] whose time is decomposed into typed [`Phase`] slices —
//! queue wait, seek, rotation, the transfer itself (typed by what the
//! controller used it for: in-place transfer, log append, mirror copy or
//! degraded redirect), spin-up stalls and background interference.
//! Background activities (destage cycles, rebuilds) get their own
//! [`BgSpan`]s, and a foreground leg delayed by one records the link
//! ([`SpanLeg::delayed_by`]), giving parent/child causality: "this
//! destage delayed these user requests".
//!
//! [`critical_path`] folds a finished span into per-phase totals that
//! sum to the span's duration (walking backwards from completion along
//! the longest-running legs), and [`SpanAnalysis`] aggregates those
//! totals across requests into per-phase latency histograms — the data
//! behind the `span_report` attribution table.

use crate::sketch::QuantileSketch;
use rolo_disk::{DiskId, ServiceBreakdown};
use rolo_sim::{Duration, SimTime};
use rolo_trace::ReqKind;
use serde::Serialize;
use std::collections::HashMap;

/// Number of typed phases ([`Phase::ALL`] has one entry per phase).
pub const NUM_PHASES: usize = 11;

/// Where a slice of a request's latency went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Phase {
    /// Waiting behind other *foreground* requests on the same disk.
    QueueWait,
    /// Arm movement of the serving transfer.
    Seek,
    /// Rotational latency of the serving transfer.
    Rotation,
    /// Media transfer of an in-place (primary copy) read or write.
    Transfer,
    /// Media transfer of a sequential log append.
    LogAppend,
    /// Media transfer of a mirror-copy write (RAID10 second copy, RoLo
    /// direct-write second copy, GRAID direct mirror fallback).
    MirrorCopy,
    /// Waiting for a standby disk to spin up (RoLo-E read misses).
    SpinUpStall,
    /// Waiting behind a background destage/rebuild transfer already on
    /// the media.
    DestageInterference,
    /// Media transfer of an I/O redirected to the surviving mirror
    /// partner while the array is degraded.
    DegradedRedirect,
    /// Waiting behind a background compaction transfer (live log
    /// records being relocated out of a mostly-dead segment).
    Compaction,
    /// Waiting behind a background scrub transfer (an extent being
    /// verified by the integrity scrub engine).
    ScrubInterference,
}

impl Phase {
    /// Every phase, in display order. `ALL[p.index()] == p`.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::QueueWait,
        Phase::Seek,
        Phase::Rotation,
        Phase::Transfer,
        Phase::LogAppend,
        Phase::MirrorCopy,
        Phase::SpinUpStall,
        Phase::DestageInterference,
        Phase::DegradedRedirect,
        Phase::Compaction,
        Phase::ScrubInterference,
    ];

    /// Stable dense index of this phase into `[_; NUM_PHASES]` arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::QueueWait => 0,
            Phase::Seek => 1,
            Phase::Rotation => 2,
            Phase::Transfer => 3,
            Phase::LogAppend => 4,
            Phase::MirrorCopy => 5,
            Phase::SpinUpStall => 6,
            Phase::DestageInterference => 7,
            Phase::DegradedRedirect => 8,
            Phase::Compaction => 9,
            Phase::ScrubInterference => 10,
        }
    }

    /// Short stable name, for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueueWait => "QueueWait",
            Phase::Seek => "Seek",
            Phase::Rotation => "Rotation",
            Phase::Transfer => "Transfer",
            Phase::LogAppend => "LogAppend",
            Phase::MirrorCopy => "MirrorCopy",
            Phase::SpinUpStall => "SpinUpStall",
            Phase::DestageInterference => "DestageInterference",
            Phase::DegradedRedirect => "DegradedRedirect",
            Phase::Compaction => "Compaction",
            Phase::ScrubInterference => "ScrubInterference",
        }
    }
}

/// What a sub-I/O's media transfer was *for*, as declared by the
/// controller that issued it. Maps the transfer slice of a leg to its
/// typed phase; positioning (seek/rotation) and waiting phases are
/// derived from the disk's [`ServiceBreakdown`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum LegFlavor {
    /// An in-place read or write of the primary copy.
    Transfer,
    /// A sequential append to a logging region.
    LogAppend,
    /// The second (mirror) copy of a direct write.
    MirrorCopy,
    /// A read/write redirected to the surviving partner of a failed
    /// disk.
    DegradedRedirect,
}

impl LegFlavor {
    /// The phase the transfer slice of a leg with this flavor lands in.
    pub fn phase(self) -> Phase {
        match self {
            LegFlavor::Transfer => Phase::Transfer,
            LegFlavor::LogAppend => Phase::LogAppend,
            LegFlavor::MirrorCopy => Phase::MirrorCopy,
            LegFlavor::DegradedRedirect => Phase::DegradedRedirect,
        }
    }
}

/// One typed slice of a leg's time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PhaseSlice {
    /// Which phase this slice belongs to.
    pub phase: Phase,
    /// Length of the slice.
    pub duration: Duration,
}

/// One sub-I/O of a user request: its interval on one disk, decomposed
/// into phase slices laid out contiguously from `submit` to `end`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanLeg {
    /// Disk-level I/O id.
    pub io: u64,
    /// Disk that served it.
    pub disk: DiskId,
    /// When the controller submitted it.
    pub submit: SimTime,
    /// When its media transfer began.
    pub start: SimTime,
    /// When it completed.
    pub end: SimTime,
    /// Typed slices in temporal order; they sum to `end − submit`.
    pub slices: Vec<PhaseSlice>,
    /// Id of the [`BgSpan`] whose transfer delayed this leg, if any.
    pub delayed_by: Option<u64>,
}

impl SpanLeg {
    /// Sum of the slice durations (equals `end − submit`).
    pub fn total(&self) -> Duration {
        self.slices.iter().map(|s| s.duration).sum()
    }
}

/// A completed user request: its end-to-end interval plus the legs the
/// controller fanned it out into.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestSpan {
    /// Trace-order user request id.
    pub id: u64,
    /// Read or write, as recorded in the trace.
    pub kind: ReqKind,
    /// Admission instant.
    pub begin: SimTime,
    /// Completion instant (of the last leg).
    pub end: SimTime,
    /// Sub-I/O legs, in submission order.
    pub legs: Vec<SpanLeg>,
}

impl RequestSpan {
    /// End-to-end response time.
    pub fn duration(&self) -> Duration {
        self.end.since(self.begin)
    }

    /// Checks the structural invariants the span machinery promises:
    /// `end ≥ begin`, every leg interval nested within the span
    /// (`begin ≤ submit ≤ start ≤ end_leg ≤ end`), and each leg's
    /// slices summing exactly to its interval.
    pub fn validate(&self) -> Result<(), String> {
        if self.end < self.begin {
            return Err(format!(
                "span {}: end {} < begin {}",
                self.id, self.end, self.begin
            ));
        }
        for leg in &self.legs {
            if leg.submit < self.begin
                || leg.end > self.end
                || leg.start < leg.submit
                || leg.end < leg.start
            {
                return Err(format!(
                    "span {}: leg {} [{}, {}, {}] not nested in [{}, {}]",
                    self.id, leg.io, leg.submit, leg.start, leg.end, self.begin, self.end
                ));
            }
            let sum = leg.total();
            let interval = leg.end.since(leg.submit);
            if sum != interval {
                return Err(format!(
                    "span {}: leg {} slices sum to {sum} but cover {interval}",
                    self.id, leg.io
                ));
            }
        }
        Ok(())
    }
}

/// What kind of background activity a [`BgSpan`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BgSpanKind {
    /// A destage cycle (log contents moved to home locations).
    Destage,
    /// A degraded-mode rebuild onto a hot spare.
    Rebuild,
    /// A compaction pass (live records relocated out of mostly-dead
    /// log segments, folded into destage idle-slots).
    Compaction,
    /// An integrity-scrub chunk (a latent-sector-error sweep reading
    /// extents sequentially during idle slots).
    Scrub,
}

/// A background activity span: a destage cycle or a rebuild, with links
/// to the foreground requests it delayed (the parent/child causality
/// edge of the span tree).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BgSpan {
    /// Collector-assigned span id (referenced by [`SpanLeg::delayed_by`]).
    pub id: u64,
    /// Destage or rebuild.
    pub kind: BgSpanKind,
    /// When the activity started.
    pub begin: SimTime,
    /// When it finished (`None` if still open at end of run).
    pub end: Option<SimTime>,
    /// User request ids whose legs were delayed behind this activity's
    /// transfers.
    pub delayed: Vec<u64>,
}

/// Accumulates spans during a run: open request spans keyed by user id,
/// sub-I/O tags keyed by disk-level I/O id, and open background spans
/// keyed per disk so interference can be linked to its cause.
///
/// The collector is only ever touched when span recording is on; the
/// simulation itself never reads it, so it cannot perturb outcomes.
#[derive(Debug, Default)]
pub struct SpanCollector {
    open: HashMap<u64, RequestSpan>,
    io_tags: HashMap<u64, (u64, LegFlavor)>,
    finished: Vec<RequestSpan>,
    bg_open: HashMap<u64, BgSpan>,
    bg_finished: Vec<BgSpan>,
    /// disk → id of the background span currently active on it.
    bg_by_disk: HashMap<DiskId, u64>,
    next_bg_id: u64,
}

impl SpanCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span for user request `id` admitted at `at`.
    pub fn open_request(&mut self, id: u64, kind: ReqKind, at: SimTime) {
        self.open.insert(
            id,
            RequestSpan {
                id,
                kind,
                begin: at,
                end: at,
                legs: Vec::new(),
            },
        );
    }

    /// Declares that disk-level I/O `io` belongs to user request `user`
    /// and what its transfer is for. Controllers call this right after
    /// submitting each foreground sub-I/O.
    pub fn tag_io(&mut self, io: u64, user: u64, flavor: LegFlavor) {
        self.io_tags.insert(io, (user, flavor));
    }

    /// Re-flavors an already tagged I/O (degraded redirects re-submit
    /// under the same id). No-op if the I/O was never tagged.
    pub fn retag_io(&mut self, io: u64, flavor: LegFlavor) {
        if let Some((_, f)) = self.io_tags.get_mut(&io) {
            *f = flavor;
        }
    }

    /// Drops the tag of an aborted I/O (e.g. lost to a disk failure).
    pub fn untag_io(&mut self, io: u64) {
        self.io_tags.remove(&io);
    }

    /// Records a completed sub-I/O leg from the disk's breakdown. No-op
    /// for I/Os that were never tagged (background work).
    pub fn record_leg(&mut self, io: u64, disk: DiskId, b: &ServiceBreakdown) {
        let Some((user, flavor)) = self.io_tags.remove(&io) else {
            return;
        };
        let Some(span) = self.open.get_mut(&user) else {
            return;
        };
        let mut slices = Vec::with_capacity(4);
        let mut push = |phase: Phase, d: Duration| {
            if !d.is_zero() {
                slices.push(PhaseSlice { phase, duration: d });
            }
        };
        // Interference is typed by its cause: waiting behind a
        // compaction transfer lands in `Compaction`, behind a scrub
        // chunk in `ScrubInterference`, everything else (destage,
        // rebuild) in `DestageInterference` — so the background
        // activities stay separable in the attribution table while
        // their sum remains conserved.
        let bg_id = if b.bg_interference.is_zero() {
            None
        } else {
            self.bg_by_disk.get(&disk).copied()
        };
        let interference_phase = match bg_id.and_then(|i| self.bg_open.get(&i)) {
            Some(bg) if bg.kind == BgSpanKind::Compaction => Phase::Compaction,
            Some(bg) if bg.kind == BgSpanKind::Scrub => Phase::ScrubInterference,
            _ => Phase::DestageInterference,
        };
        // Temporal order: the spindle comes up first, then the media
        // drains background + earlier foreground work, then this
        // transfer positions and runs.
        push(Phase::SpinUpStall, b.spinup_stall);
        push(interference_phase, b.bg_interference);
        push(Phase::QueueWait, b.queue_wait());
        push(Phase::Seek, b.seek);
        push(Phase::Rotation, b.rotation);
        push(flavor.phase(), b.transfer);
        let delayed_by = bg_id;
        if let Some(bg) = bg_id.and_then(|i| self.bg_open.get_mut(&i)) {
            bg.delayed.push(user);
        }
        span.legs.push(SpanLeg {
            io,
            disk,
            submit: b.submit,
            start: b.start,
            end: b.end,
            slices,
            delayed_by,
        });
    }

    /// Closes the span of user request `id` at its completion instant
    /// and moves it to the finished list, returning a view of the
    /// finished span (e.g. for online per-phase telemetry).
    pub fn close_request(&mut self, id: u64, at: SimTime) -> Option<&RequestSpan> {
        if let Some(mut span) = self.open.remove(&id) {
            span.end = at;
            self.finished.push(span);
            self.finished.last()
        } else {
            None
        }
    }

    /// Opens a background span of `kind` covering `disks`, returning its
    /// id. Foreground legs that report interference on one of these
    /// disks while the span is open link to it.
    pub fn begin_bg(&mut self, kind: BgSpanKind, disks: &[DiskId], at: SimTime) -> u64 {
        let id = self.next_bg_id;
        self.next_bg_id += 1;
        self.bg_open.insert(
            id,
            BgSpan {
                id,
                kind,
                begin: at,
                end: None,
                delayed: Vec::new(),
            },
        );
        for &d in disks {
            self.bg_by_disk.insert(d, id);
        }
        id
    }

    /// Closes background span `bg` at `at`.
    pub fn end_bg(&mut self, bg: u64, at: SimTime) {
        if let Some(mut span) = self.bg_open.remove(&bg) {
            span.end = Some(at);
            self.bg_finished.push(span);
        }
        self.bg_by_disk.retain(|_, v| *v != bg);
    }

    /// Number of finished request spans so far.
    pub fn finished_requests(&self) -> usize {
        self.finished.len()
    }

    /// Consumes the collector, returning finished request spans (in
    /// completion order) and background spans (still-open background
    /// spans are closed with `end = None` left in place). Requests that
    /// never completed (e.g. lost to injected faults) are dropped.
    pub fn into_finished(mut self) -> (Vec<RequestSpan>, Vec<BgSpan>) {
        let mut bg = std::mem::take(&mut self.bg_finished);
        let mut open: Vec<BgSpan> = self.bg_open.into_values().collect();
        open.sort_by_key(|s| s.id);
        bg.extend(open);
        (self.finished, bg)
    }
}

/// Per-request critical-path attribution: how much of the span's
/// duration each phase explains, plus any unattributed remainder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathAttribution {
    /// Microseconds attributed to each phase (indexed by
    /// [`Phase::index`]).
    pub phase_us: [u64; NUM_PHASES],
    /// Microseconds of the span not covered by any leg.
    pub unattributed_us: u64,
    /// Span duration in microseconds.
    pub total_us: u64,
}

impl PathAttribution {
    /// Attributed microseconds summed over all phases.
    pub fn attributed_us(&self) -> u64 {
        self.phase_us.iter().sum()
    }
}

/// Folds one finished span into per-phase totals along its critical
/// path.
///
/// Walks backwards from the span's completion: at each point the leg
/// that was still running latest is charged (its slices, in temporal
/// order, clipped to the walked interval), then the walk jumps to that
/// leg's submission instant. Gaps no leg covers become
/// `unattributed_us`. For legs nested within the span the output
/// satisfies `attributed + unattributed == total` exactly.
pub fn critical_path(span: &RequestSpan) -> PathAttribution {
    let mut out = PathAttribution {
        total_us: span.duration().as_micros(),
        ..Default::default()
    };
    let mut cursor = span.end;
    while cursor > span.begin {
        // The leg that ends latest before (or spanning) the cursor.
        let best = span
            .legs
            .iter()
            .filter(|l| l.submit < cursor)
            .max_by_key(|l| (l.end.min(cursor), l.submit, l.io));
        let Some(leg) = best else {
            out.unattributed_us += cursor.since(span.begin).as_micros();
            break;
        };
        let clip_end = leg.end.min(cursor);
        // Gap between this leg's end and the cursor: nothing ran.
        out.unattributed_us += clip_end.until(cursor).as_micros();
        // Attribute the leg's slices over [submit, clip_end), forward in
        // time, clipping the tail if the cursor cut the leg short.
        let mut remaining = clip_end.since(leg.submit).as_micros();
        for slice in &leg.slices {
            if remaining == 0 {
                break;
            }
            let d = slice.duration.as_micros().min(remaining);
            out.phase_us[slice.phase.index()] += d;
            remaining -= d;
        }
        out.unattributed_us += remaining;
        cursor = leg.submit.max(span.begin);
    }
    out
}

/// Aggregated critical-path statistics over a set of request spans.
///
/// Keeps, per phase, the summed attributed time and a mergeable
/// quantile sketch of per-request phase totals (only requests where the
/// phase appears), plus a sketch of whole-span durations — all in
/// microseconds, at ≤ 1 % relative error ([`QuantileSketch`]).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Requests observed.
    pub requests: u64,
    /// Summed span durations (µs).
    pub total_us: u64,
    /// Summed unattributed remainders (µs).
    pub unattributed_us: u64,
    /// Summed per-phase attributed time (µs), by [`Phase::index`].
    pub phase_us: [u64; NUM_PHASES],
    /// Per-phase sketches of per-request phase totals (µs).
    pub phase_hist: Vec<QuantileSketch>,
    /// Sketch of whole-span durations (µs).
    pub span_hist: QuantileSketch,
}

impl Default for PhaseStats {
    fn default() -> Self {
        PhaseStats {
            requests: 0,
            total_us: 0,
            unattributed_us: 0,
            phase_us: [0; NUM_PHASES],
            phase_hist: vec![QuantileSketch::new(); NUM_PHASES],
            span_hist: QuantileSketch::new(),
        }
    }
}

impl PhaseStats {
    /// Folds one span's critical path into the aggregate.
    pub fn observe(&mut self, span: &RequestSpan) {
        let path = critical_path(span);
        self.requests += 1;
        self.total_us += path.total_us;
        self.unattributed_us += path.unattributed_us;
        for (i, &us) in path.phase_us.iter().enumerate() {
            self.phase_us[i] += us;
            if us > 0 {
                self.phase_hist[i].record(us as f64);
            }
        }
        self.span_hist.record(span.duration().as_micros() as f64);
    }

    /// Merges another aggregate into this one (fleet rollups across
    /// shards or schemes); all underlying sketches merge losslessly.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.requests += other.requests;
        self.total_us += other.total_us;
        self.unattributed_us += other.unattributed_us;
        for (i, &us) in other.phase_us.iter().enumerate() {
            self.phase_us[i] += us;
        }
        for (a, b) in self.phase_hist.iter_mut().zip(&other.phase_hist) {
            a.merge(b);
        }
        self.span_hist.merge(&other.span_hist);
    }

    /// Fraction of summed response time attributed to typed phases
    /// (1.0 when every microsecond is explained; 1.0 for zero
    /// requests).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_us == 0 {
            return 1.0;
        }
        1.0 - self.unattributed_us as f64 / self.total_us as f64
    }

    /// Share of summed response time spent in `phase`.
    pub fn share(&self, phase: Phase) -> f64 {
        if self.total_us == 0 {
            return 0.0;
        }
        self.phase_us[phase.index()] as f64 / self.total_us as f64
    }

    /// The phase with the largest attributed share, if any time was
    /// attributed at all.
    pub fn dominant(&self) -> Option<Phase> {
        let (i, &us) = self
            .phase_us
            .iter()
            .enumerate()
            .max_by_key(|&(_, &us)| us)?;
        (us > 0).then(|| Phase::ALL[i])
    }

    /// Serializable summary of this aggregate.
    pub fn summary(&self) -> AttributionSummary {
        let ms = |us: u64| us as f64 / 1e3;
        AttributionSummary {
            requests: self.requests,
            mean_response_ms: if self.requests == 0 {
                0.0
            } else {
                ms(self.total_us) / self.requests as f64
            },
            attributed_fraction: self.attributed_fraction(),
            p50_ms: self.span_hist.percentile(50.0).map(|us| us / 1e3),
            p95_ms: self.span_hist.percentile(95.0).map(|us| us / 1e3),
            p99_ms: self.span_hist.percentile(99.0).map(|us| us / 1e3),
            phases: Phase::ALL
                .iter()
                .map(|&p| {
                    let i = p.index();
                    PhaseShare {
                        phase: p.name(),
                        share: self.share(p),
                        mean_ms: if self.requests == 0 {
                            0.0
                        } else {
                            ms(self.phase_us[i]) / self.requests as f64
                        },
                        p95_ms: self.phase_hist[i].percentile(95.0).map(|us| us / 1e3),
                    }
                })
                .collect(),
        }
    }
}

/// Critical-path aggregates for one scheme, split by request kind.
#[derive(Debug, Clone, Default)]
pub struct SpanAnalysis {
    /// All requests.
    pub all: PhaseStats,
    /// Reads only.
    pub reads: PhaseStats,
    /// Writes only.
    pub writes: PhaseStats,
}

impl SpanAnalysis {
    /// Folds every span of a run into the aggregates.
    pub fn analyze(spans: &[RequestSpan]) -> SpanAnalysis {
        let mut a = SpanAnalysis::default();
        for s in spans {
            a.observe(s);
        }
        a
    }

    /// Folds one span into the aggregates.
    pub fn observe(&mut self, span: &RequestSpan) {
        self.all.observe(span);
        match span.kind {
            ReqKind::Read => self.reads.observe(span),
            ReqKind::Write => self.writes.observe(span),
        }
    }
}

/// One phase's row in an [`AttributionSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct PhaseShare {
    /// Phase name.
    pub phase: &'static str,
    /// Share of summed response time (0–1).
    pub share: f64,
    /// Mean attributed time per request (ms, over all requests).
    pub mean_ms: f64,
    /// p95 of per-request phase totals (ms), where the phase occurred.
    pub p95_ms: Option<f64>,
}

/// Serializable per-scheme (or per-kind) attribution summary.
#[derive(Debug, Clone, Serialize)]
pub struct AttributionSummary {
    /// Requests covered.
    pub requests: u64,
    /// Mean end-to-end response (ms).
    pub mean_response_ms: f64,
    /// Fraction of summed response time explained by typed phases.
    pub attributed_fraction: f64,
    /// Median span duration (ms).
    pub p50_ms: Option<f64>,
    /// 95th-percentile span duration (ms).
    pub p95_ms: Option<f64>,
    /// 99th-percentile span duration (ms).
    pub p99_ms: Option<f64>,
    /// Per-phase shares, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseShare>,
}

/// A finished run's span data, as returned by the traced driver entry
/// points.
#[derive(Debug, Default)]
pub struct SpanSet {
    /// Completed user request spans, in completion order.
    pub requests: Vec<RequestSpan>,
    /// Background (destage/rebuild) spans, in completion order followed
    /// by still-open spans.
    pub background: Vec<BgSpan>,
}

impl SpanSet {
    /// Validates every request span (see [`RequestSpan::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        for s in &self.requests {
            s.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn breakdown(
        id: u64,
        submit: u64,
        start: u64,
        end: u64,
        seek: u64,
        rotation: u64,
        stall: u64,
        interference: u64,
    ) -> ServiceBreakdown {
        let transfer = (end - start) - seek - rotation;
        ServiceBreakdown {
            id,
            background: false,
            submit: SimTime::from_micros(submit),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(end),
            seek: Duration::from_micros(seek),
            rotation: Duration::from_micros(rotation),
            transfer: Duration::from_micros(transfer),
            spinup_stall: Duration::from_micros(stall),
            bg_interference: Duration::from_micros(interference),
        }
    }

    #[test]
    fn single_leg_span_attributes_fully() {
        let mut c = SpanCollector::new();
        c.open_request(7, ReqKind::Write, SimTime::from_micros(100));
        c.tag_io(42, 7, LegFlavor::LogAppend);
        c.record_leg(42, 3, &breakdown(42, 100, 150, 300, 0, 0, 0, 0));
        c.close_request(7, SimTime::from_micros(300));
        let (spans, _) = c.into_finished();
        assert_eq!(spans.len(), 1);
        let span = &spans[0];
        span.validate().expect("invariants hold");
        let path = critical_path(span);
        assert_eq!(path.total_us, 200);
        assert_eq!(path.unattributed_us, 0);
        assert_eq!(path.phase_us[Phase::QueueWait.index()], 50);
        assert_eq!(path.phase_us[Phase::LogAppend.index()], 150);
    }

    #[test]
    fn parallel_legs_charge_the_last_to_finish() {
        let mut c = SpanCollector::new();
        c.open_request(1, ReqKind::Write, SimTime::ZERO);
        c.tag_io(10, 1, LegFlavor::Transfer);
        c.tag_io(11, 1, LegFlavor::MirrorCopy);
        // Primary finishes at 80, mirror at 200: the mirror is critical.
        c.record_leg(10, 0, &breakdown(10, 0, 0, 80, 10, 20, 0, 0));
        c.record_leg(11, 1, &breakdown(11, 0, 120, 200, 30, 40, 0, 120));
        c.close_request(1, SimTime::from_micros(200));
        let (spans, _) = c.into_finished();
        let path = critical_path(&spans[0]);
        assert_eq!(path.total_us, 200);
        assert_eq!(path.unattributed_us, 0);
        // Only the mirror leg is on the critical path.
        assert_eq!(path.phase_us[Phase::Transfer.index()], 0);
        assert_eq!(path.phase_us[Phase::MirrorCopy.index()], 10);
        assert_eq!(path.phase_us[Phase::DestageInterference.index()], 120);
        assert_eq!(path.phase_us[Phase::Seek.index()], 30);
        assert_eq!(path.phase_us[Phase::Rotation.index()], 40);
    }

    #[test]
    fn interference_links_to_open_bg_span() {
        let mut c = SpanCollector::new();
        let bg = c.begin_bg(BgSpanKind::Destage, &[5], SimTime::ZERO);
        c.open_request(2, ReqKind::Read, SimTime::from_micros(10));
        c.tag_io(20, 2, LegFlavor::Transfer);
        c.record_leg(20, 5, &breakdown(20, 10, 60, 100, 0, 0, 0, 50));
        c.close_request(2, SimTime::from_micros(100));
        c.end_bg(bg, SimTime::from_micros(500));
        let (spans, bgs) = c.into_finished();
        assert_eq!(spans[0].legs[0].delayed_by, Some(bg));
        let bg_span = bgs.iter().find(|s| s.id == bg).unwrap();
        assert_eq!(bg_span.delayed, vec![2]);
        assert_eq!(bg_span.end, Some(SimTime::from_micros(500)));
    }

    #[test]
    fn compaction_interference_is_typed_separately() {
        let mut c = SpanCollector::new();
        let bg = c.begin_bg(BgSpanKind::Compaction, &[2], SimTime::ZERO);
        c.open_request(4, ReqKind::Read, SimTime::from_micros(10));
        c.tag_io(40, 4, LegFlavor::Transfer);
        c.record_leg(40, 2, &breakdown(40, 10, 60, 100, 0, 0, 0, 50));
        c.close_request(4, SimTime::from_micros(100));
        c.end_bg(bg, SimTime::from_micros(200));
        let (spans, bgs) = c.into_finished();
        let path = critical_path(&spans[0]);
        assert_eq!(path.phase_us[Phase::Compaction.index()], 50);
        assert_eq!(path.phase_us[Phase::DestageInterference.index()], 0);
        assert_eq!(spans[0].legs[0].delayed_by, Some(bg));
        let bg_span = bgs.iter().find(|s| s.id == bg).unwrap();
        assert_eq!(bg_span.delayed, vec![4]);
    }

    #[test]
    fn gap_between_chained_legs_is_unattributed() {
        // Leg 2 starts after leg 1 ends with a 40 µs think-time gap.
        let mut c = SpanCollector::new();
        c.open_request(3, ReqKind::Write, SimTime::ZERO);
        c.tag_io(30, 3, LegFlavor::Transfer);
        c.tag_io(31, 3, LegFlavor::Transfer);
        c.record_leg(30, 0, &breakdown(30, 0, 0, 100, 0, 0, 0, 0));
        c.record_leg(31, 1, &breakdown(31, 140, 140, 220, 0, 0, 0, 0));
        c.close_request(3, SimTime::from_micros(220));
        let (spans, _) = c.into_finished();
        let path = critical_path(&spans[0]);
        assert_eq!(path.unattributed_us, 40);
        assert_eq!(path.attributed_us(), 180);
        assert_eq!(path.attributed_us() + path.unattributed_us, path.total_us);
    }

    #[test]
    fn analysis_aggregates_shares() {
        let mut c = SpanCollector::new();
        for id in 0..10u64 {
            c.open_request(
                id,
                if id % 2 == 0 {
                    ReqKind::Read
                } else {
                    ReqKind::Write
                },
                SimTime::ZERO,
            );
            c.tag_io(100 + id, id, LegFlavor::Transfer);
            c.record_leg(
                100 + id,
                0,
                &breakdown(100 + id, 0, 500, 1000, 100, 200, 0, 0),
            );
            c.close_request(id, SimTime::from_micros(1000));
        }
        let (spans, _) = c.into_finished();
        let a = SpanAnalysis::analyze(&spans);
        assert_eq!(a.all.requests, 10);
        assert_eq!(a.reads.requests, 5);
        assert_eq!(a.writes.requests, 5);
        assert!((a.all.attributed_fraction() - 1.0).abs() < 1e-12);
        assert!((a.all.share(Phase::QueueWait) - 0.5).abs() < 1e-12);
        assert_eq!(a.all.dominant(), Some(Phase::QueueWait));
        let s = a.all.summary();
        assert_eq!(s.requests, 10);
        assert!((s.mean_response_ms - 1.0).abs() < 1e-9);
        assert!(s.p95_ms.is_some());
    }

    #[test]
    fn lost_requests_are_dropped() {
        let mut c = SpanCollector::new();
        c.open_request(9, ReqKind::Write, SimTime::ZERO);
        c.tag_io(90, 9, LegFlavor::Transfer);
        c.untag_io(90);
        let (spans, _) = c.into_finished();
        assert!(spans.is_empty(), "never-completed span must not leak");
    }
}
