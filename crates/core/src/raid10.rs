//! Plain RAID10 baseline: all disks active, synchronous mirroring.
//!
//! Writes go to both disks of the owning pair in place; reads are
//! balanced across the pair by queue depth. No logging, no destaging, no
//! power management — the energy baseline every figure normalises to.
//!
//! Degraded mode (§III-C): a failed disk's partner — already active in
//! RAID10 — silently absorbs its reads while the replacement rebuilds in
//! the background; writes keep landing on both slots so the replacement
//! accumulates fresh data from the moment it is installed.

use crate::ctx::SimCtx;
use crate::faults::surviving_partner;
use crate::policy::{Policy, PolicyStats};
use crate::recovery::recovery_plan;
use crate::slot::IoSlot;
use rolo_disk::{DiskId, DiskRequest, IoKind, IoOutcome, Priority};
use rolo_obs::{LegFlavor, SimEvent};
use rolo_sim::IoMap;
use rolo_trace::{ReqKind, TraceRecord};

/// The RAID10 baseline controller.
#[derive(Debug, Default)]
pub struct Raid10Policy {
    /// sub-request id → (user id, user slab slot).
    io_map: IoMap<(u64, IoSlot)>,
}

impl Raid10Policy {
    /// Creates the baseline controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chooses the less-loaded disk of a pair for a read, never a
    /// degraded slot (its replacement does not hold the data yet).
    fn read_target(ctx: &SimCtx, pair: usize) -> DiskId {
        let geo = ctx.geometry();
        let p = geo.primary_disk(pair);
        let m = geo.mirror_disk(pair);
        if ctx.is_degraded(p) {
            return m;
        }
        if ctx.is_degraded(m) {
            return p;
        }
        let load = |d: DiskId| {
            let disk = ctx.disk(d);
            disk.foreground_pending() + usize::from(disk.is_busy())
        };
        if load(m) < load(p) {
            m
        } else {
            p
        }
    }
}

impl Policy for Raid10Policy {
    fn name(&self) -> &'static str {
        "RAID10"
    }

    fn initial_standby(&self, _disk: DiskId) -> bool {
        false
    }

    fn attach(&mut self, _ctx: &mut SimCtx) {}

    fn on_user_request(&mut self, ctx: &mut SimCtx, user_id: u64, rec: &TraceRecord) {
        let exts = ctx
            .geometry()
            .split(rec.offset, rec.bytes)
            .expect("driver keeps requests in range");
        let subs = match rec.kind {
            ReqKind::Write => exts.len() * 2,
            ReqKind::Read => exts.len(),
        };
        let slot = ctx.register_user(user_id, rec.kind, ctx.now, subs as u32);
        for ext in exts {
            match rec.kind {
                ReqKind::Write => {
                    let p = ctx.geometry().primary_disk(ext.pair);
                    let m = ctx.geometry().mirror_disk(ext.pair);
                    for d in [p, m] {
                        let id = ctx.submit(
                            d,
                            IoKind::Write,
                            ext.offset,
                            ext.bytes,
                            Priority::Foreground,
                        );
                        self.io_map.insert(id, (user_id, slot));
                        let flavor = if d == p {
                            LegFlavor::Transfer
                        } else {
                            LegFlavor::MirrorCopy
                        };
                        ctx.tag_io(id, user_id, flavor);
                    }
                }
                ReqKind::Read => {
                    let d = Self::read_target(ctx, ext.pair);
                    let id =
                        ctx.submit(d, IoKind::Read, ext.offset, ext.bytes, Priority::Foreground);
                    self.io_map.insert(id, (user_id, slot));
                    ctx.tag_io(id, user_id, LegFlavor::Transfer);
                }
            }
        }
    }

    fn on_io_complete(&mut self, ctx: &mut SimCtx, _disk: DiskId, req: DiskRequest) {
        let (_, slot) = self
            .io_map
            .remove(&req.id)
            .expect("RAID10 issues only user sub-requests");
        ctx.user_sub_done(slot);
    }

    fn on_io_error(
        &mut self,
        ctx: &mut SimCtx,
        disk: DiskId,
        req: DiskRequest,
        outcome: IoOutcome,
    ) {
        // A failed read — a latent sector error, or any read lost to a
        // dying/degraded slot — is re-served by the mirror copy; every
        // other error (writes, exhausted retries) just closes accounting
        // — the rebuild restores the replacement's copy.
        if req.kind == IoKind::Read && (outcome == IoOutcome::MediaError || ctx.is_degraded(disk)) {
            if let Some(p) =
                surviving_partner(ctx.geometry(), disk).filter(|&p| !ctx.is_degraded(p))
            {
                let (user, slot) = self
                    .io_map
                    .remove(&req.id)
                    .expect("RAID10 issues only user sub-requests");
                ctx.note_redirect();
                ctx.emit(|| SimEvent::ReadRedirected { from: disk, to: p });
                let id = ctx.submit(p, IoKind::Read, req.offset, req.bytes, Priority::Foreground);
                self.io_map.insert(id, (user, slot));
                ctx.tag_io(id, user, LegFlavor::DegradedRedirect);
                return;
            }
        }
        self.on_io_complete(ctx, disk, req);
    }

    fn on_disk_failure(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        let plan = recovery_plan(crate::config::Scheme::Raid10, ctx.geometry(), disk, 0, &[]);
        let bytes = ctx.geometry().data_region();
        ctx.begin_rebuild(&plan, bytes);
    }

    fn on_spin_up(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}
    fn on_spin_down(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}
    fn on_timer(&mut self, _ctx: &mut SimCtx, _token: u64) {}

    fn begin_drain(&mut self, _ctx: &mut SimCtx) {}

    fn is_drained(&self, ctx: &SimCtx) -> bool {
        ctx.outstanding_users() == 0
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }

    fn check_consistency(&self, ctx: &SimCtx) -> Result<(), String> {
        if !self.io_map.is_empty() {
            return Err(format!("{} orphaned sub-requests", self.io_map.len()));
        }
        if ctx.outstanding_users() != 0 {
            return Err(format!(
                "{} user requests unfinished",
                ctx.outstanding_users()
            ));
        }
        Ok(())
    }
}
