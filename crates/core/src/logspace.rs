//! Logger-region space management (§III-E "Free space management").
//!
//! Each disk participating in logging dedicates a byte range (its *logger
//! region*) to sequential log appends. The paper manages this region with
//! used/unused region lists; this module implements the same structure:
//!
//! * allocation is **append-style**: a request is satisfied from the
//!   lowest-addressed free region(s), splitting across free regions when
//!   necessary (each returned piece is written sequentially);
//! * every allocated segment is tagged with the mirrored pair whose data
//!   it holds and the logging period in which it was written;
//! * **reclamation is by predicate** — when a destage process for a pair
//!   completes, all of that pair's segments become stale and are freed in
//!   one sweep (the paper's "proactive reclamation");
//! * adjacent free regions are coalesced so the unused list stays short
//!   (the paper's background compaction of the unused region list).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A live segment of logged data within a logger region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogSegment {
    /// Mirrored pair whose second copies this segment holds.
    pub pair: usize,
    /// Logging period during which the segment was written.
    pub period: u64,
    /// Absolute byte offset on the disk.
    pub offset: u64,
    /// Segment length in bytes.
    pub bytes: u64,
}

/// Manager of one disk's logger region.
///
/// # Example
///
/// ```
/// use rolo_core::logspace::LoggerSpace;
///
/// let mut ls = LoggerSpace::new(1 << 30, 8 << 20); // region at 1 GiB, 8 MiB long
/// let pieces = ls.alloc(64 * 1024, 0, 1).expect("space available");
/// assert_eq!(pieces.iter().map(|p| p.bytes).sum::<u64>(), 64 * 1024);
/// assert_eq!(ls.used_bytes(), 64 * 1024);
/// let freed = ls.reclaim(|seg| seg.pair == 0);
/// assert_eq!(freed, 64 * 1024);
/// assert_eq!(ls.used_bytes(), 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoggerSpace {
    base: u64,
    size: u64,
    /// Free regions: offset → length. Disjoint, non-adjacent (coalesced).
    free: BTreeMap<u64, u64>,
    /// Live segments, unordered.
    used: Vec<LogSegment>,
    used_bytes: u64,
}

impl LoggerSpace {
    /// Creates a fully free logger region `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(base: u64, size: u64) -> Self {
        assert!(size > 0, "logger region must be non-empty");
        let mut free = BTreeMap::new();
        free.insert(base, size);
        LoggerSpace {
            base,
            size,
            free,
            used: Vec::new(),
            used_bytes: 0,
        }
    }

    /// Start of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total region size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes currently holding live segments.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes available for allocation.
    pub fn free_bytes(&self) -> u64 {
        self.size - self.used_bytes
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.used_bytes as f64 / self.size as f64
    }

    /// Live segments (unordered).
    pub fn segments(&self) -> &[LogSegment] {
        &self.used
    }

    /// Allocates `bytes` for `pair` during `period`, lowest-address-first,
    /// splitting across free regions if needed. Returns `None` (and
    /// allocates nothing) if insufficient space.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc(&mut self, bytes: u64, pair: usize, period: u64) -> Option<Vec<LogSegment>> {
        assert!(bytes > 0, "zero-byte log allocation");
        if bytes > self.free_bytes() {
            return None;
        }
        let mut remaining = bytes;
        let mut out = Vec::new();
        while remaining > 0 {
            let (&off, &len) = self
                .free
                .iter()
                .next()
                .expect("free accounting out of sync");
            let take = len.min(remaining);
            self.free.remove(&off);
            if take < len {
                self.free.insert(off + take, len - take);
            }
            let seg = LogSegment {
                pair,
                period,
                offset: off,
                bytes: take,
            };
            self.used.push(seg);
            out.push(seg);
            self.used_bytes += take;
            remaining -= take;
        }
        Some(out)
    }

    /// Frees every live segment matching `stale`, coalescing the freed
    /// space. Returns the number of bytes reclaimed.
    ///
    /// The unused region list is minimal (one fragment per maximal free
    /// run) on return — regardless of the order in which the stale
    /// segments were visited — because `insert_free` merges both
    /// neighbours on every insertion. Debug builds re-verify that with
    /// a [`LoggerSpace::coalesce_all`] pass; the full-merge rebuild
    /// stays off the release path, where reclaim runs on every destage
    /// completion against every logger space.
    pub fn reclaim<F: FnMut(&LogSegment) -> bool>(&mut self, mut stale: F) -> u64 {
        let mut freed = 0;
        let mut i = 0;
        while i < self.used.len() {
            if stale(&self.used[i]) {
                let seg = self.used.swap_remove(i);
                freed += seg.bytes;
                self.insert_free(seg.offset, seg.bytes);
            } else {
                i += 1;
            }
        }
        self.used_bytes -= freed;
        if freed > 0 {
            debug_assert_eq!(
                self.coalesce_all(),
                0,
                "insert_free left adjacent fragments"
            );
        }
        freed
    }

    /// Full-merge pass over the unused region list (§III-E, the paper's
    /// background compaction of the region lists): rebuilds the list so
    /// every maximal free run is exactly one fragment. Returns how many
    /// adjacent fragments were folded — zero whenever the incremental
    /// coalescing in `insert_free` already left the list minimal, which
    /// the property tests assert.
    pub fn coalesce_all(&mut self) -> usize {
        let mut merged = 0;
        let mut rebuilt: BTreeMap<u64, u64> = BTreeMap::new();
        let mut run: Option<(u64, u64)> = None;
        for (&off, &len) in &self.free {
            match run {
                Some((start, rlen)) if start + rlen == off => {
                    run = Some((start, rlen + len));
                    merged += 1;
                }
                Some((start, rlen)) => {
                    rebuilt.insert(start, rlen);
                    run = Some((off, len));
                }
                None => run = Some((off, len)),
            }
        }
        if let Some((start, rlen)) = run {
            rebuilt.insert(start, rlen);
        }
        self.free = rebuilt;
        merged
    }

    /// Inserts a free region and coalesces with neighbours.
    fn insert_free(&mut self, offset: u64, bytes: u64) {
        let mut start = offset;
        let mut len = bytes;
        // Merge with predecessor if adjacent.
        if let Some((&poff, &plen)) = self.free.range(..offset).next_back() {
            debug_assert!(poff + plen <= offset, "free-list overlap");
            if poff + plen == offset {
                self.free.remove(&poff);
                start = poff;
                len += plen;
            }
        }
        // Merge with successor if adjacent.
        if let Some((&soff, &slen)) = self.free.range(start + len..).next() {
            if start + len == soff {
                self.free.remove(&soff);
                len += slen;
            }
        }
        self.free.insert(start, len);
    }

    /// Number of fragments in the free list (1 when fully coalesced and
    /// nothing is allocated in the middle).
    pub fn free_fragments(&self) -> usize {
        self.free.len()
    }

    /// Debug invariant check: free regions are disjoint, within bounds,
    /// non-adjacent, and byte accounting balances.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end: Option<u64> = None;
        let mut free_total = 0;
        for (&off, &len) in &self.free {
            if len == 0 {
                return Err(format!("zero-length free region at {off}"));
            }
            if off < self.base || off + len > self.base + self.size {
                return Err(format!("free region [{off}, {}) out of bounds", off + len));
            }
            if let Some(pe) = prev_end {
                if off < pe {
                    return Err(format!("overlapping free regions at {off}"));
                }
                if off == pe {
                    return Err(format!("uncoalesced adjacent free regions at {off}"));
                }
            }
            prev_end = Some(off + len);
            free_total += len;
        }
        let used_total: u64 = self.used.iter().map(|s| s.bytes).sum();
        if used_total != self.used_bytes {
            return Err("used byte accounting out of sync".into());
        }
        if free_total + used_total != self.size {
            return Err(format!(
                "space leak: free {free_total} + used {used_total} != size {}",
                self.size
            ));
        }
        // Used segments must not overlap free regions or each other.
        let mut spans: Vec<(u64, u64)> = self
            .used
            .iter()
            .map(|s| (s.offset, s.bytes))
            .chain(self.free.iter().map(|(&o, &l)| (o, l)))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                return Err(format!("overlapping spans at {}", w[1].0));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_region_fully_free() {
        let ls = LoggerSpace::new(100, 1000);
        assert_eq!(ls.free_bytes(), 1000);
        assert_eq!(ls.used_bytes(), 0);
        assert_eq!(ls.occupancy(), 0.0);
        ls.check_invariants().unwrap();
    }

    #[test]
    fn alloc_is_sequential_from_base() {
        let mut ls = LoggerSpace::new(100, 1000);
        let a = ls.alloc(300, 0, 0).unwrap();
        assert_eq!(
            a,
            vec![LogSegment {
                pair: 0,
                period: 0,
                offset: 100,
                bytes: 300
            }]
        );
        let b = ls.alloc(200, 1, 0).unwrap();
        assert_eq!(b[0].offset, 400);
        ls.check_invariants().unwrap();
    }

    #[test]
    fn alloc_fails_without_mutation_when_full() {
        let mut ls = LoggerSpace::new(0, 512);
        ls.alloc(512, 0, 0).unwrap();
        assert!(ls.alloc(1, 0, 0).is_none());
        assert_eq!(ls.free_bytes(), 0);
        ls.check_invariants().unwrap();
    }

    #[test]
    fn alloc_splits_across_fragments() {
        let mut ls = LoggerSpace::new(0, 1000);
        ls.alloc(400, 0, 0).unwrap(); // [0,400) pair0
        ls.alloc(200, 1, 0).unwrap(); // [400,600) pair1
        ls.alloc(400, 0, 0).unwrap(); // [600,1000) pair0
                                      // Free pair 0 → fragments [0,400) and [600,1000).
        assert_eq!(ls.reclaim(|s| s.pair == 0), 800);
        assert_eq!(ls.free_fragments(), 2);
        // 600-byte allocation must span both fragments.
        let segs = ls.alloc(600, 2, 1).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].offset, 0);
        assert_eq!(segs[0].bytes, 400);
        assert_eq!(segs[1].offset, 600);
        assert_eq!(segs[1].bytes, 200);
        ls.check_invariants().unwrap();
    }

    #[test]
    fn reclaim_by_pair_and_period() {
        let mut ls = LoggerSpace::new(0, 1000);
        ls.alloc(100, 0, 0).unwrap();
        ls.alloc(100, 1, 0).unwrap();
        ls.alloc(100, 0, 1).unwrap();
        let freed = ls.reclaim(|s| s.pair == 0 && s.period == 0);
        assert_eq!(freed, 100);
        assert_eq!(ls.used_bytes(), 200);
        ls.check_invariants().unwrap();
    }

    #[test]
    fn coalescing_restores_single_region() {
        let mut ls = LoggerSpace::new(0, 1000);
        for i in 0..10 {
            ls.alloc(100, i, 0).unwrap();
        }
        assert_eq!(ls.free_bytes(), 0);
        // Free odd pairs, then even: after both sweeps one region remains.
        ls.reclaim(|s| s.pair % 2 == 1);
        ls.check_invariants().unwrap();
        ls.reclaim(|_| true);
        assert_eq!(ls.free_fragments(), 1);
        assert_eq!(ls.free_bytes(), 1000);
        ls.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "zero-byte log allocation")]
    fn zero_alloc_panics() {
        LoggerSpace::new(0, 100).alloc(0, 0, 0);
    }

    /// Minimal fragment count for the current layout: one fragment per
    /// maximal gap between live segments (reference model for the
    /// minimality regression below).
    fn minimal_fragments(ls: &LoggerSpace) -> usize {
        let mut segs: Vec<(u64, u64)> = ls.segments().iter().map(|s| (s.offset, s.bytes)).collect();
        segs.sort_unstable();
        let mut frags = 0;
        let mut pos = ls.base();
        for (off, len) in segs {
            if off > pos {
                frags += 1;
            }
            pos = off + len;
        }
        if pos < ls.base() + ls.size() {
            frags += 1;
        }
        frags
    }

    #[test]
    fn reclaim_leaves_minimal_free_list() {
        let mut ls = LoggerSpace::new(0, 1200);
        for i in 0..12 {
            ls.alloc(100, i % 3, 0).unwrap();
        }
        // Freeing pair 0 releases every third 100-byte slot: four
        // disjoint gaps, none mergeable.
        ls.reclaim(|s| s.pair == 0);
        assert_eq!(ls.free_fragments(), minimal_fragments(&ls));
        // Freeing the rest must fold everything back to one run even
        // though the stale segments are visited in swap_remove order.
        ls.reclaim(|_| true);
        assert_eq!(ls.free_fragments(), 1);
        assert_eq!(ls.coalesce_all(), 0, "reclaim already fully merged");
        ls.check_invariants().unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_free_fragments_minimal_after_interleavings(ops in proptest::collection::vec((0u8..3, 1u64..2048, 0usize..4, 0u64..4), 1..200)) {
            let mut ls = LoggerSpace::new(4096, 64 * 1024);
            for (op, bytes, pair, period) in ops {
                match op {
                    0 | 1 => {
                        let _ = ls.alloc(bytes, pair, period);
                    }
                    _ => {
                        ls.reclaim(|s| s.pair == pair && s.period <= period);
                    }
                }
                prop_assert_eq!(ls.free_fragments(), minimal_fragments(&ls));
                prop_assert_eq!(ls.coalesce_all(), 0, "incremental coalescing regressed");
            }
        }

        #[test]
        fn prop_invariants_under_random_ops(ops in proptest::collection::vec((0u8..3, 1u64..2048, 0usize..4, 0u64..4), 1..200)) {
            let mut ls = LoggerSpace::new(4096, 64 * 1024);
            for (op, bytes, pair, period) in ops {
                match op {
                    0 | 1 => {
                        let _ = ls.alloc(bytes, pair, period);
                    }
                    _ => {
                        ls.reclaim(|s| s.pair == pair && s.period <= period);
                    }
                }
                prop_assert!(ls.check_invariants().is_ok(), "{:?}", ls.check_invariants());
                prop_assert!(ls.used_bytes() + ls.free_bytes() == ls.size());
            }
        }

        #[test]
        fn prop_alloc_reclaim_round_trip(sizes in proptest::collection::vec(1u64..4096, 1..50)) {
            let total: u64 = sizes.iter().sum();
            let mut ls = LoggerSpace::new(0, total);
            for (i, s) in sizes.iter().enumerate() {
                let segs = ls.alloc(*s, i, 0).unwrap();
                let got: u64 = segs.iter().map(|x| x.bytes).sum();
                prop_assert_eq!(got, *s);
            }
            prop_assert_eq!(ls.free_bytes(), 0);
            prop_assert_eq!(ls.reclaim(|_| true), total);
            prop_assert_eq!(ls.free_fragments(), 1);
        }
    }
}
