//! The controller-policy interface and the statistics every policy
//! reports.

use crate::ctx::SimCtx;
use rolo_disk::{DiskId, DiskRequest, IoOutcome};
use rolo_trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// Scheme-specific counters reported alongside the common metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Logger rotations (RoLo-P/R) or destage-cycle logger-pair advances
    /// (RoLo-E).
    pub rotations: u64,
    /// Completed centralized destage cycles (GRAID / RoLo-E) or completed
    /// per-pair destage processes (RoLo-P/R).
    pub destage_cycles: u64,
    /// Bytes written to mirrors by destaging.
    pub destaged_bytes: u64,
    /// Bytes appended to logging space.
    pub log_appended_bytes: u64,
    /// RoLo-E read-cache hits.
    pub cache_hits: u64,
    /// RoLo-E read-cache misses.
    pub cache_misses: u64,
    /// Read misses that found the target disk spun down.
    pub read_miss_spinups: u64,
    /// Times logging was deactivated for lack of free space (§III-E).
    pub deactivations: u64,
    /// Writes that bypassed the logger (deactivated/full fallback).
    pub direct_writes: u64,
    /// Log segments sealed across all journals (DESIGN.md §10).
    pub segments_sealed: u64,
    /// Fully-dead log segments folded into archive frames.
    pub segments_archived: u64,
    /// Archive frames retired after their TTL.
    pub frames_retired: u64,
    /// Live bytes relocated by the background compactor.
    pub compacted_bytes: u64,
    /// Recovery-by-replay passes run after logger failures.
    pub log_replays: u64,
    /// Torn (uncommitted or checksum-failed) records found by replay.
    pub torn_records: u64,
    /// Replays whose reconstructed dirty maps diverged from the
    /// controller's in-memory state (must stay zero).
    pub replay_divergence: u64,
}

impl PolicyStats {
    /// RoLo-E read hit rate over all cache lookups (Table V).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Publishes the controller counters into `registry` under
    /// `policy.*` names. Called by the driver at end of run so every
    /// scheme's counters land in the report's metrics export.
    pub fn publish(&self, registry: &mut rolo_obs::MetricsRegistry) {
        let pairs: [(&str, u64); 16] = [
            ("policy.rotations", self.rotations),
            ("policy.destage_cycles", self.destage_cycles),
            ("policy.destaged_bytes", self.destaged_bytes),
            ("policy.log_appended_bytes", self.log_appended_bytes),
            ("policy.cache_hits", self.cache_hits),
            ("policy.cache_misses", self.cache_misses),
            ("policy.read_miss_spinups", self.read_miss_spinups),
            ("policy.deactivations", self.deactivations),
            ("policy.direct_writes", self.direct_writes),
            ("policy.segments_sealed", self.segments_sealed),
            ("policy.segments_archived", self.segments_archived),
            ("policy.frames_retired", self.frames_retired),
            ("policy.compacted_bytes", self.compacted_bytes),
            ("policy.log_replays", self.log_replays),
            ("policy.torn_records", self.torn_records),
            ("policy.replay_divergence", self.replay_divergence),
        ];
        for (name, value) in pairs {
            let id = registry.counter(name);
            registry.inc(id, value);
        }
    }
}

/// A storage-array controller driving the simulated disks.
///
/// The driver invokes these callbacks in event order; implementations
/// submit disk I/O and power transitions through the [`SimCtx`].
pub trait Policy {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Which disks begin the run spun down.
    fn initial_standby(&self, disk: DiskId) -> bool;

    /// Called once before the first event.
    fn attach(&mut self, ctx: &mut SimCtx);

    /// A user request arrives. `user_id` is pre-registered by the policy
    /// via [`SimCtx::register_user`] inside this call.
    ///
    /// When span tracing is enabled ([`SimCtx::enable_spans`]), policies
    /// additionally tag every *foreground* sub-I/O they submit on behalf
    /// of the request with [`SimCtx::tag_io`], naming the phase the leg
    /// contributes to (`Transfer` for the primary in-place copy,
    /// `MirrorCopy` for the second copy, `LogAppend` for log-region
    /// appends, `DegradedRedirect` for reads re-served by a surviving
    /// partner). `tag_io` is a no-op when spans are disabled, so the
    /// calls cost nothing on the fast path; background I/O (destage,
    /// rebuild, cache fill) stays untagged and is attributed to requests
    /// indirectly, through the interference windows the disks record.
    fn on_user_request(&mut self, ctx: &mut SimCtx, user_id: u64, rec: &TraceRecord);

    /// A sub-request completed on `disk`.
    fn on_io_complete(&mut self, ctx: &mut SimCtx, disk: DiskId, req: DiskRequest);

    /// A sub-request on `disk` finished abnormally: a latent sector
    /// error, a timed-out request whose retry budget ran out, or an I/O
    /// aborted by the disk's death.
    ///
    /// The default forwards to [`Policy::on_io_complete`], so request
    /// accounting always closes and nothing is silently dropped; policies
    /// with a degraded mode override this to redirect failed user reads
    /// to a surviving copy first.
    fn on_io_error(
        &mut self,
        ctx: &mut SimCtx,
        disk: DiskId,
        req: DiskRequest,
        outcome: IoOutcome,
    ) {
        let _ = outcome;
        self.on_io_complete(ctx, disk, req);
    }

    /// The disk in slot `disk` died and a blank hot spare was installed
    /// in its place (see [`SimCtx::fail_disk`]). Policies start their
    /// degraded mode here: compute the recovery plan, kick the rebuild,
    /// and drop any internal state that lived on the dead disk. The
    /// default does nothing — adequate only for schemes without
    /// scheme-level failure handling.
    fn on_disk_failure(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        let _ = (ctx, disk);
    }

    /// The rebuild of slot `disk` completed: the replacement now holds a
    /// full copy and normal routing may resume. Default: nothing.
    fn on_rebuild_complete(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        let _ = (ctx, disk);
    }

    /// `disk` finished spinning up.
    fn on_spin_up(&mut self, ctx: &mut SimCtx, disk: DiskId);

    /// `disk` finished spinning down.
    fn on_spin_down(&mut self, ctx: &mut SimCtx, disk: DiskId);

    /// A policy timer set via [`SimCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut SimCtx, token: u64);

    /// The trace is exhausted: push all remaining state to stable storage
    /// (spin up what is needed, destage everything). Idempotent — the
    /// driver may call it again if progress stalls.
    fn begin_drain(&mut self, ctx: &mut SimCtx);

    /// True once all mirrors are consistent and all logging space
    /// reclaimed.
    fn is_drained(&self, ctx: &SimCtx) -> bool;

    /// Scheme-specific statistics.
    fn stats(&self) -> PolicyStats;

    /// End-of-run internal-consistency audit; returns a description of
    /// the first violated invariant, if any.
    fn check_consistency(&self, ctx: &SimCtx) -> Result<(), String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        let s = PolicyStats::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        let s = PolicyStats {
            cache_hits: 3,
            cache_misses: 1,
            ..Default::default()
        };
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
