//! Shared simulation context handed to controller policies.
//!
//! [`SimCtx`] owns the disks, user-request bookkeeping and metric sinks.
//! Policies call [`SimCtx::submit`]/[`SimCtx::spin_down`]/… and the driver
//! drains the accumulated disk wakes and timers into its event queue after
//! every callback, so policies never touch the queue directly.

use crate::config::SimConfig;
use crate::faults::{surviving_partner, FaultMetrics, FaultPlan};
use crate::recovery::RecoveryPlan;
use crate::slot::{IoSlab, IoSlot};
use rolo_disk::{Disk, DiskId, DiskParams, DiskRequest, DiskWake, IoKind, IoOutcome, Priority};
use rolo_disk::{DiskEnergyReport, IntegrityMap, PowerState, SchedulerKind};
use rolo_metrics::{IntervalTracker, ResponseStats, Timeline};
use rolo_obs::{critical_path, BgSpanKind, LegFlavor, SpanCollector, SpanSet, NUM_PHASES};
use rolo_obs::{ExemplarRecorder, ExemplarSet};
use rolo_obs::{MetricId, MetricsRegistry, NullSink, SimEvent, TraceSink};
use rolo_obs::{
    Phase, RollupValue, SeriesId, SloAlert, SloMonitor, SloSignal, Telemetry, TelemetrySnapshot,
    WindowObservation,
};
use rolo_raid::ArrayGeometry;
use rolo_sim::{Duration, IoMap, SimRng, SimTime};
use rolo_trace::ReqKind;
use std::collections::HashMap;

/// Bytes per rebuild chunk (matches the offline engine in
/// [`crate::rebuild`]).
const REBUILD_CHUNK: u64 = 1 << 20;

/// Rebuild read/write chains kept in flight per degraded slot. Depth
/// beyond the disk's own queue buys nothing: rebuild I/O is background
/// priority and dispatches only in idle slots.
const REBUILD_WINDOW: usize = 4;

/// Byte alignment of injected latent extents and scrub chunks.
const LSE_ALIGN: u64 = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RebuildPhase {
    Read,
    Write,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScrubPhase {
    /// A verification read of the next chunk of the data region.
    Verify,
    /// The rewrite of a chunk whose latent extents were repaired from
    /// the surviving mirror copy.
    Repair,
}

/// Per-disk progress of the background integrity scrub.
#[derive(Debug, Clone, Default)]
struct ScrubDiskState {
    /// Next byte of the data region to verify.
    cursor: u64,
    /// Pass number (0-based; bumped when the cursor wraps).
    pass: u64,
    /// Bytes verified in the current pass.
    pass_bytes: u64,
    /// True once `ScrubStart` was emitted for the current pass.
    started: bool,
    /// True while a scrub chunk (verify or repair) is in flight.
    inflight: bool,
    /// Completion instant of the most recent full pass — the disk's
    /// provable scrub age.
    last_pass_at: Option<SimTime>,
}

/// One delayed per-disk effect of a correlated enclosure shock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShockEffect {
    /// The disk fails outright (routed through the whole-disk failure
    /// path, double-fault suppression included).
    Fail(DiskId),
    /// The disk accrues a latent corrupt extent at the given offset.
    Corrupt(DiskId, u64),
}

/// Live state of one in-run rebuild onto a replacement disk.
#[derive(Debug)]
struct RebuildState {
    sources: Vec<DiskId>,
    next_source: usize,
    total: u64,
    issued: u64,
    written: u64,
    started: SimTime,
    inflight: IoMap<(RebuildPhase, u64, u64)>,
}

/// Outcome of the final sub-request of a user request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedUser {
    /// Read or write.
    pub kind: ReqKind,
    /// Measured response time.
    pub response: Duration,
}

#[derive(Debug)]
struct Outstanding {
    /// The externally-visible user request id: it appears in trace
    /// events and spans, so it is stored here (stable) rather than
    /// derived from the slab slot (recycled).
    user_id: u64,
    kind: ReqKind,
    arrival: SimTime,
    subs_left: u32,
}

/// Shared context: disks, request tracking, metric sinks.
#[derive(Debug)]
pub struct SimCtx {
    /// Current simulated time (set by the driver before each callback).
    pub now: SimTime,
    geometry: ArrayGeometry,
    disks: Vec<Disk>,
    pending_wakes: Vec<(DiskId, DiskWake)>,
    pending_timers: Vec<(SimTime, u64)>,
    /// In-flight user requests, slab-allocated: completion is one
    /// indexed access via the controller-held [`IoSlot`], not a hash
    /// probe per sub-request.
    outstanding: IoSlab<Outstanding>,
    next_io_id: u64,
    /// SoA mirror of each disk's power state, updated at the two points
    /// a disk's state can change ([`SimCtx::note_disk_state`] and
    /// [`SimCtx::fail_disk`]). Keeps the power-sampling hot path off the
    /// pointer-chasing `Disk` structs.
    power_soa: Vec<PowerState>,
    /// SoA instantaneous draw (W) per disk, cached alongside
    /// `power_soa` — power is a pure function of the state, so the two
    /// are maintained together and `total_power_w` is a contiguous sum.
    watts_soa: Vec<f64>,
    /// Response-time statistics over all user requests.
    pub responses: ResponseStats,
    /// Response-time statistics over reads only.
    pub read_responses: ResponseStats,
    /// Response-time statistics over writes only.
    pub write_responses: ResponseStats,
    /// Logging/destaging phase tracker.
    pub intervals: IntervalTracker,
    /// Occupied logging capacity over time (bytes).
    pub log_timeline: Timeline,
    /// Sampled aggregate power draw over time (watts).
    pub power_timeline: Timeline,
    /// Response-time statistics over user requests completed while the
    /// array was degraded (at least one slot awaiting rebuild).
    pub degraded_responses: ResponseStats,
    /// Fault-injection counters (see [`FaultMetrics`]).
    pub faults: FaultMetrics,
    fault_plan: FaultPlan,
    fault_rng: SimRng,
    spare_rng: SimRng,
    disk_params: DiskParams,
    scheduler: SchedulerKind,
    bg_idle_guard: Duration,
    /// Per-slot replacement generation; bumped when a spare is installed
    /// so stale wakes of the dead disk can be dropped.
    epochs: Vec<u32>,
    /// Slots whose current disk is a replacement still awaiting rebuild,
    /// with the failure instant.
    degraded: HashMap<DiskId, SimTime>,
    degraded_since: Option<SimTime>,
    first_failure_at: Option<SimTime>,
    retries: IoMap<u32>,
    rebuilds: HashMap<DiskId, RebuildState>,
    rebuild_ios: IoMap<DiskId>,
    finished_rebuilds: Vec<DiskId>,
    /// Energy history of dead disks, merged into the slot's live report
    /// so array totals conserve energy across replacements.
    retired: HashMap<DiskId, DiskEnergyReport>,
    /// Trace sink every instrumented layer emits into ([`NullSink`] by
    /// default).
    tracer: Box<dyn TraceSink>,
    /// Cached `tracer.enabled()`: the only cost tracing adds to an
    /// untraced hot path is this one branch per emit point.
    trace_on: bool,
    /// Always-on, deterministic metrics published by the driver and
    /// controllers; exported into the simulation report.
    pub metrics: MetricsRegistry,
    pub(crate) mids: CtxMetricIds,
    /// Per-request span collector, present only when span recording was
    /// enabled ([`SimCtx::enable_spans`]). The simulation never reads
    /// it, so recording cannot perturb outcomes.
    spans: Option<SpanCollector>,
    /// Open destage [`BgSpan`](rolo_obs::BgSpan) ids, keyed by the
    /// scheme's destage unit (`Some(pair)` for per-pair destage, `None`
    /// for whole-log cycles).
    destage_spans: HashMap<Option<usize>, u64>,
    /// Open rebuild span ids, keyed by the slot being rebuilt.
    rebuild_spans: HashMap<DiskId, u64>,
    /// Open compaction span ids, keyed by the pair being compacted
    /// (`None` for whole-log compactors).
    compaction_spans: HashMap<Option<usize>, u64>,
    /// Per-disk latent corrupt extents (silent until a read, scrub chunk
    /// or overwrite touches them).
    corrupt: Vec<IntegrityMap>,
    /// RNG stream for LSE thinning accepts and extent placement
    /// (untouched unless the plan injects LSE, so a corruption-free run
    /// draws exactly the same fault stream as before).
    lse_rng: SimRng,
    /// RNG stream for enclosure-shock expansion.
    shock_rng: SimRng,
    /// True when the background integrity scrub runs.
    scrub_enabled: bool,
    /// Bytes per scrub chunk read.
    scrub_chunk: u64,
    /// Per-disk scrub progress.
    scrub_state: Vec<ScrubDiskState>,
    /// In-flight scrub sub-requests: io id → (disk, phase, offset, bytes).
    scrub_ios: IoMap<(DiskId, ScrubPhase, u64, u64)>,
    /// Open scrub span ids, keyed by the disk being scrubbed.
    scrub_spans: HashMap<DiskId, u64>,
    /// Online telemetry hub + SLO monitor, present only when
    /// `SimConfig::telemetry_enabled`. The simulation never reads it and
    /// it schedules no events of its own (windows advance on the
    /// existing power-sampling hook), so enabling or disabling it
    /// cannot perturb outcomes.
    telemetry: Option<CtxTelemetry>,
    /// Every SLO alert raised this run, in emission order; drained by
    /// the driver alongside the telemetry snapshot.
    slo_alerts: Vec<SloAlert>,
}

/// The context's half of the telemetry pipeline: the windowed rollup
/// hub, pre-registered series ids for every emit point, and the SLO
/// monitor fed by each closed window.
#[derive(Debug)]
struct CtxTelemetry {
    hub: Telemetry,
    monitor: SloMonitor,
    /// Response-time quantile series (µs) — the series SLO latency
    /// objectives read.
    response_us: SeriesId,
    /// Array power gauge (W) — the series energy budgets read.
    power_w: SeriesId,
    /// Completed user requests per window.
    completions: SeriesId,
    /// Dispatched bytes per window.
    dispatched_bytes: SeriesId,
    /// Per-disk power-state transitions, indexed by slot.
    disk_transitions: Vec<SeriesId>,
    /// Per-span-phase critical-path microseconds (populated only when
    /// span recording is also on), indexed by `Phase::index()`.
    phase_us: [SeriesId; NUM_PHASES],
    /// Windowed top-k tail-exemplar recorder (DESIGN.md §14), present
    /// when `SimConfig::exemplars_per_window > 0`. Like the phase
    /// series it only observes anything when span recording is also
    /// on, and it rides the telemetry window clock.
    exemplars: Option<ExemplarRecorder>,
}

/// Pre-registered hot-path metric ids, so emit points index the registry
/// without name lookups.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CtxMetricIds {
    pub(crate) dispatches: MetricId,
    pub(crate) dispatched_bytes: MetricId,
    pub(crate) user_completions: MetricId,
    pub(crate) response_us: MetricId,
    pub(crate) disk_transitions: MetricId,
    pub(crate) power_w: MetricId,
    pub(crate) outstanding: MetricId,
}

impl SimCtx {
    /// Builds the context: one disk per [`SimConfig::disk_count`], each
    /// with a forked deterministic RNG stream. `standby` selects the
    /// disks that begin spun down. Tracing is off ([`NullSink`]).
    pub fn new(cfg: &SimConfig, geometry: ArrayGeometry, standby: &[bool]) -> Self {
        Self::with_sink(cfg, geometry, standby, Box::new(NullSink))
    }

    /// Like [`SimCtx::new`], but with a caller-supplied trace sink.
    pub fn with_sink(
        cfg: &SimConfig,
        geometry: ArrayGeometry,
        standby: &[bool],
        sink: Box<dyn TraceSink>,
    ) -> Self {
        assert_eq!(standby.len(), cfg.disk_count(), "standby mask length");
        let rng = SimRng::seed_from(cfg.seed);
        let disks = (0..cfg.disk_count())
            .map(|id| {
                let state = if standby[id] {
                    PowerState::Standby
                } else {
                    PowerState::Idle
                };
                let mut disk = Disk::with_initial_state(
                    id,
                    cfg.disk.clone(),
                    rng.fork(&format!("disk-{id}")),
                    state,
                );
                disk.set_bg_idle_guard(cfg.bg_idle_guard);
                disk.set_scheduler(cfg.scheduler);
                disk
            })
            .collect();
        let disk_count = cfg.disk_count();
        let mut metrics = MetricsRegistry::new(Duration::from_secs(60));
        let mids = CtxMetricIds {
            dispatches: metrics.counter("io.dispatched"),
            dispatched_bytes: metrics.counter("io.dispatched_bytes"),
            user_completions: metrics.counter("sim.user_completions"),
            response_us: metrics.histogram("sim.response_us"),
            disk_transitions: metrics.counter("disk.state_transitions"),
            power_w: metrics.gauge("sim.power_w"),
            outstanding: metrics.gauge("sim.outstanding_users"),
        };
        let telemetry = cfg.telemetry_enabled.then(|| {
            let mut hub = Telemetry::new(cfg.telemetry_window, cfg.telemetry_retain);
            let response_us = hub.quantile("sim.response_us");
            let power_w = hub.gauge("sim.power_w");
            let completions = hub.counter("sim.user_completions");
            let dispatched_bytes = hub.counter("io.dispatched_bytes");
            let disk_transitions = (0..disk_count)
                .map(|d| hub.counter(&format!("disk.{d:02}.state_transitions")))
                .collect();
            let phase_us =
                Phase::ALL.map(|p| hub.counter(&format!("phase.{}.critical_path_us", p.name())));
            let exemplars = (cfg.exemplars_per_window > 0).then(|| {
                ExemplarRecorder::new(
                    cfg.exemplars_per_window,
                    cfg.telemetry_window,
                    cfg.telemetry_retain,
                )
            });
            CtxTelemetry {
                hub,
                monitor: SloMonitor::new(cfg.slo_burn, cfg.slos.clone()),
                response_us,
                power_w,
                completions,
                dispatched_bytes,
                disk_transitions,
                phase_us,
                exemplars,
            }
        });
        let trace_on = sink.enabled();
        let disks: Vec<Disk> = disks;
        let power_soa: Vec<PowerState> = disks.iter().map(|d| d.power_state()).collect();
        let watts_soa: Vec<f64> = disks.iter().map(|d| d.current_power_w()).collect();
        SimCtx {
            now: SimTime::ZERO,
            geometry,
            disks,
            pending_wakes: Vec::new(),
            pending_timers: Vec::new(),
            outstanding: IoSlab::with_capacity(256),
            next_io_id: 1,
            power_soa,
            watts_soa,
            responses: ResponseStats::new(),
            read_responses: ResponseStats::new(),
            write_responses: ResponseStats::new(),
            intervals: IntervalTracker::new(),
            log_timeline: Timeline::new(Duration::from_secs(60)),
            power_timeline: Timeline::new(Duration::from_secs(30)),
            degraded_responses: ResponseStats::new(),
            faults: FaultMetrics::default(),
            fault_plan: cfg.faults.clone(),
            fault_rng: SimRng::seed_from(cfg.faults.seed).fork("fault-draws"),
            spare_rng: SimRng::seed_from(cfg.seed).fork("spares"),
            disk_params: cfg.disk.clone(),
            scheduler: cfg.scheduler,
            bg_idle_guard: cfg.bg_idle_guard,
            epochs: vec![0; disk_count],
            degraded: HashMap::new(),
            degraded_since: None,
            first_failure_at: None,
            retries: IoMap::default(),
            rebuilds: HashMap::new(),
            rebuild_ios: IoMap::default(),
            finished_rebuilds: Vec::new(),
            retired: HashMap::new(),
            tracer: sink,
            trace_on,
            metrics,
            mids,
            spans: None,
            destage_spans: HashMap::new(),
            rebuild_spans: HashMap::new(),
            compaction_spans: HashMap::new(),
            corrupt: vec![IntegrityMap::new(); disk_count],
            lse_rng: SimRng::seed_from(cfg.faults.seed).fork("lse-draws"),
            shock_rng: SimRng::seed_from(cfg.faults.seed).fork("shock-draws"),
            scrub_enabled: cfg.scrub_enabled,
            scrub_chunk: cfg.scrub_chunk,
            scrub_state: vec![ScrubDiskState::default(); disk_count],
            scrub_ios: IoMap::default(),
            scrub_spans: HashMap::new(),
            telemetry,
            slo_alerts: Vec::new(),
        }
    }

    /// Switches per-request span recording on: every disk starts
    /// stamping [`rolo_disk::ServiceBreakdown`]s and the context opens a
    /// [`SpanCollector`] that follows each user request from admission
    /// ([`SimCtx::register_user`]) to completion
    /// ([`SimCtx::user_sub_done`]). Off by default; recording never
    /// feeds back into the simulation, so a spanned run produces the
    /// same [`crate::report::SimReport`] as an unspanned one.
    pub fn enable_spans(&mut self) {
        for d in &mut self.disks {
            d.set_record_breakdown(true);
        }
        self.spans = Some(SpanCollector::new());
    }

    /// True when span recording is on.
    #[inline]
    pub fn spans_enabled(&self) -> bool {
        self.spans.is_some()
    }

    /// Driver hook: detaches the finished span data, if recording was
    /// on.
    pub fn take_spans(&mut self) -> Option<SpanSet> {
        self.spans.take().map(|c| {
            let (requests, background) = c.into_finished();
            SpanSet {
                requests,
                background,
            }
        })
    }

    /// Declares that sub-request `io` serves user request `user` and
    /// what its transfer is for. Controllers call this right after each
    /// foreground [`SimCtx::submit`]; background I/O stays untagged.
    /// No-op unless span recording is on.
    #[inline]
    pub fn tag_io(&mut self, io: u64, user: u64, flavor: LegFlavor) {
        if let Some(s) = &mut self.spans {
            s.tag_io(io, user, flavor);
        }
    }

    /// Drops the span tag of an aborted sub-request (its completion
    /// will never be observed). No-op unless span recording is on.
    #[inline]
    pub fn untag_io(&mut self, io: u64) {
        if let Some(s) = &mut self.spans {
            s.untag_io(io);
        }
    }

    /// Opens a destage background span covering `disks`. `pair` is the
    /// scheme's destage unit — `Some(pair)` for per-pair destage (RoLo),
    /// `None` for whole-log cycles (GRAID, RoLo-E) — and keys the
    /// matching [`SimCtx::span_destage_end`].
    pub fn span_destage_begin(&mut self, pair: Option<usize>, disks: &[DiskId]) {
        if let Some(s) = &mut self.spans {
            let id = s.begin_bg(BgSpanKind::Destage, disks, self.now);
            self.destage_spans.insert(pair, id);
        }
    }

    /// Closes the destage background span keyed by `pair`, if open.
    pub fn span_destage_end(&mut self, pair: Option<usize>) {
        if let Some(id) = self.destage_spans.remove(&pair) {
            if let Some(s) = &mut self.spans {
                s.end_bg(id, self.now);
            }
        }
    }

    /// Opens a compaction background span covering `disks`: foreground
    /// legs delayed behind the relocation transfers on those disks are
    /// charged to the `Compaction` phase instead of
    /// `DestageInterference`, keeping attribution conserved while
    /// separating the two background causes.
    pub fn span_compaction_begin(&mut self, pair: Option<usize>, disks: &[DiskId]) {
        if let Some(s) = &mut self.spans {
            let id = s.begin_bg(BgSpanKind::Compaction, disks, self.now);
            self.compaction_spans.insert(pair, id);
        }
    }

    /// Closes the compaction background span keyed by `pair`, if open.
    pub fn span_compaction_end(&mut self, pair: Option<usize>) {
        if let Some(id) = self.compaction_spans.remove(&pair) {
            if let Some(s) = &mut self.spans {
                s.end_bg(id, self.now);
            }
        }
    }

    fn span_rebuild_begin(&mut self, slot: DiskId, disks: &[DiskId]) {
        if let Some(s) = &mut self.spans {
            let id = s.begin_bg(BgSpanKind::Rebuild, disks, self.now);
            self.rebuild_spans.insert(slot, id);
        }
    }

    fn span_rebuild_end(&mut self, slot: DiskId) {
        if let Some(id) = self.rebuild_spans.remove(&slot) {
            if let Some(s) = &mut self.spans {
                s.end_bg(id, self.now);
            }
        }
    }

    fn span_scrub_begin(&mut self, disk: DiskId) {
        if let Some(s) = &mut self.spans {
            let id = s.begin_bg(BgSpanKind::Scrub, &[disk], self.now);
            self.scrub_spans.insert(disk, id);
        }
    }

    fn span_scrub_end(&mut self, disk: DiskId) {
        if let Some(id) = self.scrub_spans.remove(&disk) {
            if let Some(s) = &mut self.spans {
                s.end_bg(id, self.now);
            }
        }
    }

    /// True when a recording trace sink is attached.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    /// Records a trace event at the current simulated time.
    ///
    /// The event is built lazily: with the default [`NullSink`] this
    /// costs exactly one predicted branch and the closure never runs.
    #[inline]
    pub fn emit(&mut self, event: impl FnOnce() -> SimEvent) {
        if self.trace_on {
            self.tracer.record(self.now, event());
        }
    }

    /// Driver hook: detaches the trace sink, replacing it with a
    /// [`NullSink`] (subsequent emits become no-ops).
    pub fn take_sink(&mut self) -> Box<dyn TraceSink> {
        self.trace_on = false;
        std::mem::replace(&mut self.tracer, Box::new(NullSink))
    }

    /// Driver hook: refreshes the sampled gauges (array power draw,
    /// outstanding user requests), snapshots every registry metric
    /// into its timeline, and advances the telemetry windows. Called at
    /// the driver's power-sampling cadence — telemetry piggybacks on
    /// this existing hook instead of scheduling events of its own, so
    /// it cannot perturb the event order.
    pub fn sample_metrics(&mut self) {
        let power = self.total_power_w();
        let outstanding = self.outstanding.len() as f64;
        self.metrics.set(self.mids.power_w, power);
        self.metrics.set(self.mids.outstanding, outstanding);
        self.metrics.snapshot(self.now);
        self.telemetry_tick(power);
    }

    /// Samples the power gauge into the telemetry hub, closes every
    /// elapsed window, and feeds each closed window to the SLO monitor,
    /// emitting the resulting alerts as trace events.
    fn telemetry_tick(&mut self, power: f64) {
        let now = self.now;
        let mut alerts = Vec::new();
        if let Some(tel) = &mut self.telemetry {
            tel.hub.set(tel.power_w, power);
            if let Some(rec) = &mut tel.exemplars {
                // Keep the exemplar ring on the same window clock as
                // the telemetry hub: seal elapsed windows together.
                rec.advance(now);
            }
            for w in tel.hub.advance(now) {
                let Some(latency) = tel.hub.rollup(tel.response_us, w.window) else {
                    continue; // evicted by a coarse multi-window close
                };
                let RollupValue::Quantile(latency) = latency.value.clone() else {
                    unreachable!("response series is a quantile series");
                };
                let mean_watts = match tel.hub.rollup(tel.power_w, w.window).map(|r| &r.value) {
                    Some(RollupValue::Gauge { mean, .. }) => *mean,
                    _ => 0.0,
                };
                alerts.extend(tel.monitor.observe_window(WindowObservation {
                    window: w.window,
                    latency: &latency,
                    mean_watts,
                }));
            }
        }
        for a in &alerts {
            self.emit(|| match a.signal {
                SloSignal::Warning => SimEvent::SloBurnWarning {
                    slo: a.slo.clone(),
                    window: a.window,
                    burn_short_x100: (a.burn_short * 100.0).round() as u64,
                    burn_long_x100: (a.burn_long * 100.0).round() as u64,
                },
                SloSignal::Breach => SimEvent::SloBreach {
                    slo: a.slo.clone(),
                    window: a.window,
                    observed_x1000: (a.observed * 1000.0).round() as u64,
                    target_x1000: (a.target * 1000.0).round() as u64,
                },
            });
        }
        self.slo_alerts.extend(alerts);
    }

    /// True when the telemetry hub is on.
    #[inline]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Driver hook: exports the telemetry hub's retained windows, if
    /// telemetry was on.
    pub fn take_telemetry(&mut self) -> Option<TelemetrySnapshot> {
        self.telemetry.take().map(|t| t.hub.snapshot())
    }

    /// Driver hook: drains the SLO alerts raised so far, in emission
    /// order.
    pub fn take_slo_alerts(&mut self) -> Vec<SloAlert> {
        std::mem::take(&mut self.slo_alerts)
    }

    /// Driver hook: detaches the captured tail exemplars, sealing the
    /// open window. `None` when capture was off
    /// (`exemplars_per_window == 0` or telemetry disabled). Must be
    /// called before [`SimCtx::take_telemetry`], which consumes the
    /// whole telemetry state.
    pub fn take_exemplars(&mut self) -> Option<ExemplarSet> {
        self.telemetry
            .as_mut()
            .and_then(|t| t.exemplars.take())
            .map(ExemplarRecorder::finish)
    }

    /// Bumps the transition counter and emits [`SimEvent::DiskState`]
    /// when `disk` has left the power state captured in `before`. Also
    /// the maintenance point of the SoA power cache: every context
    /// method that can change a disk's state funnels through here.
    fn note_disk_state(&mut self, disk: DiskId, before: PowerState) {
        let after = self.disks[disk].power_state();
        if after != before {
            self.power_soa[disk] = after;
            self.watts_soa[disk] = self.disks[disk].current_power_w();
            self.metrics.inc(self.mids.disk_transitions, 1);
            if let Some(tel) = &mut self.telemetry {
                tel.hub.add(tel.disk_transitions[disk], 1.0);
            }
            self.emit(|| SimEvent::DiskState {
                disk,
                from: before,
                to: after,
            });
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> &ArrayGeometry {
        &self.geometry
    }

    /// Immutable view of a disk.
    pub fn disk(&self, id: DiskId) -> &Disk {
        &self.disks[id]
    }

    /// All disks.
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    /// Number of disks.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Allocates a fresh sub-request id for policy bookkeeping.
    pub fn alloc_io_id(&mut self) -> u64 {
        let id = self.next_io_id;
        self.next_io_id += 1;
        id
    }

    /// Submits a sub-request to `disk`, returning its id.
    pub fn submit(
        &mut self,
        disk: DiskId,
        kind: IoKind,
        offset: u64,
        bytes: u64,
        priority: Priority,
    ) -> u64 {
        let id = self.alloc_io_id();
        self.submit_with_id(disk, id, kind, offset, bytes, priority);
        id
    }

    /// Submits a sub-request with a caller-chosen id.
    pub fn submit_with_id(
        &mut self,
        disk: DiskId,
        id: u64,
        kind: IoKind,
        offset: u64,
        bytes: u64,
        priority: Priority,
    ) {
        let req = DiskRequest::new(id, kind, offset, bytes, priority);
        let now = self.now;
        let before = self.disks[disk].power_state();
        if let Some(w) = self.disks[disk].submit(req, now) {
            self.pending_wakes.push((disk, w));
        }
        self.metrics.inc(self.mids.dispatches, 1);
        self.metrics.inc(self.mids.dispatched_bytes, bytes);
        if let Some(tel) = &mut self.telemetry {
            tel.hub.add(tel.dispatched_bytes, bytes as f64);
        }
        self.note_disk_state(disk, before);
        self.emit(|| SimEvent::RequestDispatch {
            io: id,
            disk,
            kind,
            offset,
            bytes,
            background: priority == Priority::Background,
        });
    }

    /// Asks `disk` to spin down as soon as it drains (park semantics:
    /// immediate if idle, deferred to the last completion otherwise; any
    /// new submission cancels it).
    pub fn spin_down(&mut self, disk: DiskId) {
        let now = self.now;
        let before = self.disks[disk].power_state();
        if let Some(w) = self.disks[disk].park_when_idle(now) {
            self.pending_wakes.push((disk, w));
        }
        self.note_disk_state(disk, before);
    }

    /// Spins `disk` up if it is in standby.
    pub fn spin_up(&mut self, disk: DiskId) {
        let now = self.now;
        let before = self.disks[disk].power_state();
        if let Some(w) = self.disks[disk].spin_up(now) {
            self.pending_wakes.push((disk, w));
        }
        self.note_disk_state(disk, before);
    }

    /// Schedules a policy timer `delay` from now carrying `token`.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.pending_timers.push((self.now + delay, token));
    }

    /// Driver hook: drains wakes accumulated since the last call.
    ///
    /// Allocates a fresh `Vec` per call; the driver's hot loop uses
    /// [`SimCtx::drain_wakes_into`] instead and this stays for tests and
    /// offline tooling.
    pub fn take_wakes(&mut self) -> Vec<(DiskId, DiskWake)> {
        std::mem::take(&mut self.pending_wakes)
    }

    /// Driver hook: drains pending timers.
    ///
    /// Allocates a fresh `Vec` per call; the driver's hot loop uses
    /// [`SimCtx::drain_timers_into`] instead and this stays for tests
    /// and offline tooling.
    pub fn take_timers(&mut self) -> Vec<(SimTime, u64)> {
        std::mem::take(&mut self.pending_timers)
    }

    /// True when at least one wake or timer is pending — lets the driver
    /// skip its drain machinery entirely on the (common) quiet steps.
    #[inline]
    pub fn has_pending(&self) -> bool {
        !self.pending_wakes.is_empty() || !self.pending_timers.is_empty()
    }

    /// Allocation-free variant of [`SimCtx::take_wakes`]: swaps the
    /// pending wakes into `out` (which must be empty), leaving the
    /// context holding `out`'s spare capacity. Driving the drain loop
    /// with one reused scratch vector means zero per-step allocations
    /// once the vectors warm up; the order of drained entries is
    /// identical to `take_wakes`.
    #[inline]
    pub fn drain_wakes_into(&mut self, out: &mut Vec<(DiskId, DiskWake)>) {
        debug_assert!(out.is_empty(), "drain scratch must be drained first");
        std::mem::swap(&mut self.pending_wakes, out);
    }

    /// Allocation-free variant of [`SimCtx::take_timers`]; see
    /// [`SimCtx::drain_wakes_into`].
    #[inline]
    pub fn drain_timers_into(&mut self, out: &mut Vec<(SimTime, u64)>) {
        debug_assert!(out.is_empty(), "drain scratch must be drained first");
        std::mem::swap(&mut self.pending_timers, out);
    }

    /// Driver hook: delivers a disk wake back to the disk, pushing any
    /// follow-up wake. For I/O completions, returns the finished request.
    pub fn deliver_wake(&mut self, disk: DiskId, wake_kind: WakeKind) -> Option<DiskRequest> {
        let now = self.now;
        let before = self.disks[disk].power_state();
        let completed = match wake_kind {
            WakeKind::Io => {
                let out = self.disks[disk].on_io_complete(now);
                if let Some(w) = out.next {
                    self.pending_wakes.push((disk, w));
                }
                if self.spans.is_some() {
                    if let Some(b) = self.disks[disk].take_breakdown() {
                        if let Some(s) = &mut self.spans {
                            s.record_leg(b.id, disk, &b);
                        }
                    }
                }
                Some(out.completed)
            }
            WakeKind::SpinUp => {
                if let Some(w) = self.disks[disk].on_spin_up_complete(now) {
                    self.pending_wakes.push((disk, w));
                }
                None
            }
            WakeKind::SpinDown => {
                if let Some(w) = self.disks[disk].on_spin_down_complete(now) {
                    self.pending_wakes.push((disk, w));
                }
                None
            }
            WakeKind::BgRetry => {
                if let Some(w) = self.disks[disk].on_bg_retry(now) {
                    self.pending_wakes.push((disk, w));
                }
                None
            }
        };
        self.note_disk_state(disk, before);
        completed
    }

    /// Registers a user request with `subs` outstanding sub-requests,
    /// returning the slab slot the controller hands back to
    /// [`SimCtx::user_sub_done`] on every sub-completion. The `user_id`
    /// stays the externally-visible identity (traces, spans); the slot
    /// is a recycled internal handle.
    ///
    /// # Panics
    ///
    /// Panics if `subs` is zero.
    pub fn register_user(
        &mut self,
        user_id: u64,
        kind: ReqKind,
        arrival: SimTime,
        subs: u32,
    ) -> IoSlot {
        assert!(subs > 0, "user request with zero sub-requests");
        let slot = self.outstanding.insert(Outstanding {
            user_id,
            kind,
            arrival,
            subs_left: subs,
        });
        if let Some(s) = &mut self.spans {
            s.open_request(user_id, kind, arrival);
        }
        slot
    }

    /// Adds more pending sub-requests to an in-flight user request.
    ///
    /// # Panics
    ///
    /// Panics if the slot is stale (request already completed).
    pub fn add_user_subs(&mut self, slot: IoSlot, subs: u32) {
        self.outstanding
            .get_mut(slot)
            .unwrap_or_else(|| panic!("unknown user request slot {slot:?}"))
            .subs_left += subs;
    }

    /// Marks one sub-request of the user request at `slot` complete.
    /// When the last one lands, records the response time and returns
    /// the completion.
    ///
    /// # Panics
    ///
    /// Panics if the slot is stale (request already completed).
    pub fn user_sub_done(&mut self, slot: IoSlot) -> Option<CompletedUser> {
        let o = self
            .outstanding
            .get_mut(slot)
            .unwrap_or_else(|| panic!("unknown user request slot {slot:?}"));
        o.subs_left -= 1;
        if o.subs_left > 0 {
            return None;
        }
        let o = self.outstanding.remove(slot).expect("present");
        let user_id = o.user_id;
        let mut phase_us: Option<[u64; NUM_PHASES]> = None;
        if let Some(s) = &mut self.spans {
            if let Some(span) = s.close_request(user_id, self.now) {
                if let Some(tel) = &mut self.telemetry {
                    let path = critical_path(span);
                    if let Some(rec) = &mut tel.exemplars {
                        // Tail-exemplar capture: offer the finished
                        // span to the bounded per-window top-k
                        // recorder, stamping the power states of the
                        // disks it touched (an observational read of
                        // the SoA cache).
                        rec.observe(self.now, span, &path, &self.power_soa);
                    }
                    phase_us = Some(path.phase_us);
                }
            }
        }
        let response = self.now.since(o.arrival);
        self.responses.record(response);
        match o.kind {
            ReqKind::Read => self.read_responses.record(response),
            ReqKind::Write => self.write_responses.record(response),
        }
        if !self.degraded.is_empty() {
            self.degraded_responses.record(response);
        }
        self.metrics.inc(self.mids.user_completions, 1);
        self.metrics
            .observe(self.mids.response_us, response.as_micros() as f64);
        if let Some(tel) = &mut self.telemetry {
            tel.hub.add(tel.completions, 1.0);
            tel.hub
                .observe(tel.response_us, response.as_micros() as f64);
            if let Some(phase_us) = phase_us {
                for (i, &us) in phase_us.iter().enumerate() {
                    if us > 0 {
                        tel.hub.add(tel.phase_us[i], us as f64);
                    }
                }
            }
        }
        self.emit(|| SimEvent::RequestComplete {
            id: user_id,
            kind: o.kind,
            response_us: response.as_micros(),
        });
        Some(CompletedUser {
            kind: o.kind,
            response,
        })
    }

    /// Number of user requests still in flight.
    pub fn outstanding_users(&self) -> usize {
        self.outstanding.len()
    }

    /// Energy reports for every slot as of `now`: the live disk's report
    /// merged with the history of any dead disks that occupied the slot.
    pub fn energy_by_disk(&self) -> Vec<DiskEnergyReport> {
        self.disks
            .iter()
            .map(|d| {
                let live = d.energy_report(self.now);
                match self.retired.get(&d.id()) {
                    Some(dead) => dead.merged(&live),
                    None => live,
                }
            })
            .collect()
    }

    /// Instantaneous aggregate power draw of the array (W): a contiguous
    /// sum over the SoA watts cache, not a walk over the disk structs.
    pub fn total_power_w(&self) -> f64 {
        let total: f64 = self.watts_soa.iter().sum();
        debug_assert_eq!(
            total,
            self.disks.iter().map(|d| d.current_power_w()).sum::<f64>(),
            "SoA power cache out of sync with disk states"
        );
        total
    }

    /// Cached power state of `disk` (same value as
    /// `self.disk(disk).power_state()`, without touching the disk
    /// struct).
    #[inline]
    pub fn power_state_of(&self, disk: DiskId) -> PowerState {
        self.power_soa[disk]
    }

    /// Total array energy (J) as of `now`, including dead disks' history.
    pub fn total_energy(&self) -> f64 {
        self.energy_by_disk().iter().map(|r| r.total_joules).sum()
    }

    /// Total spin cycles (spin-ups) across the array so far.
    pub fn spin_cycles(&self) -> u64 {
        self.energy_by_disk().iter().map(|r| r.spin_ups).sum()
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// The fault plan this run was configured with.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Current replacement generation of `disk`'s slot.
    pub fn epoch(&self, disk: DiskId) -> u32 {
        self.epochs[disk]
    }

    /// True if a wake tagged with `epoch` still belongs to the disk
    /// occupying `disk`'s slot (false after a replacement).
    pub fn epoch_live(&self, disk: DiskId, epoch: u32) -> bool {
        self.epochs[disk] == epoch
    }

    /// True while `disk`'s slot holds a replacement awaiting rebuild.
    /// Reads must not target it: the data is not there yet.
    pub fn is_degraded(&self, disk: DiskId) -> bool {
        self.degraded.contains_key(&disk)
    }

    /// Number of slots currently degraded.
    pub fn degraded_count(&self) -> usize {
        self.degraded.len()
    }

    /// Kills the disk in slot `disk` and installs a hot spare.
    ///
    /// Returns the policy-owned requests that were queued or in flight on
    /// the dead disk (rebuild-owned requests are re-issued internally);
    /// the caller must complete each through the policy's error path so
    /// no user request is silently dropped. Returns `None` — injecting
    /// nothing — when the failure would be the pair's second (data loss
    /// is the reliability model's domain, not the replay's).
    pub fn fail_disk(&mut self, disk: DiskId) -> Option<Vec<DiskRequest>> {
        let partner = surviving_partner(&self.geometry, disk);
        if self.is_degraded(disk) || partner.is_some_and(|p| self.is_degraded(p)) {
            self.faults.double_faults_suppressed += 1;
            return None;
        }
        self.faults.disk_failures += 1;
        self.first_failure_at.get_or_insert(self.now);
        if self.degraded.is_empty() {
            self.degraded_since = Some(self.now);
        }

        // Retire the dead disk's energy history so array totals conserve.
        let history = self.disks[disk].energy_report(self.now);
        let merged = match self.retired.get(&disk) {
            Some(prev) => prev.merged(&history),
            None => history,
        };
        self.retired.insert(disk, merged);

        let aborted = self.disks[disk].fail_now(self.now);
        self.epochs[disk] += 1;
        let label = format!("spare-{disk}-{}", self.epochs[disk]);
        let mut spare = Disk::with_initial_state_at(
            disk,
            self.disk_params.clone(),
            self.spare_rng.fork(&label),
            PowerState::Idle,
            self.now,
        );
        spare.set_bg_idle_guard(self.bg_idle_guard);
        spare.set_scheduler(self.scheduler);
        // The spare must inherit span recording, or every leg it serves
        // vanishes from its request's critical path (unattributed gaps
        // in post-failure attribution).
        spare.set_record_breakdown(self.spans.is_some());
        self.disks[disk] = spare;
        self.power_soa[disk] = self.disks[disk].power_state();
        self.watts_soa[disk] = self.disks[disk].current_power_w();
        self.degraded.insert(disk, self.now);
        let epoch = u64::from(self.epochs[disk]);
        self.emit(|| SimEvent::DiskFailed { disk, epoch });

        // The dead disk's latent extents leave with it: the rebuild
        // rewrites the slot wholesale from the surviving copy, so they
        // are classified overwritten (the data was never the only copy).
        // The *partner's* latent extents, however, are now the sole copy
        // of those bytes while its mirror is gone — the classic
        // LSE-plus-disk-failure double fault. They are lost.
        let wiped = self.corrupt[disk].reset();
        self.faults.lse_overwritten += wiped as u64;
        if let Some(p) = partner {
            let doomed: Vec<(u64, u64)> = self.corrupt[p].iter().collect();
            self.corrupt[p].reset();
            for (offset, bytes) in doomed {
                self.faults.lse_lost += 1;
                self.emit(|| SimEvent::ExtentLost {
                    disk: p,
                    offset,
                    bytes,
                });
            }
        }

        // The dead disk drops out of every running rebuild's source set,
        // and its in-flight rebuild reads move to a surviving source.
        for st in self.rebuilds.values_mut() {
            st.sources.retain(|&s| s != disk);
        }
        let mut policy_owned = Vec::new();
        for req in aborted {
            if let Some(slot) = self.rebuild_ios.get(&req.id).copied() {
                self.reissue_rebuild_read(slot, req.id);
            } else if let Some((d, _, _, _)) = self.scrub_ios.remove(&req.id) {
                // A scrub chunk died with the disk; the pass resumes from
                // the same cursor once the replacement is rebuilt.
                self.scrub_state[d].inflight = false;
                self.span_scrub_end(d);
            } else {
                policy_owned.push(req);
            }
        }
        Some(policy_owned)
    }

    /// Classifies a completed policy I/O against the fault plan: a
    /// transient timeout, a failed end-to-end checksum (the read touched
    /// a latent corrupt extent), a Bernoulli latent sector error (reads
    /// only), or a clean completion. Rebuild and scrub I/O are exempt —
    /// the driver routes them through [`SimCtx::on_rebuild_io`] /
    /// [`SimCtx::on_scrub_io`] before classification.
    pub fn classify_completion(&mut self, disk: DiskId, req: &DiskRequest) -> IoOutcome {
        let p_timeout = self.fault_plan.timeout_per_io;
        if p_timeout > 0.0 && self.fault_rng.chance(p_timeout) {
            self.faults.timeouts += 1;
            let io = req.id;
            self.emit(|| SimEvent::IoTimeout { io });
            return IoOutcome::Timeout;
        }
        // End-to-end verification: a read whose extent checksum fails is
        // surfaced as a media error so the policy's existing redirect
        // machinery re-reads the surviving mirror copy; the touched
        // latent extents are classified (repaired-on-read or lost) right
        // here so none can later be returned as clean data. A write that
        // covers a latent extent simply replaces the bad bytes.
        if !self.corrupt[disk].is_empty() && self.corrupt[disk].overlaps(req.offset, req.bytes) {
            match req.kind {
                IoKind::Read => {
                    self.classify_latent_extents(disk, req.offset, req.bytes, false);
                    self.retries.remove(&req.id);
                    let io = req.id;
                    self.emit(|| SimEvent::MediaError { io });
                    return IoOutcome::MediaError;
                }
                IoKind::Write => {
                    let n = self.corrupt[disk].clear_overlapping(req.offset, req.bytes);
                    self.faults.lse_overwritten += n as u64;
                }
            }
        }
        let p_media = self.fault_plan.media_error_per_read;
        if req.kind == IoKind::Read && p_media > 0.0 && self.fault_rng.chance(p_media) {
            self.faults.media_errors += 1;
            self.retries.remove(&req.id);
            let io = req.id;
            self.emit(|| SimEvent::MediaError { io });
            return IoOutcome::MediaError;
        }
        if !self.retries.is_empty() {
            self.retries.remove(&req.id);
        }
        IoOutcome::Ok
    }

    /// Takes every latent extent of `disk` touching `[start, start+len)`
    /// and classifies its fate: repaired from a clean surviving mirror
    /// copy, or lost (partner degraded, absent, or corrupt at the same
    /// extent — in which case the partner's copy is classified lost too,
    /// so no extent is ever counted twice or silently dropped). Returns
    /// true if at least one extent was repaired.
    fn classify_latent_extents(
        &mut self,
        disk: DiskId,
        start: u64,
        len: u64,
        by_scrub: bool,
    ) -> bool {
        let extents = self.corrupt[disk].take_overlapping(start, len);
        if extents.is_empty() {
            return false;
        }
        let partner = surviving_partner(&self.geometry, disk).filter(|&p| !self.is_degraded(p));
        let mut any_repaired = false;
        for (offset, bytes) in extents {
            match partner {
                Some(p) if !self.corrupt[p].overlaps(offset, bytes) => {
                    if by_scrub {
                        self.faults.lse_repaired_by_scrub += 1;
                        self.emit(|| SimEvent::ScrubRepair {
                            disk,
                            offset,
                            bytes,
                        });
                    } else {
                        self.faults.lse_repaired_on_read += 1;
                    }
                    any_repaired = true;
                }
                Some(p) => {
                    for (po, pb) in self.corrupt[p].take_overlapping(offset, bytes) {
                        self.faults.lse_lost += 1;
                        self.emit(|| SimEvent::ExtentLost {
                            disk: p,
                            offset: po,
                            bytes: pb,
                        });
                    }
                    self.faults.lse_lost += 1;
                    self.emit(|| SimEvent::ExtentLost {
                        disk,
                        offset,
                        bytes,
                    });
                }
                None => {
                    self.faults.lse_lost += 1;
                    self.emit(|| SimEvent::ExtentLost {
                        disk,
                        offset,
                        bytes,
                    });
                }
            }
        }
        any_repaired
    }

    /// Books a timeout for request `id`: returns the backoff before the
    /// next retry (exponential, doubling per attempt), or `None` when the
    /// retry budget is exhausted and the request is counted lost.
    pub fn note_timeout(&mut self, id: u64) -> Option<Duration> {
        let attempts = self.retries.entry(id).or_insert(0);
        if *attempts >= self.fault_plan.max_retries {
            self.retries.remove(&id);
            self.faults.io_lost += 1;
            self.emit(|| SimEvent::IoLost { io: id });
            return None;
        }
        *attempts += 1;
        self.faults.retries += 1;
        let backoff = self.fault_plan.retry_backoff * 2u64.pow(*attempts - 1);
        self.emit(|| SimEvent::IoRetry {
            io: id,
            backoff_us: backoff.as_micros(),
        });
        Some(backoff)
    }

    /// Records that a user read was redirected to a surviving copy.
    pub fn note_redirect(&mut self) {
        self.faults.reads_redirected += 1;
        if self.faults.time_to_first_redirect.is_none() {
            if let Some(t0) = self.first_failure_at {
                self.faults.time_to_first_redirect = Some(self.now.since(t0));
            }
        }
    }

    /// Closes the degraded-time window at `now` (called by the driver
    /// when the run ends with a rebuild still outstanding).
    pub fn finalize_faults(&mut self) {
        if let Some(since) = self.degraded_since.take() {
            self.faults.degraded_time += self.now.since(since);
        }
        if !self.degraded.is_empty() {
            // Keep the window open for any further accounting.
            self.degraded_since = Some(self.now);
        }
        self.faults.lse_latent_at_end = self.corrupt.iter().map(|m| m.len() as u64).sum();
    }

    // ------------------------------------------------------------------
    // Latent sector errors, shocks, and the scrub engine
    // ------------------------------------------------------------------

    /// A pre-sampled LSE candidate fired on `disk`. Candidates are drawn
    /// at the *maximum* configured rate; Poisson thinning accepts each
    /// with probability `rate(power state) / max rate`, so a spun-down
    /// disk accrues latent errors at `lse_rate_standby` and a spinning
    /// one at `lse_rate_active` without the schedule depending on the
    /// (workload-driven) power trajectory.
    pub fn on_lse_candidate(&mut self, disk: DiskId) {
        let max = self.fault_plan.max_lse_rate();
        if max <= 0.0 || disk >= self.corrupt.len() {
            return;
        }
        let rate = if self.disks[disk].power_state().is_spun_up() {
            self.fault_plan.lse_rate_active
        } else {
            self.fault_plan.lse_rate_standby
        };
        if !self.lse_rng.chance((rate / max).clamp(0.0, 1.0)) {
            return;
        }
        let extent = self.fault_plan.lse_extent;
        let region = self.geometry.data_region();
        let Some(offset) = Self::draw_offset(&mut self.lse_rng, region, extent) else {
            return;
        };
        self.apply_corruption(disk, offset);
    }

    /// Draws an aligned corruption offset inside `[0, region)`, or `None`
    /// when the region cannot hold one extent.
    fn draw_offset(rng: &mut SimRng, region: u64, extent: u64) -> Option<u64> {
        if extent == 0 || region < extent {
            return None;
        }
        let slots = (region - extent) / LSE_ALIGN + 1;
        Some(rng.below(slots) * LSE_ALIGN)
    }

    /// Marks one extent of `disk` latent at `offset`. Skipped silently
    /// when the slot is degraded (the replacement holds no data yet) or
    /// the extent overlaps one already latent — only freshly recorded
    /// extents enter the injected count, so conservation is exact.
    pub fn apply_corruption(&mut self, disk: DiskId, offset: u64) {
        if disk >= self.corrupt.len() || self.is_degraded(disk) {
            return;
        }
        let bytes = self.fault_plan.lse_extent;
        let region = self.geometry.data_region();
        if bytes == 0 || region < bytes {
            return;
        }
        let offset = offset.min(region - bytes);
        if self.corrupt[disk].insert(offset, bytes) {
            self.faults.lse_injected += 1;
            self.emit(|| SimEvent::CorruptionInjected {
                disk,
                offset,
                bytes,
            });
        }
    }

    /// Expands one enclosure shock into per-disk effects. A shock picks a
    /// random enclosure (a contiguous group of `shock_enclosure` mirrored
    /// slots), and each member, after a small independent jitter inside
    /// the correlation window, either fails outright (probability
    /// `shock_fail_prob`) or takes a latent corrupt extent. The caller
    /// (the driver) schedules the returned effects — failing a disk can
    /// cascade into recovery planning, which is the driver's domain.
    pub fn expand_shock(&mut self) -> Vec<(Duration, ShockEffect)> {
        let fail_prob = self.fault_plan.shock_fail_prob;
        let window_us = self.fault_plan.correlation_window.as_micros().max(1);
        let extent = self.fault_plan.lse_extent;
        let region = self.geometry.data_region();
        let mirrored = 2 * self.geometry.pairs();
        if mirrored == 0 {
            return Vec::new();
        }
        let enclosure = self.fault_plan.shock_enclosure.clamp(1, mirrored);
        let enclosures = mirrored.div_ceil(enclosure);
        let base = self.shock_rng.below(enclosures as u64) as usize * enclosure;
        let members = base..(base + enclosure).min(mirrored);
        let disks = members.len();
        self.faults.shocks_injected += 1;
        let enclosure_base = base;
        self.emit(|| SimEvent::ShockInjected {
            enclosure_base,
            disks,
        });
        let mut effects = Vec::with_capacity(disks);
        for d in members {
            let jitter = Duration::from_micros(self.shock_rng.below(window_us));
            if self.shock_rng.chance(fail_prob) {
                effects.push((jitter, ShockEffect::Fail(d)));
            } else if let Some(off) = Self::draw_offset(&mut self.shock_rng, region, extent) {
                effects.push((jitter, ShockEffect::Corrupt(d, off)));
            }
        }
        effects
    }

    /// One scrub scheduling slot: for every mirrored disk that is spun
    /// up, not parked or parking, not degraded, and has no scrub chunk in
    /// flight, issues the next sequential background verify read. The
    /// engine is power-aware by construction — it piggybacks on disks the
    /// workload already keeps spinning and never spins one up (or cancels
    /// a pending park) just to scrub, so RoLo-E's standby legs stay in
    /// standby.
    pub fn on_scrub_tick(&mut self) {
        if !self.scrub_enabled {
            return;
        }
        let region = self.geometry.data_region();
        if region == 0 {
            return;
        }
        let mirrored = (2 * self.geometry.pairs()).min(self.disks.len());
        for d in 0..mirrored {
            if self.scrub_state[d].inflight || self.is_degraded(d) {
                continue;
            }
            if !self.disks[d].power_state().is_spun_up() || self.disks[d].is_park_pending() {
                continue;
            }
            let (offset, bytes, first, pass) = {
                let st = &mut self.scrub_state[d];
                let offset = st.cursor;
                let bytes = self.scrub_chunk.min(region - offset);
                if bytes == 0 {
                    st.cursor = 0;
                    continue;
                }
                st.inflight = true;
                let first = !st.started;
                st.started = true;
                (offset, bytes, first, st.pass)
            };
            if first {
                self.emit(|| SimEvent::ScrubStart { disk: d, pass });
            }
            let id = self.alloc_io_id();
            self.scrub_ios
                .insert(id, (d, ScrubPhase::Verify, offset, bytes));
            self.span_scrub_begin(d);
            self.submit_with_id(d, id, IoKind::Read, offset, bytes, Priority::Background);
        }
    }

    /// True if request `id` belongs to the scrub engine. The driver
    /// checks this before classifying a completion as policy I/O.
    #[inline]
    pub fn is_scrub_io(&self, id: u64) -> bool {
        !self.scrub_ios.is_empty() && self.scrub_ios.contains_key(&id)
    }

    /// Completes one scrub transfer. A verify read checks the chunk
    /// against the integrity map and, when a latent extent was repaired
    /// from its mirror copy, issues a background repair write over the
    /// same range before the next chunk; otherwise the cursor simply
    /// advances. Completing the last chunk of the region closes the pass.
    pub fn on_scrub_io(&mut self, req: &DiskRequest) {
        let Some((disk, phase, offset, bytes)) = self.scrub_ios.remove(&req.id) else {
            return;
        };
        match phase {
            ScrubPhase::Repair => {
                self.scrub_state[disk].inflight = false;
                self.span_scrub_end(disk);
            }
            ScrubPhase::Verify => {
                self.faults.scrub_chunks += 1;
                self.faults.scrub_bytes += bytes;
                let repaired = !self.corrupt[disk].is_empty()
                    && self.classify_latent_extents(disk, offset, bytes, true);
                let region = self.geometry.data_region();
                let completed = {
                    let st = &mut self.scrub_state[disk];
                    st.pass_bytes += bytes;
                    st.cursor += bytes;
                    if st.cursor >= region {
                        let done = (st.pass, st.pass_bytes);
                        st.cursor = 0;
                        st.pass += 1;
                        st.pass_bytes = 0;
                        st.started = false;
                        st.last_pass_at = Some(self.now);
                        Some(done)
                    } else {
                        None
                    }
                };
                if let Some((pass, pass_bytes)) = completed {
                    self.faults.scrub_passes += 1;
                    self.emit(|| SimEvent::ScrubComplete {
                        disk,
                        pass,
                        bytes: pass_bytes,
                    });
                }
                if repaired {
                    let id = self.alloc_io_id();
                    self.scrub_ios
                        .insert(id, (disk, ScrubPhase::Repair, offset, bytes));
                    self.submit_with_id(
                        disk,
                        id,
                        IoKind::Write,
                        offset,
                        bytes,
                        Priority::Background,
                    );
                } else {
                    self.scrub_state[disk].inflight = false;
                    self.span_scrub_end(disk);
                }
            }
        }
    }

    /// Number of completed scrub passes over `disk`.
    pub fn scrub_pass(&self, disk: DiskId) -> u64 {
        self.scrub_state.get(disk).map_or(0, |st| st.pass)
    }

    /// Time since `disk`'s last completed scrub pass, or `None` if no
    /// pass has completed yet — the disk's *scrub age*, the window in
    /// which a latent error could still be hiding.
    pub fn scrub_age(&self, disk: DiskId) -> Option<Duration> {
        self.scrub_state
            .get(disk)
            .and_then(|st| st.last_pass_at)
            .map(|t| self.now.since(t))
    }

    /// Number of latent (still undetected) corrupt extents on `disk`.
    pub fn latent_extents(&self, disk: DiskId) -> usize {
        self.corrupt.get(disk).map_or(0, |m| m.len())
    }

    // ------------------------------------------------------------------
    // Rebuild engine
    // ------------------------------------------------------------------

    /// Starts rebuilding slot `plan.failed` onto its replacement disk:
    /// `total_bytes` are copied in [`REBUILD_CHUNK`] chunks, read
    /// round-robin from the plan's participant disks and written to the
    /// replacement at background priority, so foreground I/O naturally
    /// throttles the rebuild via the idle-slot guard. A zero-byte rebuild
    /// (nothing worth copying, e.g. a log disk holding only obsolete
    /// second copies) completes immediately. Idempotent per slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not degraded.
    pub fn begin_rebuild(&mut self, plan: &RecoveryPlan, total_bytes: u64) {
        let slot = plan.failed;
        assert!(self.is_degraded(slot), "rebuild target {slot} not degraded");
        if self.rebuilds.contains_key(&slot) {
            return;
        }
        self.emit(|| SimEvent::RebuildStarted {
            slot,
            bytes: total_bytes,
        });
        if total_bytes == 0 {
            self.span_rebuild_begin(slot, &[slot]);
            self.complete_rebuild(slot, self.degraded[&slot]);
            return;
        }
        let mut sources: Vec<DiskId> = plan
            .wake
            .iter()
            .chain(plan.silent.iter())
            .copied()
            .filter(|&d| d != slot && !self.is_degraded(d))
            .collect();
        if sources.is_empty() {
            let partner =
                surviving_partner(&self.geometry, slot).expect("rebuild with no data source");
            sources.push(partner);
        }
        for &d in &sources {
            self.spin_up(d);
        }
        // The rebuild's copy loop occupies the replacement and every
        // source disk; foreground legs delayed behind its transfers on
        // any of them link to this span.
        let mut covered = sources.clone();
        covered.push(slot);
        self.span_rebuild_begin(slot, &covered);
        let started = self.degraded[&slot];
        self.rebuilds.insert(
            slot,
            RebuildState {
                sources,
                next_source: 0,
                total: total_bytes,
                issued: 0,
                written: 0,
                started,
                inflight: IoMap::default(),
            },
        );
        for _ in 0..REBUILD_WINDOW {
            self.issue_rebuild_read(slot);
        }
    }

    /// True if sub-request `id` belongs to the rebuild engine rather
    /// than the policy.
    #[inline]
    pub fn is_rebuild_io(&self, id: u64) -> bool {
        !self.rebuild_ios.is_empty() && self.rebuild_ios.contains_key(&id)
    }

    /// Advances the rebuild owning the completed request: a finished
    /// chunk read becomes a write to the replacement; a finished write
    /// pulls the next chunk or completes the rebuild. Completed slots are
    /// queued for [`SimCtx::take_finished_rebuilds`].
    pub fn on_rebuild_io(&mut self, req: &DiskRequest) {
        let slot = self
            .rebuild_ios
            .remove(&req.id)
            .expect("completion for unregistered rebuild io");
        let st = self.rebuilds.get_mut(&slot).expect("rebuild state present");
        let (phase, offset, bytes) = st.inflight.remove(&req.id).expect("rebuild io in flight");
        match phase {
            RebuildPhase::Read => {
                let id = self.alloc_io_id();
                let st = self.rebuilds.get_mut(&slot).expect("rebuild state present");
                st.inflight.insert(id, (RebuildPhase::Write, offset, bytes));
                self.rebuild_ios.insert(id, slot);
                self.submit_with_id(slot, id, IoKind::Write, offset, bytes, Priority::Background);
            }
            RebuildPhase::Write => {
                st.written += bytes;
                self.faults.rebuild_bytes += bytes;
                let done = st.written >= st.total && st.inflight.is_empty();
                let started = st.started;
                if done {
                    self.complete_rebuild(slot, started);
                } else {
                    self.issue_rebuild_read(slot);
                }
            }
        }
    }

    /// Drains the slots whose rebuild completed since the last call, so
    /// the driver can notify the policy.
    pub fn take_finished_rebuilds(&mut self) -> Vec<DiskId> {
        std::mem::take(&mut self.finished_rebuilds)
    }

    fn complete_rebuild(&mut self, slot: DiskId, started: SimTime) {
        self.span_rebuild_end(slot);
        self.rebuilds.remove(&slot);
        self.degraded.remove(&slot);
        self.faults.rebuilds_completed += 1;
        self.faults.rebuild_durations.push(self.now.since(started));
        let duration_us = self.now.since(started).as_micros();
        self.emit(|| SimEvent::RebuildCompleted { slot, duration_us });
        if self.degraded.is_empty() {
            if let Some(since) = self.degraded_since.take() {
                self.faults.degraded_time += self.now.since(since);
            }
        }
        self.finished_rebuilds.push(slot);
    }

    /// Issues the next chunk read of `slot`'s rebuild, if any remains.
    fn issue_rebuild_read(&mut self, slot: DiskId) {
        let Some(st) = self.rebuilds.get_mut(&slot) else {
            return;
        };
        if st.issued >= st.total || st.sources.is_empty() {
            return;
        }
        let offset = st.issued;
        let bytes = REBUILD_CHUNK.min(st.total - st.issued);
        st.issued += bytes;
        let source = st.sources[st.next_source % st.sources.len()];
        st.next_source += 1;
        let id = self.alloc_io_id();
        let st = self.rebuilds.get_mut(&slot).expect("rebuild state present");
        st.inflight.insert(id, (RebuildPhase::Read, offset, bytes));
        self.rebuild_ios.insert(id, slot);
        self.submit_with_id(
            source,
            id,
            IoKind::Read,
            offset,
            bytes,
            Priority::Background,
        );
    }

    /// Re-issues an in-flight rebuild read aborted by a source failure on
    /// the next surviving source (the dead source has already been
    /// removed from the rebuild's source list).
    fn reissue_rebuild_read(&mut self, slot: DiskId, id: u64) {
        let st = self.rebuilds.get_mut(&slot).expect("rebuild state present");
        let (phase, offset, bytes) = st.inflight[&id];
        debug_assert_eq!(
            phase,
            RebuildPhase::Read,
            "rebuild writes target the degraded slot, which cannot fail again"
        );
        if st.sources.is_empty() {
            // No surviving source: the pair partner must still be alive
            // (double faults are suppressed), so fall back to it.
            let partner =
                surviving_partner(&self.geometry, slot).expect("rebuild with no data source");
            st.sources.push(partner);
        }
        let source = st.sources[st.next_source % st.sources.len()];
        st.next_source += 1;
        self.submit_with_id(
            source,
            id,
            IoKind::Read,
            offset,
            bytes,
            Priority::Background,
        );
    }
}

/// Which disk wake a driver event corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeKind {
    /// An I/O completion.
    Io,
    /// A spin-up completion.
    SpinUp,
    /// A spin-down completion.
    SpinDown,
    /// A deferred-background retry.
    BgRetry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn ctx() -> SimCtx {
        let cfg = SimConfig::paper_default(Scheme::Raid10, 2);
        let geo = cfg.geometry().unwrap();
        let standby = vec![false; cfg.disk_count()];
        SimCtx::new(&cfg, geo, &standby)
    }

    #[test]
    fn submit_produces_wake() {
        let mut c = ctx();
        c.submit(0, IoKind::Write, 0, 4096, Priority::Foreground);
        let wakes = c.take_wakes();
        assert_eq!(wakes.len(), 1);
        assert!(c.take_wakes().is_empty(), "take_wakes drains");
    }

    #[test]
    fn user_tracking_counts_subs() {
        let mut c = ctx();
        let slot = c.register_user(7, ReqKind::Write, SimTime::ZERO, 2);
        c.now = SimTime::from_millis(5);
        assert!(c.user_sub_done(slot).is_none());
        let done = c.user_sub_done(slot).unwrap();
        assert_eq!(done.kind, ReqKind::Write);
        assert_eq!(done.response, Duration::from_millis(5));
        assert_eq!(c.responses.count(), 1);
        assert_eq!(c.write_responses.count(), 1);
        assert_eq!(c.read_responses.count(), 0);
        assert_eq!(c.outstanding_users(), 0);
    }

    #[test]
    fn add_user_subs_extends() {
        let mut c = ctx();
        let slot = c.register_user(1, ReqKind::Read, SimTime::ZERO, 1);
        c.add_user_subs(slot, 1);
        assert!(c.user_sub_done(slot).is_none());
        assert!(c.user_sub_done(slot).is_some());
    }

    #[test]
    #[should_panic(expected = "unknown user request slot")]
    fn stale_slot_rejected() {
        let mut c = ctx();
        let slot = c.register_user(1, ReqKind::Read, SimTime::ZERO, 1);
        assert!(c.user_sub_done(slot).is_some());
        // A second registration may recycle the slab index; the stale
        // handle's generation keeps it from aliasing the new request.
        let _other = c.register_user(2, ReqKind::Read, SimTime::ZERO, 1);
        c.user_sub_done(slot);
    }

    #[test]
    fn standby_mask_respected() {
        let cfg = SimConfig::paper_default(Scheme::Raid10, 2);
        let geo = cfg.geometry().unwrap();
        let standby = vec![false, false, true, true];
        let c = SimCtx::new(&cfg, geo, &standby);
        assert_eq!(c.disk(0).power_state(), PowerState::Idle);
        assert_eq!(c.disk(2).power_state(), PowerState::Standby);
        assert_eq!(c.spin_cycles(), 0, "initial standby costs no spin cycle");
    }

    #[test]
    fn energy_accumulates() {
        let mut c = ctx();
        c.now = SimTime::from_secs(10);
        let e = c.total_energy();
        // 4 idle disks × 10.2 W × 10 s.
        assert!((e - 4.0 * 10.2 * 10.0).abs() < 1e-6, "{e}");
        assert_eq!(c.energy_by_disk().len(), 4);
    }

    #[test]
    fn read_over_latent_extent_repairs_from_partner() {
        let mut c = ctx();
        c.apply_corruption(0, 4096);
        assert_eq!(c.faults.lse_injected, 1);
        assert_eq!(c.latent_extents(0), 1);
        let req = DiskRequest::new(77, IoKind::Read, 0, 64 * 1024, Priority::Foreground);
        assert_eq!(c.classify_completion(0, &req), IoOutcome::MediaError);
        assert_eq!(c.faults.lse_repaired_on_read, 1);
        assert_eq!(c.latent_extents(0), 0);
        c.finalize_faults();
        assert!(c.faults.lse_conserved(), "{:?}", c.faults);
    }

    #[test]
    fn latent_extents_on_both_copies_are_lost() {
        let mut c = ctx();
        c.apply_corruption(0, 0);
        c.apply_corruption(2, 0); // pair 0's mirror
        let req = DiskRequest::new(1, IoKind::Read, 0, 8192, Priority::Foreground);
        assert_eq!(c.classify_completion(0, &req), IoOutcome::MediaError);
        assert_eq!(c.faults.lse_lost, 2, "both copies of the extent are gone");
        assert_eq!(c.latent_extents(0) + c.latent_extents(2), 0);
        c.finalize_faults();
        assert!(c.faults.lse_conserved(), "{:?}", c.faults);
    }

    #[test]
    fn write_replaces_latent_extent() {
        let mut c = ctx();
        c.apply_corruption(0, 4096);
        let req = DiskRequest::new(1, IoKind::Write, 0, 64 * 1024, Priority::Foreground);
        assert_eq!(c.classify_completion(0, &req), IoOutcome::Ok);
        assert_eq!(c.faults.lse_overwritten, 1);
        assert_eq!(c.latent_extents(0), 0);
        c.finalize_faults();
        assert!(c.faults.lse_conserved(), "{:?}", c.faults);
    }

    #[test]
    fn disk_failure_dooms_partner_latent_extents() {
        let mut c = ctx();
        c.apply_corruption(0, 0); // will become the sole copy
        c.apply_corruption(2, 4096); // dies with the disk
        c.fail_disk(2).expect("first failure injects");
        assert_eq!(
            c.faults.lse_overwritten, 1,
            "dead disk's extent is rebuilt over"
        );
        assert_eq!(
            c.faults.lse_lost, 1,
            "surviving copy's latent extent lost its mirror"
        );
        c.finalize_faults();
        assert!(c.faults.lse_conserved(), "{:?}", c.faults);
    }

    #[test]
    fn corruption_skips_degraded_slots() {
        let mut c = ctx();
        c.fail_disk(0).expect("first failure injects");
        c.apply_corruption(0, 0);
        assert_eq!(c.faults.lse_injected, 0, "replacement holds no data yet");
    }

    #[test]
    fn scrub_tick_skips_spun_down_disks() {
        let mut cfg = SimConfig::paper_default(Scheme::Raid10, 2);
        cfg.scrub_enabled = true;
        let geo = cfg.geometry().unwrap();
        let standby = vec![false, false, true, true];
        let mut c = SimCtx::new(&cfg, geo, &standby);
        c.on_scrub_tick();
        let targets: Vec<DiskId> = c.take_wakes().into_iter().map(|(d, _)| d).collect();
        assert!(!targets.is_empty(), "spun-up disks are scrubbed");
        assert!(
            targets.iter().all(|&d| d < 2),
            "scrub must never touch a spun-down disk: {targets:?}"
        );
    }

    #[test]
    fn scrub_pass_repairs_latent_extents_and_records_age() {
        let mut cfg = SimConfig::paper_default(Scheme::Raid10, 2);
        cfg.scrub_enabled = true;
        cfg.scrub_chunk = cfg.data_region(); // whole pass in one chunk
        let geo = cfg.geometry().unwrap();
        let standby = vec![false; cfg.disk_count()];
        let mut c = SimCtx::new(&cfg, geo, &standby);
        c.apply_corruption(0, 0);
        c.on_scrub_tick();
        // Drive every wake to completion, feeding scrub completions back.
        for _ in 0..64 {
            let mut wakes = c.take_wakes();
            if wakes.is_empty() {
                break;
            }
            wakes.sort_by_key(|(_, w)| w.due());
            for (d, w) in wakes {
                c.now = w.due();
                match w {
                    DiskWake::Io(_) => {
                        let req = c.deliver_wake(d, WakeKind::Io).expect("io wake");
                        if c.is_scrub_io(req.id) {
                            c.on_scrub_io(&req);
                        }
                    }
                    DiskWake::SpinUp(_) => {
                        c.deliver_wake(d, WakeKind::SpinUp);
                    }
                    DiskWake::SpinDown(_) => {
                        c.deliver_wake(d, WakeKind::SpinDown);
                    }
                    DiskWake::BgRetry(_) => {
                        c.deliver_wake(d, WakeKind::BgRetry);
                    }
                }
            }
        }
        assert_eq!(c.faults.lse_repaired_by_scrub, 1);
        assert_eq!(c.latent_extents(0), 0);
        assert_eq!(c.scrub_pass(0), 1, "disk 0 completed one pass");
        assert!(c.scrub_age(0).is_some());
        assert_eq!(c.faults.scrub_passes, 4, "every disk completed a pass");
        c.finalize_faults();
        assert!(c.faults.lse_conserved(), "{:?}", c.faults);
    }

    proptest::proptest! {
        /// Drain-in-place regression: for any interleaving of submits
        /// and timers, `drain_wakes_into`/`drain_timers_into` must hand
        /// the driver exactly the sequences `take_wakes`/`take_timers`
        /// did before the rewrite — same elements, same order.
        #[test]
        fn prop_drain_into_matches_take(
            ops in proptest::collection::vec((0usize..4, 0u64..3, 1u64..5000), 1..40),
        ) {
            let mut a = ctx();
            let mut b = ctx();
            let mut wakes = Vec::new();
            let mut timers = Vec::new();
            for (i, &(disk4, kind, arg)) in ops.iter().enumerate() {
                for c in [&mut a, &mut b] {
                    let disk = disk4 % c.disk_count();
                    match kind {
                        0 => {
                            c.submit(disk, IoKind::Write, arg * 4096, 4096, Priority::Foreground);
                        }
                        1 => {
                            c.submit(disk, IoKind::Read, arg * 4096, 4096, Priority::Background);
                        }
                        _ => c.set_timer(Duration::from_micros(arg), i as u64),
                    }
                }
                proptest::prop_assert_eq!(a.has_pending(), b.has_pending());
                a.drain_wakes_into(&mut wakes);
                a.drain_timers_into(&mut timers);
                let tw = b.take_wakes();
                let tt = b.take_timers();
                proptest::prop_assert_eq!(wakes.len(), tw.len());
                for (x, y) in wakes.iter().zip(tw.iter()) {
                    proptest::prop_assert_eq!(x.0, y.0);
                    proptest::prop_assert_eq!(x.1.due(), y.1.due());
                }
                proptest::prop_assert_eq!(&timers, &tt);
                wakes.clear();
                timers.clear();
            }
            proptest::prop_assert!(!a.has_pending() && !b.has_pending());
        }
    }
}
