//! Shared simulation context handed to controller policies.
//!
//! [`SimCtx`] owns the disks, user-request bookkeeping and metric sinks.
//! Policies call [`SimCtx::submit`]/[`SimCtx::spin_down`]/… and the driver
//! drains the accumulated disk wakes and timers into its event queue after
//! every callback, so policies never touch the queue directly.

use crate::config::SimConfig;
use rolo_disk::{Disk, DiskId, DiskRequest, DiskWake, IoKind, Priority};
use rolo_disk::{DiskEnergyReport, PowerState};
use rolo_metrics::{IntervalTracker, ResponseStats, Timeline};
use rolo_raid::ArrayGeometry;
use rolo_sim::{Duration, SimRng, SimTime};
use rolo_trace::ReqKind;
use std::collections::HashMap;

/// Outcome of the final sub-request of a user request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedUser {
    /// Read or write.
    pub kind: ReqKind,
    /// Measured response time.
    pub response: Duration,
}

#[derive(Debug)]
struct Outstanding {
    kind: ReqKind,
    arrival: SimTime,
    subs_left: u32,
}

/// Shared context: disks, request tracking, metric sinks.
#[derive(Debug)]
pub struct SimCtx {
    /// Current simulated time (set by the driver before each callback).
    pub now: SimTime,
    geometry: ArrayGeometry,
    disks: Vec<Disk>,
    pending_wakes: Vec<(DiskId, DiskWake)>,
    pending_timers: Vec<(SimTime, u64)>,
    outstanding: HashMap<u64, Outstanding>,
    next_io_id: u64,
    /// Response-time statistics over all user requests.
    pub responses: ResponseStats,
    /// Response-time statistics over reads only.
    pub read_responses: ResponseStats,
    /// Response-time statistics over writes only.
    pub write_responses: ResponseStats,
    /// Logging/destaging phase tracker.
    pub intervals: IntervalTracker,
    /// Occupied logging capacity over time (bytes).
    pub log_timeline: Timeline,
    /// Sampled aggregate power draw over time (watts).
    pub power_timeline: Timeline,
}

impl SimCtx {
    /// Builds the context: one disk per [`SimConfig::disk_count`], each
    /// with a forked deterministic RNG stream. `standby` selects the
    /// disks that begin spun down.
    pub fn new(cfg: &SimConfig, geometry: ArrayGeometry, standby: &[bool]) -> Self {
        assert_eq!(standby.len(), cfg.disk_count(), "standby mask length");
        let rng = SimRng::seed_from(cfg.seed);
        let disks = (0..cfg.disk_count())
            .map(|id| {
                let state = if standby[id] {
                    PowerState::Standby
                } else {
                    PowerState::Idle
                };
                let mut disk = Disk::with_initial_state(
                    id,
                    cfg.disk.clone(),
                    rng.fork(&format!("disk-{id}")),
                    state,
                );
                disk.set_bg_idle_guard(cfg.bg_idle_guard);
                disk.set_scheduler(cfg.scheduler);
                disk
            })
            .collect();
        SimCtx {
            now: SimTime::ZERO,
            geometry,
            disks,
            pending_wakes: Vec::new(),
            pending_timers: Vec::new(),
            outstanding: HashMap::new(),
            next_io_id: 1,
            responses: ResponseStats::new(),
            read_responses: ResponseStats::new(),
            write_responses: ResponseStats::new(),
            intervals: IntervalTracker::new(),
            log_timeline: Timeline::new(Duration::from_secs(60)),
            power_timeline: Timeline::new(Duration::from_secs(30)),
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> &ArrayGeometry {
        &self.geometry
    }

    /// Immutable view of a disk.
    pub fn disk(&self, id: DiskId) -> &Disk {
        &self.disks[id]
    }

    /// All disks.
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    /// Number of disks.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Allocates a fresh sub-request id for policy bookkeeping.
    pub fn alloc_io_id(&mut self) -> u64 {
        let id = self.next_io_id;
        self.next_io_id += 1;
        id
    }

    /// Submits a sub-request to `disk`, returning its id.
    pub fn submit(
        &mut self,
        disk: DiskId,
        kind: IoKind,
        offset: u64,
        bytes: u64,
        priority: Priority,
    ) -> u64 {
        let id = self.alloc_io_id();
        self.submit_with_id(disk, id, kind, offset, bytes, priority);
        id
    }

    /// Submits a sub-request with a caller-chosen id.
    pub fn submit_with_id(
        &mut self,
        disk: DiskId,
        id: u64,
        kind: IoKind,
        offset: u64,
        bytes: u64,
        priority: Priority,
    ) {
        let req = DiskRequest::new(id, kind, offset, bytes, priority);
        let now = self.now;
        if let Some(w) = self.disks[disk].submit(req, now) {
            self.pending_wakes.push((disk, w));
        }
    }

    /// Asks `disk` to spin down as soon as it drains (park semantics:
    /// immediate if idle, deferred to the last completion otherwise; any
    /// new submission cancels it).
    pub fn spin_down(&mut self, disk: DiskId) {
        let now = self.now;
        if let Some(w) = self.disks[disk].park_when_idle(now) {
            self.pending_wakes.push((disk, w));
        }
    }

    /// Spins `disk` up if it is in standby.
    pub fn spin_up(&mut self, disk: DiskId) {
        let now = self.now;
        if let Some(w) = self.disks[disk].spin_up(now) {
            self.pending_wakes.push((disk, w));
        }
    }

    /// Schedules a policy timer `delay` from now carrying `token`.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.pending_timers.push((self.now + delay, token));
    }

    /// Driver hook: drains wakes accumulated since the last call.
    pub fn take_wakes(&mut self) -> Vec<(DiskId, DiskWake)> {
        std::mem::take(&mut self.pending_wakes)
    }

    /// Driver hook: drains pending timers.
    pub fn take_timers(&mut self) -> Vec<(SimTime, u64)> {
        std::mem::take(&mut self.pending_timers)
    }

    /// Driver hook: delivers a disk wake back to the disk, pushing any
    /// follow-up wake. For I/O completions, returns the finished request.
    pub fn deliver_wake(&mut self, disk: DiskId, wake_kind: WakeKind) -> Option<DiskRequest> {
        let now = self.now;
        match wake_kind {
            WakeKind::Io => {
                let out = self.disks[disk].on_io_complete(now);
                if let Some(w) = out.next {
                    self.pending_wakes.push((disk, w));
                }
                Some(out.completed)
            }
            WakeKind::SpinUp => {
                if let Some(w) = self.disks[disk].on_spin_up_complete(now) {
                    self.pending_wakes.push((disk, w));
                }
                None
            }
            WakeKind::SpinDown => {
                if let Some(w) = self.disks[disk].on_spin_down_complete(now) {
                    self.pending_wakes.push((disk, w));
                }
                None
            }
            WakeKind::BgRetry => {
                if let Some(w) = self.disks[disk].on_bg_retry(now) {
                    self.pending_wakes.push((disk, w));
                }
                None
            }
        }
    }

    /// Registers a user request with `subs` outstanding sub-requests.
    ///
    /// # Panics
    ///
    /// Panics if `subs` is zero or the id is already registered.
    pub fn register_user(&mut self, user_id: u64, kind: ReqKind, arrival: SimTime, subs: u32) {
        assert!(subs > 0, "user request with zero sub-requests");
        let prev = self.outstanding.insert(
            user_id,
            Outstanding {
                kind,
                arrival,
                subs_left: subs,
            },
        );
        assert!(prev.is_none(), "duplicate user request id {user_id}");
    }

    /// Adds more pending sub-requests to an in-flight user request.
    ///
    /// # Panics
    ///
    /// Panics if the request is unknown.
    pub fn add_user_subs(&mut self, user_id: u64, subs: u32) {
        self.outstanding
            .get_mut(&user_id)
            .unwrap_or_else(|| panic!("unknown user request {user_id}"))
            .subs_left += subs;
    }

    /// Marks one sub-request of `user_id` complete. When the last one
    /// lands, records the response time and returns the completion.
    ///
    /// # Panics
    ///
    /// Panics if the request is unknown.
    pub fn user_sub_done(&mut self, user_id: u64) -> Option<CompletedUser> {
        let o = self
            .outstanding
            .get_mut(&user_id)
            .unwrap_or_else(|| panic!("unknown user request {user_id}"));
        o.subs_left -= 1;
        if o.subs_left > 0 {
            return None;
        }
        let o = self.outstanding.remove(&user_id).expect("present");
        let response = self.now.since(o.arrival);
        self.responses.record(response);
        match o.kind {
            ReqKind::Read => self.read_responses.record(response),
            ReqKind::Write => self.write_responses.record(response),
        }
        Some(CompletedUser {
            kind: o.kind,
            response,
        })
    }

    /// Number of user requests still in flight.
    pub fn outstanding_users(&self) -> usize {
        self.outstanding.len()
    }

    /// Energy reports for every disk as of `now`.
    pub fn energy_by_disk(&self) -> Vec<DiskEnergyReport> {
        self.disks.iter().map(|d| d.energy_report(self.now)).collect()
    }

    /// Instantaneous aggregate power draw of the array (W).
    pub fn total_power_w(&self) -> f64 {
        self.disks.iter().map(|d| d.current_power_w()).sum()
    }

    /// Total array energy (J) as of `now`.
    pub fn total_energy(&self) -> f64 {
        self.disks
            .iter()
            .map(|d| d.energy_report(self.now).total_joules)
            .sum()
    }

    /// Total spin cycles (spin-ups) across the array so far.
    pub fn spin_cycles(&self) -> u64 {
        self.disks
            .iter()
            .map(|d| d.energy_report(self.now).spin_ups)
            .sum()
    }
}

/// Which disk wake a driver event corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeKind {
    /// An I/O completion.
    Io,
    /// A spin-up completion.
    SpinUp,
    /// A spin-down completion.
    SpinDown,
    /// A deferred-background retry.
    BgRetry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn ctx() -> SimCtx {
        let cfg = SimConfig::paper_default(Scheme::Raid10, 2);
        let geo = cfg.geometry().unwrap();
        let standby = vec![false; cfg.disk_count()];
        SimCtx::new(&cfg, geo, &standby)
    }

    #[test]
    fn submit_produces_wake() {
        let mut c = ctx();
        c.submit(0, IoKind::Write, 0, 4096, Priority::Foreground);
        let wakes = c.take_wakes();
        assert_eq!(wakes.len(), 1);
        assert!(c.take_wakes().is_empty(), "take_wakes drains");
    }

    #[test]
    fn user_tracking_counts_subs() {
        let mut c = ctx();
        c.register_user(7, ReqKind::Write, SimTime::ZERO, 2);
        c.now = SimTime::from_millis(5);
        assert!(c.user_sub_done(7).is_none());
        let done = c.user_sub_done(7).unwrap();
        assert_eq!(done.kind, ReqKind::Write);
        assert_eq!(done.response, Duration::from_millis(5));
        assert_eq!(c.responses.count(), 1);
        assert_eq!(c.write_responses.count(), 1);
        assert_eq!(c.read_responses.count(), 0);
        assert_eq!(c.outstanding_users(), 0);
    }

    #[test]
    fn add_user_subs_extends() {
        let mut c = ctx();
        c.register_user(1, ReqKind::Read, SimTime::ZERO, 1);
        c.add_user_subs(1, 1);
        assert!(c.user_sub_done(1).is_none());
        assert!(c.user_sub_done(1).is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate user request id")]
    fn duplicate_user_rejected() {
        let mut c = ctx();
        c.register_user(1, ReqKind::Read, SimTime::ZERO, 1);
        c.register_user(1, ReqKind::Read, SimTime::ZERO, 1);
    }

    #[test]
    fn standby_mask_respected() {
        let cfg = SimConfig::paper_default(Scheme::Raid10, 2);
        let geo = cfg.geometry().unwrap();
        let standby = vec![false, false, true, true];
        let c = SimCtx::new(&cfg, geo, &standby);
        assert_eq!(c.disk(0).power_state(), PowerState::Idle);
        assert_eq!(c.disk(2).power_state(), PowerState::Standby);
        assert_eq!(c.spin_cycles(), 0, "initial standby costs no spin cycle");
    }

    #[test]
    fn energy_accumulates() {
        let mut c = ctx();
        c.now = SimTime::from_secs(10);
        let e = c.total_energy();
        // 4 idle disks × 10.2 W × 10 s.
        assert!((e - 4.0 * 10.2 * 10.0).abs() < 1e-6, "{e}");
        assert_eq!(c.energy_by_disk().len(), 4);
    }
}
