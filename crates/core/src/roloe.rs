//! RoLo-E: the energy-oriented flavor (§III-B3).
//!
//! One mirrored pair at a time serves as the logger *and* read cache;
//! every other disk — primaries included — is spun down. Each write puts
//! two copies in the logging space (one on each disk of the logger
//! pair). Popular read blocks are cached in the logging space; a read
//! miss forcibly spins up the target primary (the expensive event that
//! makes RoLo-E unsuitable for read-heavy workloads, Table V), and the
//! awakened disk spins back down after an idle timeout.
//!
//! When the logging space fills there is no decentralized destaging to
//! fall back on: *all* disks spin up for a centralized destage, after
//! which the log is reclaimed wholesale, the logger rotates to the next
//! pair, and everything else spins back down.

use crate::cache::BlockCache;
use crate::ctx::SimCtx;
use crate::dirty::DirtyMap;
use crate::faults::surviving_partner;
use crate::logspace::LoggerSpace;
use crate::policy::{Policy, PolicyStats};
use crate::recovery::recovery_plan;
use crate::rolo::journal_append;
use crate::segment::{replay_journals, LogManifest, SegmentStore};
use crate::slot::IoSlot;
use rolo_disk::{DiskId, DiskRequest, IoKind, IoOutcome, Priority};
use rolo_metrics::Phase;
use rolo_obs::{LegFlavor, SimEvent};
use rolo_sim::{Duration, IoMap};
use rolo_trace::{ReqKind, TraceRecord};
use std::collections::{BTreeMap, HashSet};

/// Default log-segment size (bytes) until the driver tunes it.
const DEFAULT_SEG_BYTES: u64 = 4 << 20;
/// Default archive-frame TTL (µs) until the driver tunes it.
const DEFAULT_ARCHIVE_TTL_US: u64 = 60_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Logging,
    Destaging,
}

#[derive(Debug, Clone, Copy)]
enum Tag {
    User(u64, IoSlot),
    CacheFill,
    DestageRead { pair: usize, off: u64, len: u64 },
    DestageWrite { pair: usize, len: u64 },
}

#[derive(Debug, Default)]
struct UserMeta {
    marks: Vec<(usize, u64, u64)>,
    clears: Vec<(usize, u64, u64)>,
    /// Journal record ids, flat to keep the write path to one
    /// allocation: `(mark index, journal disk, record id)`. The two
    /// mirrored copies of `marks[i]` commit with one shared LSN when
    /// the request acks.
    appends: Vec<(u32, DiskId, u64)>,
    /// Cache blocks to insert at completion (read misses / fresh writes).
    cache_fill: Vec<u64>,
    /// Charge a background cache-fill write of this many bytes.
    fill_bytes: u64,
}

/// The RoLo-E controller.
#[derive(Debug)]
pub struct RoloEPolicy {
    pairs: usize,
    threshold: f64,
    chunk: u64,
    idle_spindown: Duration,
    stripe_unit: u64,
    logger_base: u64,
    logger_size: u64,
    period: u64,
    /// On-duty logger pairs (§III-B3: "one or several mirrored disk
    /// pairs"). The whole window advances by one at each destage cycle.
    logger_pairs: Vec<usize>,
    mode: Mode,
    /// One logical log, physically mirrored on both logger-pair disks.
    log: LoggerSpace,
    /// Checksummed record journals, one per disk (the on-duty window
    /// rotates, so over time any disk can hold log copies). Like GRAID,
    /// RoLo-E runs no compactor: the centralized destage reclaims the
    /// whole log, killing every segment wholesale (DESIGN.md §10).
    journals: BTreeMap<DiskId, SegmentStore>,
    /// Controller-durable (NVRAM) clear/reclaim journal (§III-E).
    manifest: LogManifest,
    next_lsn: u64,
    seg_bytes: u64,
    archive_ttl_us: u64,
    cache: BlockCache,
    dirty: Vec<DirtyMap>,
    /// Remaining destage writes of the in-flight chain per pair (0 = no
    /// chain).
    chain_writes: Vec<u8>,
    io_map: IoMap<Tag>,
    user_meta: IoMap<UserMeta>,
    logging_token: Option<u64>,
    destaging_token: Option<u64>,
    phase_energy_mark: f64,
    alternate: bool,
    round_robin: usize,
    draining: bool,
    stats: PolicyStats,
}

impl RoloEPolicy {
    /// Creates a RoLo-E controller.
    ///
    /// `cache_fraction` of the logger region caches popular reads; the
    /// rest takes log appends.
    ///
    /// # Panics
    ///
    /// Panics on a zero logger region, zero pairs or an out-of-range
    /// cache fraction.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pairs: usize,
        logger_base: u64,
        logger_size: u64,
        stripe_unit: u64,
        threshold: f64,
        chunk: u64,
        idle_spindown: Duration,
        cache_fraction: f64,
    ) -> Self {
        assert!(pairs > 0 && logger_size > 0);
        assert!((0.0..1.0).contains(&cache_fraction));
        let cache_bytes = (logger_size as f64 * cache_fraction) as u64;
        let log_share = logger_size - cache_bytes;
        assert!(log_share > 0, "cache fraction leaves no log space");
        RoloEPolicy {
            pairs,
            threshold,
            chunk,
            idle_spindown,
            stripe_unit,
            logger_base,
            logger_size,
            period: 0,
            logger_pairs: vec![0],
            mode: Mode::Logging,
            log: LoggerSpace::new(logger_base, log_share),
            journals: (0..2 * pairs)
                .map(|d| (d, SegmentStore::new(DEFAULT_SEG_BYTES)))
                .collect(),
            manifest: LogManifest::new(),
            next_lsn: 0,
            seg_bytes: DEFAULT_SEG_BYTES,
            archive_ttl_us: DEFAULT_ARCHIVE_TTL_US,
            cache: BlockCache::new((cache_bytes / stripe_unit) as usize),
            dirty: (0..pairs).map(|_| DirtyMap::new()).collect(),
            chain_writes: vec![0; pairs],
            io_map: IoMap::default(),
            user_meta: IoMap::default(),
            logging_token: None,
            destaging_token: None,
            phase_energy_mark: 0.0,
            alternate: false,
            round_robin: 0,
            draining: false,
            stats: PolicyStats::default(),
        }
    }

    /// The first on-duty logger pair.
    pub fn logger_pair(&self) -> usize {
        self.logger_pairs[0]
    }

    /// All on-duty logger pairs.
    pub fn on_duty_pairs(&self) -> &[usize] {
        &self.logger_pairs
    }

    /// Sets the number of simultaneously on-duty logger pairs (before the
    /// run starts); the initial window is pairs `0..k`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k < pairs`.
    pub fn set_on_duty_pairs(&mut self, k: usize) {
        assert!(k >= 1 && k < self.pairs, "on-duty window out of range");
        self.logger_pairs = (0..k).collect();
    }

    /// Occupancy of the logical log in `[0, 1]`.
    pub fn log_occupancy(&self) -> f64 {
        self.log.occupancy()
    }

    /// Tunes the journal geometry (before the run starts); resets all
    /// journals.
    pub fn set_segment_tuning(&mut self, seg_bytes: u64, archive_ttl: Duration) {
        self.seg_bytes = seg_bytes;
        self.archive_ttl_us = archive_ttl.as_micros();
        for j in self.journals.values_mut() {
            *j = SegmentStore::new(seg_bytes);
        }
    }

    /// Read-only view of one disk's journal (tests).
    pub fn journal(&self, disk: DiskId) -> Option<&SegmentStore> {
        self.journals.get(&disk)
    }

    /// The controller-durable log manifest (tests).
    pub fn manifest(&self) -> &LogManifest {
        &self.manifest
    }

    fn alloc_lsn(&mut self) -> u64 {
        self.next_lsn += 1;
        self.next_lsn
    }

    /// Journals a dirty-map clear at the same instant the in-memory
    /// `clear_range` / `take_next` happens.
    fn journal_clear(&mut self, pair: usize, off: u64, len: u64) {
        let lsn = self.alloc_lsn();
        self.manifest.clear(lsn, pair, off, len);
        for j in self.journals.values_mut() {
            j.clear_extent(pair, off, len);
        }
    }

    /// Archives fully-dead sealed segments and retires expired frames
    /// across all journals.
    fn sweep_archives(&mut self, ctx: &mut SimCtx) {
        let now_us = ctx.now.as_micros();
        let ttl = self.archive_ttl_us;
        for (&disk, j) in self.journals.iter_mut() {
            for segment in j.archive_ready() {
                let (frame, compressed_bytes) = j.archive(segment, now_us);
                ctx.emit(|| SimEvent::SegmentArchived {
                    disk,
                    segment,
                    frame,
                    compressed_bytes,
                });
            }
            for frame in j.retire_expired(now_us, ttl) {
                ctx.emit(|| SimEvent::ArchiveFrameRetired { disk, frame });
            }
        }
    }

    /// Recovery-by-replay after `disk` died: scan the surviving disks'
    /// journals, merge their committed records with the manifest's
    /// clears, and cross-check the reconstructed dirty maps against the
    /// controller's NVRAM state. Each logged extent is mirrored on both
    /// disks of an on-duty pair under one shared LSN, so a single death
    /// always leaves a surviving copy of every committed record.
    fn replay_after_failure(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        self.stats.log_replays += 1;
        ctx.emit(|| SimEvent::ReplayStarted { disk });
        let mut ids: Vec<DiskId> = self
            .journals
            .keys()
            .copied()
            .filter(|&d| d != disk)
            .collect();
        ids.sort_unstable();
        let survivors = ids.iter().map(|d| &self.journals[d]);
        let outcome = replay_journals(survivors, &self.manifest, self.pairs);
        self.stats.torn_records += outcome.torn_records;
        if outcome.torn_records > 0 {
            let count = outcome.torn_records;
            ctx.emit(|| SimEvent::TornRecordDetected { disk, count });
        }
        let mut survivor_lsns: HashSet<u64> = HashSet::new();
        for d in &ids {
            survivor_lsns.extend(self.journals[d].committed_records().iter().map(|&(l, _)| l));
        }
        let lost: HashSet<usize> = match self.journals.get(&disk) {
            Some(j) => j
                .committed_records()
                .into_iter()
                .filter(|&(lsn, pair)| {
                    lsn > self.manifest.pair_stable(pair) && !survivor_lsns.contains(&lsn)
                })
                .map(|(_, pair)| pair)
                .collect(),
            None => HashSet::new(),
        };
        let mut divergent_pairs = 0u64;
        for (pair, map) in outcome.maps.iter().enumerate() {
            if lost.contains(&pair) {
                continue;
            }
            if *map == self.dirty[pair] {
                // Install the replayed map: load-bearing (the controller
                // proceeds on reconstructed state) yet behavior-identical.
                self.dirty[pair] = map.clone();
            } else {
                divergent_pairs += 1;
                self.stats.replay_divergence += 1;
            }
        }
        let records = outcome.records_scanned;
        let torn = outcome.torn_records;
        ctx.emit(|| SimEvent::ReplayCompleted {
            disk,
            records,
            torn,
            divergent_pairs,
        });
    }

    /// All disks of the on-duty logger pairs.
    fn logger_disks(&self, ctx: &SimCtx) -> Vec<DiskId> {
        self.logger_pairs
            .iter()
            .flat_map(|&j| {
                [
                    ctx.geometry().primary_disk(j),
                    ctx.geometry().mirror_disk(j),
                ]
            })
            .collect()
    }

    /// The on-duty *pair* that takes a given write's two log copies,
    /// chosen round-robin across the window.
    fn pick_logger_pair(&mut self) -> usize {
        let k = self.logger_pairs.len();
        self.round_robin = self.round_robin.wrapping_add(1);
        self.logger_pairs[self.round_robin % k]
    }

    /// Alternates across all on-duty disks for cache reads/fills,
    /// skipping degraded slots (their replacements hold no log copies
    /// until rebuilt) whenever a surviving copy-holder exists.
    fn next_logger_disk(&mut self, ctx: &SimCtx) -> DiskId {
        let mut disks = self.logger_disks(ctx);
        disks.retain(|&d| !ctx.is_degraded(d));
        if disks.is_empty() {
            disks = self.logger_disks(ctx);
        }
        self.alternate = !self.alternate;
        self.round_robin = self.round_robin.wrapping_add(1);
        disks[self.round_robin % disks.len()]
    }

    /// Synthetic position of a cached/logged block inside the logger
    /// region (the simulation tracks versions, not data placement).
    fn log_read_offset(&self, block: u64, len: u64) -> u64 {
        let span = self.logger_size.saturating_sub(len).max(1);
        self.logger_base + (block * self.stripe_unit) % span
    }

    fn blocks_of(&self, offset: u64, bytes: u64) -> impl Iterator<Item = u64> {
        let first = offset / self.stripe_unit;
        let last = (offset + bytes - 1) / self.stripe_unit;
        first..=last
    }

    fn start_destage(&mut self, ctx: &mut SimCtx) {
        if self.mode == Mode::Destaging {
            for pair in 0..self.pairs {
                self.pump(ctx, pair);
            }
            self.check_destage_done(ctx);
            return;
        }
        self.mode = Mode::Destaging;
        ctx.emit(|| SimEvent::DestageStart { pair: None });
        // The centralized cycle spins everything up and destages every
        // pair in parallel: cover the whole array.
        let all: Vec<DiskId> = (0..ctx.disk_count()).collect();
        ctx.span_destage_begin(None, &all);
        let energy = ctx.total_energy();
        if let Some(tok) = self.logging_token.take() {
            ctx.intervals
                .end(tok, ctx.now, energy - self.phase_energy_mark);
        }
        self.phase_energy_mark = energy;
        self.destaging_token = Some(ctx.intervals.begin(Phase::Destaging, ctx.now));
        for d in 0..ctx.disk_count() {
            ctx.spin_up(d);
        }
        for pair in 0..self.pairs {
            self.pump(ctx, pair);
        }
        self.check_destage_done(ctx);
    }

    fn pair_ready(&self, ctx: &SimCtx, pair: usize) -> bool {
        let p = ctx.geometry().primary_disk(pair);
        let m = ctx.geometry().mirror_disk(pair);
        ctx.disk(p).is_spun_up() && ctx.disk(m).is_spun_up()
    }

    fn pump(&mut self, ctx: &mut SimCtx, pair: usize) {
        if self.mode != Mode::Destaging || self.chain_writes[pair] > 0 {
            return;
        }
        if !self.pair_ready(ctx, pair) {
            return; // chain starts when the pair's spin-ups land
        }
        if let Some((off, len)) = self.dirty[pair].take_next(self.chunk) {
            self.journal_clear(pair, off, len);
            self.chain_writes[pair] = u8::MAX; // sentinel: read in flight
            let src = self.next_logger_disk(ctx);
            let read_off = self.log_read_offset(off / self.stripe_unit, len);
            let id = ctx.submit(src, IoKind::Read, read_off, len, Priority::Background);
            self.io_map.insert(id, Tag::DestageRead { pair, off, len });
        }
    }

    fn check_destage_done(&mut self, ctx: &mut SimCtx) {
        if self.mode != Mode::Destaging {
            return;
        }
        let busy = self.chain_writes.iter().any(|&c| c > 0);
        let dirty = self.dirty.iter().any(|d| !d.is_clean());
        if busy || dirty {
            return;
        }
        // Reclaim the whole log, rotate the logger pair, park the rest.
        // Every journal segment is now fully dead; the sweep archives
        // them wholesale, so no background compactor is needed.
        self.log.reclaim(|_| true);
        for pair in 0..self.pairs {
            let lsn = self.alloc_lsn();
            self.manifest.reclaim(lsn, pair);
            for j in self.journals.values_mut() {
                j.reclaim_pair(pair);
            }
        }
        self.sweep_archives(ctx);
        self.cache.clear();
        ctx.log_timeline.push(ctx.now, 0.0);
        let energy = ctx.total_energy();
        if let Some(tok) = self.destaging_token.take() {
            ctx.intervals
                .end(tok, ctx.now, energy - self.phase_energy_mark);
        }
        self.phase_energy_mark = energy;
        self.mode = Mode::Logging;
        self.period += 1;
        ctx.emit(|| SimEvent::DestageEnd { pair: None });
        ctx.span_destage_end(None);
        // Advance the whole on-duty window by its width so successive
        // cycles visit disjoint pair sets round-robin.
        let n = self.pairs;
        let k = self.logger_pairs.len();
        let outgoing = self.logger_pairs[0];
        for j in self.logger_pairs.iter_mut() {
            *j = (*j + k) % n;
        }
        self.stats.rotations += 1;
        self.stats.destage_cycles += 1;
        ctx.emit(|| SimEvent::LoggerRotation {
            outgoing,
            incoming: self.logger_pairs[0],
            period: self.period,
        });
        self.logging_token = Some(ctx.intervals.begin(Phase::Logging, ctx.now));
        if !self.draining {
            let keep = self.logger_disks(ctx);
            for d in 0..ctx.disk_count() {
                if !keep.contains(&d) {
                    ctx.spin_down(d);
                }
            }
        }
    }

    fn write_direct(
        &mut self,
        ctx: &mut SimCtx,
        user_id: u64,
        uslot: IoSlot,
        meta: &mut UserMeta,
        exts: &[rolo_raid::PhysExtent],
    ) -> u32 {
        self.stats.direct_writes += 1;
        let mut subs = 0;
        for ext in exts {
            let p = ctx.geometry().primary_disk(ext.pair);
            let m = ctx.geometry().mirror_disk(ext.pair);
            for d in [p, m] {
                let id = ctx.submit(
                    d,
                    IoKind::Write,
                    ext.offset,
                    ext.bytes,
                    Priority::Foreground,
                );
                self.io_map.insert(id, Tag::User(user_id, uslot));
                let flavor = if d == p {
                    LegFlavor::Transfer
                } else {
                    LegFlavor::MirrorCopy
                };
                ctx.tag_io(id, user_id, flavor);
                subs += 1;
            }
            meta.clears.push((ext.pair, ext.offset, ext.bytes));
        }
        subs
    }
}

impl Policy for RoloEPolicy {
    fn name(&self) -> &'static str {
        "RoLo-E"
    }

    fn initial_standby(&self, disk: DiskId) -> bool {
        let pair = if disk < self.pairs {
            disk
        } else {
            disk - self.pairs
        };
        !self.logger_pairs.contains(&pair)
    }

    fn attach(&mut self, ctx: &mut SimCtx) {
        self.logging_token = Some(ctx.intervals.begin(Phase::Logging, ctx.now));
        self.phase_energy_mark = ctx.total_energy();
    }

    fn on_user_request(&mut self, ctx: &mut SimCtx, user_id: u64, rec: &TraceRecord) {
        let exts = ctx
            .geometry()
            .split(rec.offset, rec.bytes)
            .expect("driver keeps requests in range");
        let mut meta = UserMeta::default();
        let mut subs: u32 = 0;
        // Admission hold: one sub reserved up front so the slab slot
        // exists before the first sub-request can possibly complete;
        // the balance is topped up below once `subs` is known.
        let uslot = ctx.register_user(user_id, rec.kind, ctx.now, 1);
        match rec.kind {
            ReqKind::Read if self.mode == Mode::Logging => {
                let hit = self
                    .blocks_of(rec.offset, rec.bytes)
                    .all(|b| self.cache.contains(b));
                if hit && self.cache.capacity() > 0 {
                    self.stats.cache_hits += 1;
                    for b in self.blocks_of(rec.offset, rec.bytes) {
                        self.cache.touch(b);
                    }
                    let d = self.next_logger_disk(ctx);
                    let off = self.log_read_offset(rec.offset / self.stripe_unit, rec.bytes);
                    let id = ctx.submit(d, IoKind::Read, off, rec.bytes, Priority::Foreground);
                    self.io_map.insert(id, Tag::User(user_id, uslot));
                    ctx.tag_io(id, user_id, LegFlavor::Transfer);
                    subs += 1;
                } else {
                    self.stats.cache_misses += 1;
                    for ext in &exts {
                        let p = ctx.geometry().primary_disk(ext.pair);
                        let target = if ctx.is_degraded(p) {
                            ctx.geometry().mirror_disk(ext.pair)
                        } else {
                            p
                        };
                        if !ctx.disk(target).is_spun_up() {
                            self.stats.read_miss_spinups += 1;
                            ctx.emit(|| SimEvent::ReadMissSpinUp { disk: target });
                        }
                        let id = ctx.submit(
                            target,
                            IoKind::Read,
                            ext.offset,
                            ext.bytes,
                            Priority::Foreground,
                        );
                        self.io_map.insert(id, Tag::User(user_id, uslot));
                        let flavor = if target == p {
                            LegFlavor::Transfer
                        } else {
                            LegFlavor::DegradedRedirect
                        };
                        ctx.tag_io(id, user_id, flavor);
                        subs += 1;
                        // Spin the awakened disk back down once idle.
                        ctx.set_timer(self.idle_spindown, target as u64);
                    }
                    meta.cache_fill = self.blocks_of(rec.offset, rec.bytes).collect();
                    meta.fill_bytes = rec.bytes;
                }
            }
            ReqKind::Read => {
                // Centralized destage in progress: everything is up.
                for ext in &exts {
                    let p = ctx.geometry().primary_disk(ext.pair);
                    let target = if ctx.is_degraded(p) {
                        ctx.geometry().mirror_disk(ext.pair)
                    } else {
                        p
                    };
                    let id = ctx.submit(
                        target,
                        IoKind::Read,
                        ext.offset,
                        ext.bytes,
                        Priority::Foreground,
                    );
                    self.io_map.insert(id, Tag::User(user_id, uslot));
                    let flavor = if target == p {
                        LegFlavor::Transfer
                    } else {
                        LegFlavor::DegradedRedirect
                    };
                    ctx.tag_io(id, user_id, flavor);
                    subs += 1;
                }
            }
            ReqKind::Write => {
                if self.log.free_bytes() < rec.bytes {
                    // Log exhausted: destage must run; fall back to direct
                    // writes until space is reclaimed.
                    self.start_destage(ctx);
                    subs += self.write_direct(ctx, user_id, uslot, &mut meta, &exts);
                } else {
                    for ext in &exts {
                        let segs = self
                            .log
                            .alloc(ext.bytes, ext.pair, self.period)
                            .expect("free space checked above");
                        // Two copies, on one on-duty pair (round-robin
                        // across the window when it is wider than one).
                        let pair = self.pick_logger_pair();
                        let targets = [
                            ctx.geometry().primary_disk(pair),
                            ctx.geometry().mirror_disk(pair),
                        ];
                        for seg in segs {
                            for d in targets {
                                let id = ctx.submit(
                                    d,
                                    IoKind::Write,
                                    seg.offset,
                                    seg.bytes,
                                    Priority::Foreground,
                                );
                                self.io_map.insert(id, Tag::User(user_id, uslot));
                                // First copy is the log append proper;
                                // the twin on the pair's other disk is
                                // its mirror.
                                let flavor = if d == targets[0] {
                                    LegFlavor::LogAppend
                                } else {
                                    LegFlavor::MirrorCopy
                                };
                                ctx.tag_io(id, user_id, flavor);
                                subs += 1;
                            }
                            self.stats.log_appended_bytes += seg.bytes;
                        }
                        let mark = meta.marks.len() as u32;
                        for d in targets {
                            let rid = journal_append(
                                ctx,
                                &mut self.journals,
                                d,
                                ext.pair,
                                self.period,
                                ext.offset,
                                ext.bytes,
                            );
                            meta.appends.push((mark, d, rid));
                        }
                        meta.marks.push((ext.pair, ext.offset, ext.bytes));
                    }
                    ctx.log_timeline.push(ctx.now, self.log.used_bytes() as f64);
                    // The threshold leaves headroom so writes keep landing
                    // in the log (on the already-spinning logger pair)
                    // while the rest of the array spins up for destage.
                    if self.mode == Mode::Logging && self.log.occupancy() >= self.threshold {
                        self.start_destage(ctx);
                    }
                }
            }
        }
        debug_assert!(subs >= 1, "every admitted request issues at least one sub");
        if subs > 1 {
            ctx.add_user_subs(uslot, subs - 1);
        }
        self.user_meta.insert(user_id, meta);
    }

    fn on_io_complete(&mut self, ctx: &mut SimCtx, _disk: DiskId, req: DiskRequest) {
        match self.io_map.remove(&req.id).expect("unknown sub-request") {
            Tag::User(user, uslot) => {
                if ctx.user_sub_done(uslot).is_some() {
                    let meta = self.user_meta.remove(&user).unwrap_or_default();
                    for (i, (pair, off, len)) in meta.marks.into_iter().enumerate() {
                        // The ack instant is the commit point: both
                        // mirrored copies get one shared LSN.
                        let lsn = self.alloc_lsn();
                        for &(mi, d, rid) in &meta.appends {
                            if mi as usize == i {
                                if let Some(j) = self.journals.get_mut(&d) {
                                    j.commit(rid, lsn);
                                }
                            }
                        }
                        self.dirty[pair].mark(off, len);
                        if self.mode == Mode::Destaging {
                            self.pump(ctx, pair);
                        }
                    }
                    for (pair, off, len) in meta.clears {
                        self.journal_clear(pair, off, len);
                        self.dirty[pair].clear_range(off, len);
                        if self.mode == Mode::Destaging {
                            self.check_destage_done(ctx);
                        }
                    }
                    if self.mode == Mode::Logging && !meta.cache_fill.is_empty() {
                        for b in meta.cache_fill {
                            self.cache.insert(b);
                        }
                        if meta.fill_bytes > 0 {
                            // Writing the fetched blocks into the cache
                            // costs a background write on a logger disk.
                            let d = self.next_logger_disk(ctx);
                            let off = self
                                .log_read_offset(req.offset / self.stripe_unit, meta.fill_bytes);
                            let id = ctx.submit(
                                d,
                                IoKind::Write,
                                off,
                                meta.fill_bytes,
                                Priority::Background,
                            );
                            self.io_map.insert(id, Tag::CacheFill);
                        }
                    }
                }
            }
            Tag::CacheFill => {}
            Tag::DestageRead { pair, off, len } => {
                let p = ctx.geometry().primary_disk(pair);
                let m = ctx.geometry().mirror_disk(pair);
                self.chain_writes[pair] = 2;
                for d in [p, m] {
                    let id = ctx.submit(d, IoKind::Write, off, len, Priority::Background);
                    self.io_map.insert(id, Tag::DestageWrite { pair, len });
                }
            }
            Tag::DestageWrite { pair, len } => {
                self.chain_writes[pair] -= 1;
                if self.chain_writes[pair] == 0 {
                    self.stats.destaged_bytes += len;
                    self.pump(ctx, pair);
                    self.check_destage_done(ctx);
                }
            }
        }
    }

    fn on_io_error(
        &mut self,
        ctx: &mut SimCtx,
        disk: DiskId,
        req: DiskRequest,
        outcome: IoOutcome,
    ) {
        match self.io_map.get(&req.id).copied() {
            Some(Tag::User(user, uslot))
                if req.kind == IoKind::Read
                    && (outcome == IoOutcome::MediaError || ctx.is_degraded(disk)) =>
            {
                // The mirrored copy serves the read the failed slot lost.
                if let Some(p) =
                    surviving_partner(ctx.geometry(), disk).filter(|&p| !ctx.is_degraded(p))
                {
                    self.io_map.remove(&req.id);
                    ctx.note_redirect();
                    ctx.emit(|| SimEvent::ReadRedirected { from: disk, to: p });
                    let id =
                        ctx.submit(p, IoKind::Read, req.offset, req.bytes, Priority::Foreground);
                    self.io_map.insert(id, Tag::User(user, uslot));
                    ctx.tag_io(id, user, LegFlavor::DegradedRedirect);
                    return;
                }
                self.on_io_complete(ctx, disk, req);
            }
            Some(Tag::DestageRead { pair, off, len }) => {
                // Re-fetch the chunk from a surviving logger copy; the
                // chain must make progress or the destage never ends.
                self.io_map.remove(&req.id);
                let src = self.next_logger_disk(ctx);
                let read_off = self.log_read_offset(off / self.stripe_unit, len);
                let id = ctx.submit(src, IoKind::Read, read_off, len, Priority::Background);
                self.io_map.insert(id, Tag::DestageRead { pair, off, len });
            }
            // Failed destage/cache-fill writes and write sub-requests just
            // close their accounting: the rebuild restores the slot.
            _ => self.on_io_complete(ctx, disk, req),
        }
    }

    fn on_disk_failure(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        let pair = if disk < self.pairs {
            disk
        } else {
            disk - self.pairs
        };
        let on_duty = self.logger_pairs.contains(&pair);
        // Whatever log copies the dead disk held are gone: replay the
        // surviving journals against the NVRAM dirty maps, then wipe the
        // slot's journal (the replacement starts blank) and drop any
        // in-flight append references to it (the fresh store restarts
        // record ids).
        if self.journals.contains_key(&disk) {
            self.replay_after_failure(ctx, disk);
            if let Some(j) = self.journals.get_mut(&disk) {
                *j = SegmentStore::new(self.seg_bytes);
            }
            for meta in self.user_meta.values_mut() {
                meta.appends.retain(|&(_, d, _)| d != disk);
            }
        }
        let logger_arg = if on_duty { pair } else { self.logger_pairs[0] };
        let plan = recovery_plan(
            crate::config::Scheme::RoloE,
            ctx.geometry(),
            disk,
            logger_arg,
            &[],
        );
        if on_duty && (self.log.used_bytes() > 0 || self.dirty.iter().any(|d| !d.is_clean())) {
            // Half of the mirrored log died with the disk; flush the
            // surviving copy so redundancy is restored (and the window
            // rotates off the degraded pair at the cycle's end).
            self.start_destage(ctx);
        }
        ctx.begin_rebuild(&plan, ctx.geometry().data_region());
        if self.mode == Mode::Destaging {
            // A dying disk may have swallowed the spin-up wake its pair's
            // chain was waiting for.
            self.pump(ctx, pair);
            self.check_destage_done(ctx);
        }
    }

    fn on_rebuild_complete(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        // Park the rebuilt replacement unless it is on logging duty.
        if self.mode == Mode::Logging && !self.draining && !self.logger_disks(ctx).contains(&disk) {
            ctx.spin_down(disk);
        }
    }

    fn on_spin_up(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        if self.mode == Mode::Destaging {
            let pair = if disk < self.pairs {
                disk
            } else if disk < 2 * self.pairs {
                disk - self.pairs
            } else {
                return;
            };
            self.pump(ctx, pair);
        }
    }

    fn on_spin_down(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}

    fn on_timer(&mut self, ctx: &mut SimCtx, token: u64) {
        let disk = token as usize;
        if self.mode != Mode::Logging || disk >= ctx.disk_count() {
            return;
        }
        if self.logger_disks(ctx).contains(&disk) {
            return;
        }
        if ctx.disk(disk).is_idle() {
            ctx.spin_down(disk);
        }
    }

    fn begin_drain(&mut self, ctx: &mut SimCtx) {
        self.draining = true;
        if self.log.used_bytes() > 0 || self.dirty.iter().any(|d| !d.is_clean()) {
            self.start_destage(ctx);
        }
    }

    fn is_drained(&self, ctx: &SimCtx) -> bool {
        self.mode == Mode::Logging
            && self.log.used_bytes() == 0
            && self.dirty.iter().all(|d| d.is_clean())
            && ctx.outstanding_users() == 0
            && self.io_map.is_empty()
    }

    fn stats(&self) -> PolicyStats {
        let mut s = self.stats;
        for j in self.journals.values() {
            let js = j.stats();
            s.segments_sealed += js.sealed_segments;
            s.segments_archived += js.archived_segments;
            s.frames_retired += js.retired_frames;
            s.compacted_bytes += js.compacted_bytes;
        }
        s
    }

    fn check_consistency(&self, ctx: &SimCtx) -> Result<(), String> {
        self.log.check_invariants()?;
        for (&disk, j) in self.journals.iter() {
            j.check_invariants()
                .map_err(|e| format!("journal {disk}: {e}"))?;
            if j.live_bytes() != 0 {
                return Err(format!(
                    "journal {disk} still tracks {} live bytes",
                    j.live_bytes()
                ));
            }
        }
        for (pair, d) in self.dirty.iter().enumerate() {
            d.check_invariants()?;
            if !d.is_clean() {
                return Err(format!("pair {pair} still has {} stale bytes", d.bytes()));
            }
        }
        if self.log.used_bytes() != 0 {
            return Err(format!("{} log bytes unreclaimed", self.log.used_bytes()));
        }
        if ctx.outstanding_users() != 0 {
            return Err(format!(
                "{} user requests unfinished",
                ctx.outstanding_users()
            ));
        }
        if !self.io_map.is_empty() {
            return Err(format!("{} orphaned sub-requests", self.io_map.len()));
        }
        Ok(())
    }
}
