//! Disk-failure recovery planning (§III-C).
//!
//! When a disk fails, only the disks *essential for data recovery* are
//! spun up; disks that are already active are used "silently". The sets
//! differ per scheme, and their sizes are what §IV's reliability
//! comparison turns on:
//!
//! * **RAID10** — the failed disk's partner is already active: nothing
//!   spins up.
//! * **GRAID** — a failed mirror is rebuilt from its (active) primary;
//!   a failed primary requires *all* mirrored disks to spin up (the
//!   mirror is stale and the log disk's copies span every pair's recent
//!   writes, so the paper's analysis charges the full set); a failed log
//!   disk loses no data (second copies only).
//! * **RoLo-P/R** — a failed mirror (on- or off-duty) is rebuilt from
//!   its always-active primary; a failed primary wakes its own mirror
//!   plus only the mirrors that served as on-duty loggers during the
//!   last few logging periods (they hold the primary's recent second
//!   copies).
//! * **RoLo-E** — the failed disk's pair partner holds everything needed:
//!   it spins up unless it belongs to the active logger pair.
//!
//! **Ordering with recovery-by-replay (DESIGN.md §10).** When the
//! failed disk carried a segment journal, the controller first runs
//! [`replay_journals`](crate::segment::replay_journals) over the
//! surviving chains to reconstruct (and cross-check) the dirty maps,
//! and only then executes this plan: the destage and rebuild the plan
//! triggers consume the *replayed* maps, so the §III-C wake set is
//! computed against state that is provably consistent with what the
//! surviving logs contain.

use crate::config::Scheme;
use rolo_disk::DiskId;
use rolo_raid::{ArrayGeometry, DiskRole};
use serde::{Deserialize, Serialize};

/// The set of disks involved in recovering from one disk failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPlan {
    /// The failed disk.
    pub failed: DiskId,
    /// Standby disks that must spin up for the recovery.
    pub wake: Vec<DiskId>,
    /// Already-active disks used silently.
    pub silent: Vec<DiskId>,
    /// True if the failure loses no user data even before recovery
    /// (e.g. a GRAID log-disk failure: only second copies are lost).
    pub redundancy_only: bool,
}

impl RecoveryPlan {
    /// Total disks participating in the recovery.
    pub fn disks_involved(&self) -> usize {
        self.wake.len() + self.silent.len()
    }
}

/// Computes the §III-C recovery plan for `failed` under `scheme`.
///
/// `logger_pair` is the current on-duty logger pair (ignored for RAID10
/// and GRAID); `recent_loggers` lists the pairs that served as loggers
/// over the periods whose log copies have not yet been reclaimed —
/// exactly the mirrors holding a failed primary's recent second copies.
///
/// # Panics
///
/// Panics if `failed` is out of range for the scheme's disk count
/// (GRAID has `2 × pairs + 1` disks, the rest `2 × pairs`).
pub fn recovery_plan(
    scheme: Scheme,
    geometry: &ArrayGeometry,
    failed: DiskId,
    logger_pair: usize,
    recent_loggers: &[usize],
) -> RecoveryPlan {
    let pairs = geometry.pairs();
    let graid_log_disk = geometry.disks();
    let max_disk = match scheme {
        Scheme::Graid => graid_log_disk + 1,
        _ => geometry.disks(),
    };
    assert!(failed < max_disk, "disk {failed} out of range");

    // GRAID's dedicated log disk.
    if scheme == Scheme::Graid && failed == graid_log_disk {
        return RecoveryPlan {
            failed,
            wake: Vec::new(),
            silent: (0..pairs).map(|p| geometry.primary_disk(p)).collect(),
            redundancy_only: true,
        };
    }

    let (role, pair) = geometry.disk_role(failed);
    match (scheme, role) {
        (Scheme::Raid10, DiskRole::Primary) => RecoveryPlan {
            failed,
            wake: Vec::new(),
            silent: vec![geometry.mirror_disk(pair)],
            redundancy_only: false,
        },
        (Scheme::Raid10, DiskRole::Mirror) => RecoveryPlan {
            failed,
            wake: Vec::new(),
            silent: vec![geometry.primary_disk(pair)],
            redundancy_only: false,
        },
        (Scheme::Graid, DiskRole::Mirror) => RecoveryPlan {
            failed,
            wake: Vec::new(),
            silent: vec![geometry.primary_disk(pair)],
            redundancy_only: true,
        },
        (Scheme::Graid, DiskRole::Primary) => RecoveryPlan {
            failed,
            // §IV: "all the mirrored disks must be spun up for the
            // recovery of the failure of any primary disk in GRAID".
            wake: (0..pairs).map(|p| geometry.mirror_disk(p)).collect(),
            silent: vec![graid_log_disk],
            redundancy_only: false,
        },
        (Scheme::RoloP | Scheme::RoloR, DiskRole::Mirror) => {
            // On- or off-duty: the pair's primary is always active.
            RecoveryPlan {
                failed,
                wake: Vec::new(),
                silent: vec![geometry.primary_disk(pair)],
                redundancy_only: true,
            }
        }
        (Scheme::RoloP | Scheme::RoloR, DiskRole::Primary) => {
            // The pair's own mirror plus the recent on-duty loggers.
            let mut wake = vec![geometry.mirror_disk(pair)];
            for &lp in recent_loggers {
                let m = geometry.mirror_disk(lp);
                if !wake.contains(&m) {
                    wake.push(m);
                }
            }
            // For RoLo-R the logger pair's *primary* also holds log
            // copies, but primaries are active anyway — unless the
            // failed disk is that very primary, which can hardly serve
            // its own recovery.
            let mut silent = Vec::new();
            if scheme == Scheme::RoloR && geometry.primary_disk(logger_pair) != failed {
                silent.push(geometry.primary_disk(logger_pair));
            }
            // The on-duty mirror is already spinning.
            let on_duty = geometry.mirror_disk(logger_pair);
            if let Some(i) = wake.iter().position(|&d| d == on_duty) {
                wake.remove(i);
                silent.push(on_duty);
            }
            RecoveryPlan {
                failed,
                wake,
                silent,
                redundancy_only: false,
            }
        }
        (Scheme::RoloE, _) => {
            let partner = match role {
                DiskRole::Primary => geometry.mirror_disk(pair),
                DiskRole::Mirror => geometry.primary_disk(pair),
            };
            let active = pair == logger_pair;
            RecoveryPlan {
                failed,
                wake: if active { Vec::new() } else { vec![partner] },
                silent: if active { vec![partner] } else { Vec::new() },
                redundancy_only: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolo_raid::ArrayGeometry;

    fn geo() -> ArrayGeometry {
        ArrayGeometry::new(10, 64 * 1024, 1 << 30, 1 << 30).unwrap()
    }

    #[test]
    fn raid10_uses_partner_silently() {
        let g = geo();
        let p = recovery_plan(Scheme::Raid10, &g, 3, 0, &[]);
        assert!(p.wake.is_empty());
        assert_eq!(p.silent, vec![13]);
        let m = recovery_plan(Scheme::Raid10, &g, 13, 0, &[]);
        assert_eq!(m.silent, vec![3]);
    }

    #[test]
    fn graid_primary_failure_wakes_every_mirror() {
        let g = geo();
        let p = recovery_plan(Scheme::Graid, &g, 2, 0, &[]);
        assert_eq!(p.wake.len(), 10, "all mirrors spin up");
        assert!(!p.redundancy_only);
    }

    #[test]
    fn graid_log_disk_failure_loses_no_data() {
        let g = geo();
        let p = recovery_plan(Scheme::Graid, &g, 20, 0, &[]);
        assert!(p.redundancy_only);
        assert!(p.wake.is_empty());
    }

    #[test]
    fn rolo_p_mirror_failure_is_cheap() {
        let g = geo();
        // On-duty logger fails: its primary (active) takes over silently.
        let p = recovery_plan(Scheme::RoloP, &g, 10, 0, &[0]);
        assert!(p.wake.is_empty());
        assert_eq!(p.silent, vec![0]);
        assert!(p.redundancy_only);
    }

    #[test]
    fn rolo_p_primary_failure_wakes_recent_loggers_only() {
        let g = geo();
        // P3 fails; loggers over unreclaimed periods were pairs 5, 6, 7
        // (7 = current).
        let p = recovery_plan(Scheme::RoloP, &g, 3, 7, &[5, 6, 7]);
        // Wakes M3 + M5 + M6; M7 is the active logger (silent).
        assert_eq!(p.wake, vec![13, 15, 16]);
        assert_eq!(p.silent, vec![17]);
        assert!(p.disks_involved() < 10, "far fewer than GRAID's full set");
    }

    #[test]
    fn rolo_p_beats_graid_on_wake_count() {
        let g = geo();
        let rolo = recovery_plan(Scheme::RoloP, &g, 0, 2, &[1, 2]);
        let graid = recovery_plan(Scheme::Graid, &g, 0, 0, &[]);
        assert!(rolo.wake.len() < graid.wake.len());
    }

    #[test]
    fn rolo_r_logger_primary_counts_as_silent_copy_holder() {
        let g = geo();
        let p = recovery_plan(Scheme::RoloR, &g, 3, 7, &[7]);
        assert!(p.silent.contains(&7), "logger pair's primary is active");
        assert!(p.silent.contains(&17), "on-duty mirror is active");
    }

    #[test]
    fn rolo_e_partner_recovery() {
        let g = geo();
        // Off-duty pair: the partner must wake.
        let p = recovery_plan(Scheme::RoloE, &g, 4, 0, &[]);
        assert_eq!(p.wake, vec![14]);
        // Logger pair: the partner is already active.
        let q = recovery_plan(Scheme::RoloE, &g, 0, 0, &[]);
        assert!(q.wake.is_empty());
        assert_eq!(q.silent, vec![10]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_disk() {
        recovery_plan(Scheme::Raid10, &geo(), 20, 0, &[]);
    }

    #[test]
    fn duplicate_recent_loggers_deduped() {
        let g = geo();
        let p = recovery_plan(Scheme::RoloP, &g, 0, 5, &[3, 3, 4, 4]);
        assert_eq!(p.wake, vec![10, 13, 14]);
    }
}
