//! End-of-run simulation report.

use crate::faults::FaultMetrics;
use crate::policy::PolicyStats;
use rolo_disk::DiskEnergyReport;
use rolo_metrics::{PhaseSummary, ResponseStats};
use rolo_obs::{MetricsReport, RunProfile};
use rolo_sim::Duration;
use serde::{Deserialize, Map, Serialize, Value};

/// Everything a run produces. Energy, spin counts and phase summaries are
/// snapshotted at the configured trace end (before the drain phase), so
/// runs of different schemes compare over identical wall time; response
/// statistics cover every user request of the trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Scheme name.
    pub scheme: String,
    /// Configured trace duration (energy comparison window).
    pub trace_duration: Duration,
    /// Wall time at which the run fully drained.
    pub drained_at: Duration,
    /// User requests completed.
    pub user_requests: u64,
    /// Total array energy (J) over the trace window.
    pub total_energy_j: f64,
    /// Per-disk energy/residency over the trace window.
    pub energy_by_disk: Vec<DiskEnergyReport>,
    /// Sum of the per-disk reports.
    pub aggregate_energy: DiskEnergyReport,
    /// Spin cycles (spin-ups) over the trace window, array-wide.
    pub spin_cycles: u64,
    /// Response times over all user requests.
    pub responses: ResponseStats,
    /// Response times over reads.
    pub read_responses: ResponseStats,
    /// Response times over writes.
    pub write_responses: ResponseStats,
    /// Completed logging-phase summary at trace end.
    pub logging_phase: PhaseSummary,
    /// Completed destaging-phase summary at trace end.
    pub destaging_phase: PhaseSummary,
    /// Destaging interval ratio (Fig. 2c definition).
    pub destaging_interval_ratio: f64,
    /// Destaging energy ratio (Fig. 2d definition).
    pub destaging_energy_ratio: f64,
    /// Occupied logging capacity over time: (seconds, bytes).
    pub log_capacity_timeline: Vec<(f64, f64)>,
    /// Sampled aggregate power draw over time: (seconds, watts).
    pub power_timeline: Vec<(f64, f64)>,
    /// Scheme-specific counters.
    pub policy: PolicyStats,
    /// Fault-injection accounting, taken at the end of the run (after
    /// the drain, so rebuilds finishing post-trace still count).
    pub faults: FaultMetrics,
    /// Response times over user requests completed while the array was
    /// degraded (empty when no fault was injected).
    pub degraded_responses: ResponseStats,
    /// `Ok` when the end-of-run consistency audit passed.
    pub consistency: Result<(), String>,
    /// Deterministic export of the run's metrics registry (counters,
    /// gauges, histograms and their snapshot timelines).
    pub metrics: MetricsReport,
    /// Wall-clock profiling of the run. Non-deterministic: excluded
    /// from [`SimReport::deterministic_json`].
    pub profile: RunProfile,
}

impl SimReport {
    /// Mean response time in milliseconds (the paper's headline metric).
    pub fn mean_response_ms(&self) -> f64 {
        self.responses.mean_ms()
    }

    /// Energy of this run relative to `baseline` (1.0 = equal; Fig. 10a
    /// normalises to RAID10).
    pub fn energy_vs(&self, baseline: &SimReport) -> f64 {
        if baseline.total_energy_j == 0.0 {
            return f64::NAN;
        }
        self.total_energy_j / baseline.total_energy_j
    }

    /// Fractional energy saved over `baseline` (the paper's "energy saved
    /// over RAID10/GRAID").
    pub fn energy_saved_over(&self, baseline: &SimReport) -> f64 {
        1.0 - self.energy_vs(baseline)
    }

    /// Mean response time relative to `baseline` (Fig. 10b).
    pub fn response_vs(&self, baseline: &SimReport) -> f64 {
        let b = baseline.mean_response_ms();
        if b == 0.0 {
            return f64::NAN;
        }
        self.mean_response_ms() / b
    }

    /// "Performance gained over" `baseline` as the paper states it
    /// (positive = faster than baseline).
    pub fn performance_gained_over(&self, baseline: &SimReport) -> f64 {
        1.0 - self.response_vs(baseline)
    }

    /// Compact JSON of the report with the wall-clock [`RunProfile`]
    /// stripped: two runs of the same seed and config — traced or not,
    /// serial or parallel — must produce byte-identical output.
    pub fn deterministic_json(&self) -> String {
        let value = Serialize::to_value(self);
        let Value::Object(map) = value else {
            unreachable!("SimReport serializes to an object");
        };
        let mut out = Map::new();
        for (k, v) in map.iter() {
            if k != "profile" {
                out.insert(k.clone(), v.clone());
            }
        }
        Value::Object(out).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(energy: f64, mean_us: u64) -> SimReport {
        let mut responses = ResponseStats::new();
        responses.record(Duration::from_micros(mean_us));
        SimReport {
            scheme: "test".into(),
            trace_duration: Duration::from_secs(1),
            drained_at: Duration::from_secs(1),
            user_requests: 1,
            total_energy_j: energy,
            energy_by_disk: Vec::new(),
            aggregate_energy: DiskEnergyReport::default(),
            spin_cycles: 0,
            responses,
            read_responses: ResponseStats::new(),
            write_responses: ResponseStats::new(),
            logging_phase: PhaseSummary::default(),
            destaging_phase: PhaseSummary::default(),
            destaging_interval_ratio: 0.0,
            destaging_energy_ratio: 0.0,
            log_capacity_timeline: Vec::new(),
            power_timeline: Vec::new(),
            policy: PolicyStats::default(),
            faults: FaultMetrics::default(),
            degraded_responses: ResponseStats::new(),
            consistency: Ok(()),
            metrics: MetricsReport::default(),
            profile: RunProfile::default(),
        }
    }

    #[test]
    fn relative_metrics() {
        let base = report(1000.0, 10_000);
        let mine = report(500.0, 11_000);
        assert!((mine.energy_vs(&base) - 0.5).abs() < 1e-12);
        assert!((mine.energy_saved_over(&base) - 0.5).abs() < 1e-12);
        assert!((mine.response_vs(&base) - 1.1).abs() < 1e-9);
        assert!((mine.performance_gained_over(&base) + 0.1).abs() < 1e-9);
    }

    #[test]
    fn deterministic_json_strips_profile_only() {
        let mut r = report(1.0, 100);
        r.profile.wall_total_us = 123_456;
        r.profile.sink = "ring".into();
        let json = r.deterministic_json();
        let v = serde_json::from_str(&json).expect("valid JSON");
        assert!(v.get("profile").is_none(), "profile stripped");
        assert!(v.get("scheme").is_some());
        assert!(v.get("metrics").is_some());

        // Differing wall-clock profiles must not differ the output.
        let mut other = report(1.0, 100);
        other.profile.wall_total_us = 999;
        assert_eq!(json, other.deterministic_json());
    }
}
