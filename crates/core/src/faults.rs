//! Fault-injection plan and degraded-window metrics.
//!
//! Failures are first-class events inside [`crate::driver::run_trace`]:
//! the driver expands a [`FaultPlan`] into scheduled disk-failure events
//! before replay starts, and classifies every I/O completion against the
//! plan's latent-sector-error and timeout probabilities. The resulting
//! [`FaultMetrics`] quantify the degraded window (DESIGN.md §Fault
//! model): how fast reads were redirected to surviving copies, how long
//! the array ran degraded, and how rebuild fared under foreground load.

use rolo_disk::DiskId;
use rolo_raid::ArrayGeometry;
use rolo_sim::{schedule, Duration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Declarative description of the faults to inject during a run.
///
/// The default plan ([`FaultPlan::none`]) injects nothing, so existing
/// callers of `run_trace` are unaffected. Whole-disk failures can be
/// pinned to exact instants (`disk_failures`) or drawn from a Poisson
/// process (`random_failure_rate`); both feed the same degraded-mode
/// machinery. Media errors and timeouts are per-I/O Bernoulli draws made
/// at completion time from a dedicated RNG stream, so the fault schedule
/// never perturbs service-time sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Whole-disk failures pinned to exact instants after trace start.
    pub disk_failures: Vec<(DiskId, Duration)>,
    /// Poisson rate (failures per second, array-wide) of additional
    /// random whole-disk failures. Zero disables random failures.
    pub random_failure_rate: f64,
    /// Probability that any single read completion surfaces a latent
    /// sector error (media error) instead of data.
    pub media_error_per_read: f64,
    /// Probability that any single I/O completion is a transient
    /// timeout. Timed-out requests are retried with exponential backoff.
    pub timeout_per_io: f64,
    /// Maximum retry attempts for a timed-out request before it is
    /// counted as lost.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each further attempt.
    pub retry_backoff: Duration,
    /// Per-disk Poisson rate (events per second) of latent sector
    /// errors landing while the disk is spun up (Active/Idle). Zero
    /// disables active-time corruption.
    pub lse_rate_active: f64,
    /// Per-disk Poisson rate of latent sector errors while the disk is
    /// spun down (Standby or spinning down). Spun-down disks typically
    /// accrue *more* latent errors per unit time than active ones —
    /// nobody reads them, so nothing surfaces the decay — which is the
    /// RoLo-E danger window the scrub engine exists to close.
    pub lse_rate_standby: f64,
    /// Size in bytes of each injected latent extent.
    pub lse_extent: u64,
    /// Array-wide Poisson rate (events per second) of correlated
    /// enclosure shocks. Each shock picks one enclosure and fails or
    /// corrupts several of its disks within `correlation_window`.
    pub shock_rate: f64,
    /// Probability that a shocked disk fails outright (vs. accruing a
    /// latent corrupt extent).
    pub shock_fail_prob: f64,
    /// Number of physically adjacent disks sharing one enclosure (the
    /// blast radius of a shock).
    pub shock_enclosure: usize,
    /// Window over which one shock's per-disk effects are spread.
    pub correlation_window: Duration,
    /// Seed for the fault RNG stream (forked from this value, not from
    /// the workload seed, so fault draws are reproducible in isolation).
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that injects no faults at all.
    pub fn none() -> Self {
        FaultPlan {
            disk_failures: Vec::new(),
            random_failure_rate: 0.0,
            media_error_per_read: 0.0,
            timeout_per_io: 0.0,
            max_retries: 3,
            retry_backoff: Duration::from_millis(10),
            lse_rate_active: 0.0,
            lse_rate_standby: 0.0,
            lse_extent: 64 * 1024,
            shock_rate: 0.0,
            shock_fail_prob: 0.5,
            shock_enclosure: 4,
            correlation_window: Duration::from_secs(5),
            seed: 0xFA_17,
        }
    }

    /// A plan that kills exactly one disk at one instant — the shape
    /// every crash-point replay study uses (kill a logger mid-write,
    /// then assert the replayed dirty maps match the survivors').
    pub fn single(disk: usize, at: Duration) -> Self {
        FaultPlan {
            disk_failures: vec![(disk, at)],
            ..FaultPlan::none()
        }
    }

    /// True if this plan can never produce a fault.
    pub fn is_none(&self) -> bool {
        self.disk_failures.is_empty()
            && self.random_failure_rate <= 0.0
            && self.media_error_per_read <= 0.0
            && self.timeout_per_io <= 0.0
            && !self.injects_lse()
            && self.shock_rate <= 0.0
    }

    /// True if the plan injects latent sector corruption.
    pub fn injects_lse(&self) -> bool {
        self.max_lse_rate() > 0.0
    }

    /// The larger of the two power-state LSE rates — the rate the
    /// candidate stream is pre-sampled at (Poisson thinning accepts a
    /// candidate with probability `rate(state) / max_rate` at fire
    /// time, so the accepted process has the state-dependent rate while
    /// the schedule itself stays deterministic).
    pub fn max_lse_rate(&self) -> f64 {
        self.lse_rate_active.max(self.lse_rate_standby)
    }

    /// Validates the plan against the physical disk count (which, unlike
    /// the geometry, includes GRAID's dedicated log disk).
    pub fn check(&self, disks: usize) -> Result<(), FaultPlanError> {
        for &(d, _) in &self.disk_failures {
            if d >= disks {
                return Err(FaultPlanError::DiskOutOfRange { disk: d, disks });
            }
        }
        for (name, p) in [
            ("media_error_per_read", self.media_error_per_read),
            ("timeout_per_io", self.timeout_per_io),
            ("shock_fail_prob", self.shock_fail_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(FaultPlanError::BadProbability { name, value: p });
            }
        }
        if self.random_failure_rate < 0.0 || !self.random_failure_rate.is_finite() {
            return Err(FaultPlanError::BadRate(self.random_failure_rate));
        }
        for (name, r) in [
            ("lse_rate_active", self.lse_rate_active),
            ("lse_rate_standby", self.lse_rate_standby),
            ("shock_rate", self.shock_rate),
        ] {
            if r < 0.0 || !r.is_finite() {
                return Err(FaultPlanError::BadKnob { name, value: r });
            }
        }
        if self.injects_lse() && self.lse_extent == 0 {
            return Err(FaultPlanError::BadExtent(self.lse_extent));
        }
        if self.shock_rate > 0.0 && self.shock_enclosure == 0 {
            return Err(FaultPlanError::BadEnclosure(self.shock_enclosure));
        }
        Ok(())
    }

    /// Expands the plan into a sorted schedule of whole-disk failure
    /// instants over `[0, horizon)`: the pinned failures plus Poisson
    /// arrivals assigned to uniformly-drawn disks. At most one failure
    /// is kept per disk (the earliest); later ones would hit an
    /// already-replaced slot and are dropped here rather than at run
    /// time so the schedule is inspectable up front.
    pub fn schedule(&self, disk_count: usize, horizon: Duration) -> Vec<(DiskId, SimTime)> {
        let mut raw: Vec<(DiskId, SimTime)> = self
            .disk_failures
            .iter()
            .filter(|&&(_, at)| at < horizon)
            .map(|&(d, at)| (d, SimTime::ZERO + at))
            .collect();
        if self.random_failure_rate > 0.0 && disk_count > 0 {
            let mut rng = SimRng::seed_from(self.seed).fork("fault-schedule");
            for t in schedule::exponential_arrivals(&mut rng, self.random_failure_rate, horizon) {
                raw.push((rng.below(disk_count as u64) as DiskId, t));
            }
        }
        raw.sort_by_key(|&(d, t)| (t, d));
        let mut seen = vec![false; disk_count];
        raw.retain(|&(d, _)| {
            let fresh = !seen[d];
            seen[d] = true;
            fresh
        });
        raw
    }

    /// Pre-samples the latent-sector-error *candidate* stream over
    /// `[0, horizon)`: per disk, Poisson arrivals at [`Self::max_lse_rate`],
    /// merged and sorted by `(time, disk)`. Each candidate is accepted
    /// or rejected at fire time against the disk's power state
    /// (thinning), so the schedule is independent of simulation
    /// dynamics and fully reproducible from the fault seed.
    pub fn lse_candidates(&self, disk_count: usize, horizon: Duration) -> Vec<(DiskId, SimTime)> {
        let rate = self.max_lse_rate();
        if rate <= 0.0 || disk_count == 0 {
            return Vec::new();
        }
        let mut out: Vec<(DiskId, SimTime)> = Vec::new();
        for d in 0..disk_count {
            let mut rng = SimRng::seed_from(self.seed).fork(&format!("lse-{d}"));
            for t in schedule::exponential_arrivals(&mut rng, rate, horizon) {
                out.push((d, t));
            }
        }
        out.sort_by_key(|&(d, t)| (t, d));
        out
    }

    /// Pre-samples the enclosure-shock instants over `[0, horizon)`.
    pub fn shock_instants(&self, horizon: Duration) -> Vec<SimTime> {
        if self.shock_rate <= 0.0 {
            return Vec::new();
        }
        let mut rng = SimRng::seed_from(self.seed).fork("shock-schedule");
        schedule::exponential_arrivals(&mut rng, self.shock_rate, horizon)
    }
}

/// A [`FaultPlan`] that failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A pinned failure names a disk outside the array.
    DiskOutOfRange {
        /// The out-of-range disk id.
        disk: DiskId,
        /// Number of disks in the array.
        disks: usize,
    },
    /// A probability field is outside `[0, 1]`.
    BadProbability {
        /// Field name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// `random_failure_rate` is negative or non-finite.
    BadRate(f64),
    /// A named corruption/shock rate knob is negative or non-finite.
    BadKnob {
        /// Field name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// `lse_extent` is zero while LSE injection is enabled.
    BadExtent(u64),
    /// `shock_enclosure` is zero while shocks are enabled.
    BadEnclosure(usize),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::DiskOutOfRange { disk, disks } => {
                write!(
                    f,
                    "fault plan names disk {disk} but the array has {disks} disks"
                )
            }
            FaultPlanError::BadProbability { name, value } => {
                write!(f, "fault plan {name} = {value} is not a probability")
            }
            FaultPlanError::BadRate(r) => {
                write!(
                    f,
                    "fault plan random_failure_rate = {r} is not a valid rate"
                )
            }
            FaultPlanError::BadKnob { name, value } => {
                write!(f, "fault plan {name} = {value} is not a valid rate")
            }
            FaultPlanError::BadExtent(e) => {
                write!(f, "fault plan lse_extent = {e} must be positive")
            }
            FaultPlanError::BadEnclosure(e) => {
                write!(f, "fault plan shock_enclosure = {e} must be positive")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Counters describing how the run weathered the injected faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// Whole-disk failures that were actually injected.
    pub disk_failures: u64,
    /// Scheduled failures suppressed because they would have produced a
    /// double fault within a mirror pair (data loss — out of scope for
    /// the degraded-mode study; the reliability crate models it).
    pub double_faults_suppressed: u64,
    /// Read completions reclassified as latent sector errors.
    pub media_errors: u64,
    /// I/O completions reclassified as transient timeouts.
    pub timeouts: u64,
    /// Retry submissions issued for timed-out requests.
    pub retries: u64,
    /// Requests that exhausted their retry budget and were counted lost.
    pub io_lost: u64,
    /// User reads redirected to a surviving copy.
    pub reads_redirected: u64,
    /// Delay between the first disk failure and the first successful
    /// redirect of a user read to a surviving copy.
    pub time_to_first_redirect: Option<Duration>,
    /// Total wall-clock time the array spent with at least one slot
    /// degraded (rebuild not yet complete).
    pub degraded_time: Duration,
    /// Rebuilds driven to completion during the run.
    pub rebuilds_completed: u64,
    /// Bytes written to replacement disks by the rebuild engine.
    pub rebuild_bytes: u64,
    /// Duration of each completed rebuild, in injection order.
    pub rebuild_durations: Vec<Duration>,
    /// Latent corrupt extents injected (LSE accrual plus shock
    /// corruption; overlapping injections onto an already-latent extent
    /// are skipped and not counted).
    pub lse_injected: u64,
    /// Latent extents detected by a foreground read's verify and
    /// repaired from the surviving mirror copy.
    pub lse_repaired_on_read: u64,
    /// Latent extents detected and repaired by the background scrub.
    pub lse_repaired_by_scrub: u64,
    /// Latent extents destroyed by being overwritten before any read
    /// observed them (a full-extent write replaces the bad data).
    pub lse_overwritten: u64,
    /// Latent extents that became unrecoverable: the mirror partner was
    /// dead or also corrupt when the extent was needed.
    pub lse_lost: u64,
    /// Latent extents still undetected when the run ended.
    pub lse_latent_at_end: u64,
    /// Complete scrub passes over a disk's data region.
    pub scrub_passes: u64,
    /// Scrub chunk reads issued.
    pub scrub_chunks: u64,
    /// Bytes verified by the scrub engine.
    pub scrub_bytes: u64,
    /// Correlated enclosure shocks injected.
    pub shocks_injected: u64,
}

impl FaultMetrics {
    /// Sum of the classified fates of injected latent extents. The
    /// zero-silent-corruption invariant is
    /// `lse_injected == lse_classified()`: every injected extent ends
    /// the run repaired (by scrub, by a read, or by an overwrite),
    /// counted lost, or still latent — never silently forgotten.
    pub fn lse_classified(&self) -> u64 {
        self.lse_repaired_on_read
            + self.lse_repaired_by_scrub
            + self.lse_overwritten
            + self.lse_lost
            + self.lse_latent_at_end
    }

    /// True if every injected latent extent is accounted for.
    pub fn lse_conserved(&self) -> bool {
        self.lse_injected == self.lse_classified()
    }

    /// Publishes the fault counters into `registry` under `faults.*`
    /// names, so they appear in the report's metrics export alongside
    /// the driver's own counters. Called by the driver at end of run.
    pub fn publish(&self, registry: &mut rolo_obs::MetricsRegistry) {
        let pairs: [(&str, u64); 19] = [
            ("faults.disk_failures", self.disk_failures),
            (
                "faults.double_faults_suppressed",
                self.double_faults_suppressed,
            ),
            ("faults.media_errors", self.media_errors),
            ("faults.timeouts", self.timeouts),
            ("faults.retries", self.retries),
            ("faults.io_lost", self.io_lost),
            ("faults.reads_redirected", self.reads_redirected),
            ("faults.rebuilds_completed", self.rebuilds_completed),
            ("faults.rebuild_bytes", self.rebuild_bytes),
            ("faults.lse_injected", self.lse_injected),
            ("faults.lse_repaired_on_read", self.lse_repaired_on_read),
            ("faults.lse_repaired_by_scrub", self.lse_repaired_by_scrub),
            ("faults.lse_overwritten", self.lse_overwritten),
            ("faults.lse_lost", self.lse_lost),
            ("faults.lse_latent_at_end", self.lse_latent_at_end),
            ("faults.scrub_passes", self.scrub_passes),
            ("faults.scrub_chunks", self.scrub_chunks),
            ("faults.scrub_bytes", self.scrub_bytes),
            ("faults.shocks_injected", self.shocks_injected),
        ];
        for (name, value) in pairs {
            let id = registry.counter(name);
            registry.inc(id, value);
        }
        let id = registry.gauge("faults.degraded_time_s");
        registry.set(id, self.degraded_time.as_secs_f64());
    }
}

/// The mirror partner that can serve a degraded slot's data, if any.
///
/// Primaries and mirrors are partners of each other; the GRAID log disk
/// (id ≥ `2 * pairs`) holds only redundant log copies and has no
/// partner.
pub fn surviving_partner(geometry: &ArrayGeometry, disk: DiskId) -> Option<DiskId> {
    let pairs = geometry.pairs();
    if disk < pairs {
        Some(geometry.mirror_disk(disk))
    } else if disk < 2 * pairs {
        Some(disk - pairs)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scheme, SimConfig};

    fn geo(scheme: Scheme) -> ArrayGeometry {
        SimConfig::paper_default(scheme, 4).geometry().unwrap()
    }

    #[test]
    fn none_plan_is_empty() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(plan.schedule(8, Duration::from_secs(1000)).is_empty());
        assert!(plan.check(8).is_ok());
    }

    #[test]
    fn check_rejects_bad_plans() {
        let mut plan = FaultPlan::none();
        plan.disk_failures.push((99, Duration::from_secs(1)));
        assert!(matches!(
            plan.check(8),
            Err(FaultPlanError::DiskOutOfRange { disk: 99, .. })
        ));
        let mut plan = FaultPlan::none();
        plan.media_error_per_read = 1.5;
        assert!(matches!(
            plan.check(8),
            Err(FaultPlanError::BadProbability { .. })
        ));
        let mut plan = FaultPlan::none();
        plan.random_failure_rate = -1.0;
        assert!(matches!(plan.check(8), Err(FaultPlanError::BadRate(_))));
    }

    #[test]
    fn schedule_merges_pinned_and_random_sorted() {
        let mut plan = FaultPlan::none();
        plan.disk_failures.push((3, Duration::from_secs(200)));
        plan.random_failure_rate = 0.01;
        plan.seed = 42;
        let sched = plan.schedule(8, Duration::from_secs(600));
        assert!(sched.iter().any(|&(d, _)| d == 3));
        assert!(sched.windows(2).all(|w| w[0].1 <= w[1].1));
        // At most one failure per disk survives dedup.
        let mut ids: Vec<_> = sched.iter().map(|&(d, _)| d).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sched.len());
    }

    #[test]
    fn schedule_drops_failures_past_horizon() {
        let mut plan = FaultPlan::none();
        plan.disk_failures.push((0, Duration::from_secs(999)));
        assert!(plan.schedule(8, Duration::from_secs(100)).is_empty());
    }

    #[test]
    fn schedule_keeps_earliest_per_disk() {
        let mut plan = FaultPlan::none();
        plan.disk_failures.push((2, Duration::from_secs(300)));
        plan.disk_failures.push((2, Duration::from_secs(100)));
        let sched = plan.schedule(8, Duration::from_secs(600));
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].1, SimTime::ZERO + Duration::from_secs(100));
    }

    #[test]
    fn check_rejects_bad_corruption_knobs() {
        let mut plan = FaultPlan::none();
        plan.lse_rate_active = -1.0;
        assert!(matches!(
            plan.check(8),
            Err(FaultPlanError::BadKnob {
                name: "lse_rate_active",
                ..
            })
        ));
        let mut plan = FaultPlan::none();
        plan.lse_rate_standby = f64::NAN;
        assert!(matches!(plan.check(8), Err(FaultPlanError::BadKnob { .. })));
        let mut plan = FaultPlan::none();
        plan.shock_rate = f64::INFINITY;
        assert!(matches!(
            plan.check(8),
            Err(FaultPlanError::BadKnob {
                name: "shock_rate",
                ..
            })
        ));
        let mut plan = FaultPlan::none();
        plan.shock_fail_prob = 1.5;
        assert!(matches!(
            plan.check(8),
            Err(FaultPlanError::BadProbability {
                name: "shock_fail_prob",
                ..
            })
        ));
        let mut plan = FaultPlan::none();
        plan.lse_rate_standby = 0.1;
        plan.lse_extent = 0;
        assert!(matches!(plan.check(8), Err(FaultPlanError::BadExtent(0))));
        let mut plan = FaultPlan::none();
        plan.shock_rate = 0.1;
        plan.shock_enclosure = 0;
        assert!(matches!(
            plan.check(8),
            Err(FaultPlanError::BadEnclosure(0))
        ));
        // A zero extent without LSE injection is fine: the knob is
        // inert, so it must not invalidate an otherwise-sound plan.
        let mut plan = FaultPlan::none();
        plan.lse_extent = 0;
        assert!(plan.check(8).is_ok());
    }

    #[test]
    fn lse_knobs_count_as_faults() {
        let mut plan = FaultPlan::none();
        plan.lse_rate_standby = 0.5;
        assert!(!plan.is_none());
        assert!(plan.injects_lse());
        let mut plan = FaultPlan::none();
        plan.shock_rate = 0.5;
        assert!(!plan.is_none());
        assert!(!plan.injects_lse());
    }

    #[test]
    fn lse_candidates_sorted_and_reproducible() {
        let mut plan = FaultPlan::none();
        plan.lse_rate_active = 0.01;
        plan.lse_rate_standby = 0.05;
        plan.seed = 7;
        let horizon = Duration::from_secs(3600);
        let a = plan.lse_candidates(4, horizon);
        let b = plan.lse_candidates(4, horizon);
        assert_eq!(a, b, "candidate schedule must be seed-deterministic");
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| (w[0].1, w[0].0) <= (w[1].1, w[1].0)));
        assert!(a.iter().all(|&(d, _)| d < 4));
        assert!(plan.lse_candidates(0, horizon).is_empty());
        assert!(FaultPlan::none().lse_candidates(4, horizon).is_empty());
    }

    #[test]
    fn shock_instants_reproducible() {
        let mut plan = FaultPlan::none();
        plan.shock_rate = 0.01;
        plan.seed = 11;
        let horizon = Duration::from_secs(3600);
        let a = plan.shock_instants(horizon);
        assert_eq!(a, plan.shock_instants(horizon));
        assert!(!a.is_empty());
        assert!(FaultPlan::none().shock_instants(horizon).is_empty());
    }

    #[test]
    fn lse_conservation_helper() {
        let mut m = FaultMetrics::default();
        assert!(m.lse_conserved());
        m.lse_injected = 5;
        m.lse_repaired_on_read = 1;
        m.lse_repaired_by_scrub = 2;
        m.lse_lost = 1;
        assert!(!m.lse_conserved());
        m.lse_latent_at_end = 1;
        assert!(m.lse_conserved());
        assert_eq!(m.lse_classified(), 5);
    }

    #[test]
    fn surviving_partner_maps_pairs() {
        let g = geo(Scheme::Graid);
        let pairs = g.pairs();
        assert_eq!(surviving_partner(&g, 0), Some(pairs));
        assert_eq!(surviving_partner(&g, pairs), Some(0));
        assert_eq!(surviving_partner(&g, 2 * pairs), None); // GRAID log disk
    }
}
