//! The simulation driver: event loop tying traces, policies and disks
//! together.
//!
//! The driver owns the event queue. Policies accumulate disk wakes and
//! timers in the [`SimCtx`]; after every callback the driver drains them
//! into the queue. A `TraceEnd` marker event at the configured duration
//! snapshots all comparable metrics (energy, spin counts, phase ratios)
//! *before* the drain phase, so schemes with different amounts of
//! leftover destage work still compare over identical wall time. The
//! drain then pushes every stale block to its mirror and the policy's
//! consistency audit runs — the master invariant of the whole simulator.

use crate::config::SimConfig;
use crate::ctx::{ShockEffect, SimCtx, WakeKind};
use crate::policy::Policy;
use crate::report::SimReport;
use rolo_disk::{DiskEnergyReport, DiskId, DiskRequest, DiskWake, IoOutcome};
use rolo_metrics::Phase;
use rolo_obs::{ExemplarSet, RcaReport};
use rolo_obs::{NullSink, RunProfile, SimEvent, SloAlert, SpanSet, TelemetrySnapshot, TraceSink};
use rolo_sim::{CalendarQueue, Duration, SimTime};
use rolo_trace::TraceRecord;
use std::time::Instant;

/// Disk events carry the slot's replacement epoch at scheduling time:
/// when a disk dies mid-flight its queued wakes must not be delivered to
/// the hot spare that reuses its slot, so delivery drops any event whose
/// epoch is stale.
#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival,
    DiskIo(DiskId, u32),
    DiskSpinUp(DiskId, u32),
    DiskSpinDown(DiskId, u32),
    DiskBgRetry(DiskId, u32),
    Timer(u64),
    PowerSample,
    DiskFail(DiskId),
    IoRetry(DiskId, u32, DiskRequest),
    /// A pre-sampled latent-sector-error candidate on a disk; the context
    /// thins it by the disk's current power state.
    LseCandidate(DiskId),
    /// A correlated enclosure shock; expands into per-disk effects.
    Shock,
    /// A delayed shock effect: corrupt one extent of a disk.
    CorruptAt(DiskId, u64),
    /// Periodic scrub scheduling slot (only scheduled when enabled).
    ScrubTick,
    TraceEnd,
}

/// Everything a run observed out-of-band of its [`SimReport`]: the
/// trace sink, per-request spans (when enabled), the telemetry
/// snapshot (when enabled) and every SLO alert raised online. All of
/// it is observational — none of it feeds back into the simulation —
/// so the report stays byte-identical no matter which parts are on.
#[derive(Debug)]
pub struct RunObservations {
    /// The trace sink handed in by the caller, for draining.
    pub sink: Box<dyn TraceSink>,
    /// Completed request/background spans, when span recording was on.
    pub spans: Option<SpanSet>,
    /// Retained telemetry windows, when telemetry was on.
    pub telemetry: Option<TelemetrySnapshot>,
    /// SLO alerts raised during the run, in emission order.
    pub slo_alerts: Vec<SloAlert>,
    /// Windowed tail exemplars (the top-k slowest spans per telemetry
    /// window, DESIGN.md §14), when capture was on. Empty unless span
    /// recording also ran — the recorder needs finished spans.
    pub exemplars: Option<ExemplarSet>,
    /// Root-cause attribution of every SLO alert window, when
    /// [`crate::SimConfig::rca_enabled`].
    pub rca: Option<RcaReport>,
}

/// Snapshot captured at the `TraceEnd` marker.
#[derive(Debug, Default)]
struct TraceEndSnapshot {
    energy_by_disk: Vec<DiskEnergyReport>,
    spin_cycles: u64,
    interval_ratio: f64,
    energy_ratio: f64,
    logging: rolo_metrics::PhaseSummary,
    destaging: rolo_metrics::PhaseSummary,
}

/// Runs `policy` over `records` for `duration`, then drains and audits.
///
/// Records with arrivals at or beyond `duration` are ignored. Offsets are
/// wrapped into the array's logical address space, so traces larger than
/// the array replay without modification.
///
/// # Panics
///
/// Panics if the configuration is invalid or the simulation stalls (a
/// policy bug: events exhausted while work remains).
pub fn run_trace<P: Policy>(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    policy: P,
    duration: Duration,
) -> SimReport {
    run_trace_returning(cfg, records, policy, duration).0
}

/// Like [`run_trace`], but also hands the policy back so callers can
/// inspect its end state (e.g. feed a live logger history into
/// [`crate::recovery::recovery_plan`]).
pub fn run_trace_returning<P: Policy>(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    policy: P,
    duration: Duration,
) -> (SimReport, P) {
    let (report, policy, _sink) =
        run_trace_with_sink(cfg, records, policy, duration, Box::new(NullSink));
    (report, policy)
}

/// Like [`run_trace_returning`], but exposes every out-of-band
/// observation stream at once — trace sink, spans (when `spans`),
/// telemetry snapshot and SLO alerts. This is the entry point of the
/// `metrics_export` tool, which needs all of them for one run.
pub fn run_trace_observed<P: Policy>(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    policy: P,
    duration: Duration,
    sink: Box<dyn TraceSink>,
    spans: bool,
) -> (SimReport, P, RunObservations) {
    run_trace_inner(cfg, records, policy, duration, sink, spans)
}

/// Like [`run_trace_returning`], but records structured [`SimEvent`]s
/// into `sink` and hands the sink back for draining (see `rolo_obs`).
///
/// With a recording sink the run produces the *same* [`SimReport`]
/// modulo the wall-clock [`RunProfile`]: tracing must never perturb the
/// simulation.
pub fn run_trace_with_sink<P: Policy>(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    policy: P,
    duration: Duration,
    sink: Box<dyn TraceSink>,
) -> (SimReport, P, Box<dyn TraceSink>) {
    let (report, policy, obs) = run_trace_inner(cfg, records, policy, duration, sink, false);
    (report, policy, obs.sink)
}

/// Like [`run_trace_returning`], but records a per-request span tree
/// (see [`rolo_obs::RequestSpan`]): each user request is followed from
/// admission to completion, every foreground sub-I/O becomes a typed
/// leg, and destage/rebuild cycles become background spans linked to
/// the foreground requests they delayed.
///
/// Span recording is observational only: the returned [`SimReport`] is
/// byte-identical (modulo the wall-clock profile) to an unspanned run.
pub fn run_trace_spanned<P: Policy>(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    policy: P,
    duration: Duration,
) -> (SimReport, P, SpanSet) {
    let (report, policy, obs) =
        run_trace_inner(cfg, records, policy, duration, Box::new(NullSink), true);
    (
        report,
        policy,
        obs.spans.expect("span recording was enabled"),
    )
}

fn run_trace_inner<P: Policy>(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    mut policy: P,
    duration: Duration,
    sink: Box<dyn TraceSink>,
    spans: bool,
) -> (SimReport, P, RunObservations) {
    if let Err(e) = cfg.check() {
        panic!("invalid configuration: {e}");
    }
    let wall_start = Instant::now();
    let geometry = cfg.geometry().expect("invalid geometry");
    let standby: Vec<bool> = (0..cfg.disk_count())
        .map(|d| policy.initial_standby(d))
        .collect();
    let mut ctx = SimCtx::with_sink(cfg, geometry, &standby, sink);
    if spans || cfg.rca_enabled {
        // RCA needs finished spans for exemplar critical paths and
        // `delayed_by` causality; span recording is observational, so
        // forcing it on cannot change the report.
        ctx.enable_spans();
    }
    // The production future-event list: a bucketed calendar queue with
    // the same `(time, seq)` delivery contract as the legacy binary-heap
    // `EventQueue` (differentially tested in `rolo-sim`). The two drain
    // scratch vectors are reused across every step of the run, so the
    // wake/timer hand-off allocates nothing once warmed up.
    let mut queue: CalendarQueue<Event> = CalendarQueue::new();
    let mut scratch = DrainScratch::default();
    let logical_capacity = ctx.geometry().logical_capacity();

    for d in 0..ctx.disk_count() {
        let state = ctx.disk(d).power_state();
        ctx.emit(|| SimEvent::DiskInit { disk: d, state });
    }

    policy.attach(&mut ctx);
    drain_ctx(&mut ctx, &mut queue, &mut scratch);

    let mut records = records.into_iter().peekable();
    let trace_end = SimTime::ZERO + duration;
    queue.schedule(trace_end, Event::TraceEnd);
    for (disk, at) in cfg.faults.schedule(cfg.disk_count(), duration) {
        ctx.emit(|| SimEvent::FaultScheduled {
            disk,
            at_us: at.as_micros(),
        });
        queue.schedule(at, Event::DiskFail(disk));
    }
    // Latent-error candidates are pre-sampled per disk at the maximum
    // configured rate; the context thins each by the disk's power state
    // at fire time, so only the accept/reject draw depends on the
    // workload-driven power trajectory.
    for (disk, at) in cfg.faults.lse_candidates(2 * cfg.pairs, duration) {
        queue.schedule(at, Event::LseCandidate(disk));
    }
    for at in cfg.faults.shock_instants(duration) {
        queue.schedule(at, Event::Shock);
    }
    // Sample aggregate power ~1000 times over the window (min 1 s apart).
    let sample_every = Duration::from_micros((duration.as_micros() / 1000).max(1_000_000));
    queue.schedule(SimTime::ZERO + sample_every, Event::PowerSample);
    if cfg.scrub_enabled {
        queue.schedule(SimTime::ZERO + cfg.scrub_interval, Event::ScrubTick);
    }
    if let Some(first) = records.peek() {
        if first.arrival < trace_end {
            queue.schedule(first.arrival, Event::Arrival);
        }
    }

    let mut next_user_id: u64 = 1;
    let mut snapshot: Option<TraceEndSnapshot> = None;
    let mut trace_done = false;
    let mut stall_kicks = 0u32;
    let mut wall_replay: Option<std::time::Duration> = None;

    loop {
        let Some(ev) = queue.pop() else {
            if !trace_done {
                panic!("event queue empty before trace end");
            }
            if policy.is_drained(&ctx) {
                break;
            }
            // Kick the drain; a correct policy makes progress or is done.
            stall_kicks += 1;
            assert!(
                stall_kicks < 64,
                "{}: simulation stalled during drain: {} users outstanding; consistency: {:?}",
                policy.name(),
                ctx.outstanding_users(),
                policy.check_consistency(&ctx)
            );
            policy.begin_drain(&mut ctx);
            drain_ctx(&mut ctx, &mut queue, &mut scratch);
            if queue.is_empty() {
                assert!(
                    policy.is_drained(&ctx),
                    "{}: drain cannot make progress (policy bug); consistency: {:?}",
                    policy.name(),
                    policy.check_consistency(&ctx)
                );
                break;
            }
            continue;
        };
        ctx.now = ev.time;
        match ev.payload {
            Event::Arrival => {
                let rec = records.next().expect("arrival without record");
                let rec = clamp_record(rec, logical_capacity, cfg.stripe_unit);
                let id = next_user_id;
                next_user_id += 1;
                ctx.emit(|| SimEvent::RequestArrive {
                    id,
                    kind: rec.kind,
                    offset: rec.offset,
                    bytes: rec.bytes,
                });
                policy.on_user_request(&mut ctx, id, &rec);
                if let Some(next) = records.peek() {
                    if next.arrival < trace_end {
                        queue.schedule(next.arrival.max(ctx.now), Event::Arrival);
                    } else {
                        trace_done = true;
                    }
                } else {
                    trace_done = true;
                }
            }
            Event::DiskIo(d, ep) => {
                if ctx.epoch_live(d, ep) {
                    let req = ctx
                        .deliver_wake(d, WakeKind::Io)
                        .expect("io wake returns the request");
                    if ctx.is_rebuild_io(req.id) {
                        // Rebuild traffic is exempt from fault
                        // classification: the copy loop must terminate.
                        ctx.on_rebuild_io(&req);
                    } else if ctx.is_scrub_io(req.id) {
                        // Scrub traffic verifies the integrity map
                        // directly; Bernoulli faults do not apply.
                        ctx.on_scrub_io(&req);
                    } else {
                        match ctx.classify_completion(d, &req) {
                            IoOutcome::Ok => policy.on_io_complete(&mut ctx, d, req),
                            IoOutcome::MediaError => {
                                policy.on_io_error(&mut ctx, d, req, IoOutcome::MediaError);
                            }
                            IoOutcome::Timeout => match ctx.note_timeout(req.id) {
                                Some(backoff) => {
                                    let retry = Event::IoRetry(d, ctx.epoch(d), req);
                                    queue.schedule(ctx.now + backoff, retry);
                                }
                                None => {
                                    policy.on_io_error(&mut ctx, d, req, IoOutcome::Timeout);
                                }
                            },
                            IoOutcome::DiskDead => unreachable!("classification never kills"),
                        }
                    }
                }
            }
            Event::DiskSpinUp(d, ep) => {
                if ctx.epoch_live(d, ep) {
                    ctx.deliver_wake(d, WakeKind::SpinUp);
                    policy.on_spin_up(&mut ctx, d);
                }
            }
            Event::DiskSpinDown(d, ep) => {
                if ctx.epoch_live(d, ep) {
                    ctx.deliver_wake(d, WakeKind::SpinDown);
                    policy.on_spin_down(&mut ctx, d);
                }
            }
            Event::DiskBgRetry(d, ep) => {
                if ctx.epoch_live(d, ep) {
                    ctx.deliver_wake(d, WakeKind::BgRetry);
                }
            }
            Event::DiskFail(d) => {
                if let Some(aborted) = ctx.fail_disk(d) {
                    policy.on_disk_failure(&mut ctx, d);
                    for req in aborted {
                        // An aborted sub-I/O never completes on the media:
                        // drop its span tag (the error path may re-tag a
                        // redirected replacement under a fresh id).
                        ctx.untag_io(req.id);
                        policy.on_io_error(&mut ctx, d, req, IoOutcome::DiskDead);
                    }
                }
            }
            Event::IoRetry(d, ep, req) => {
                if ctx.epoch_live(d, ep) {
                    ctx.submit_with_id(d, req.id, req.kind, req.offset, req.bytes, req.priority);
                } else {
                    // The disk died while the retry waited out its
                    // backoff; hand the request to the error path so its
                    // accounting still closes.
                    policy.on_io_error(&mut ctx, d, req, IoOutcome::DiskDead);
                }
            }
            Event::Timer(token) => {
                policy.on_timer(&mut ctx, token);
            }
            Event::LseCandidate(d) => {
                ctx.on_lse_candidate(d);
            }
            Event::Shock => {
                for (delay, effect) in ctx.expand_shock() {
                    let at = ctx.now + delay;
                    match effect {
                        ShockEffect::Fail(d) => {
                            queue.schedule(at, Event::DiskFail(d));
                        }
                        ShockEffect::Corrupt(d, off) => {
                            queue.schedule(at, Event::CorruptAt(d, off));
                        }
                    }
                }
            }
            Event::CorruptAt(d, off) => {
                ctx.apply_corruption(d, off);
            }
            Event::ScrubTick => {
                ctx.on_scrub_tick();
                let now = ctx.now;
                if now + cfg.scrub_interval < trace_end {
                    queue.schedule(now + cfg.scrub_interval, Event::ScrubTick);
                }
            }
            Event::PowerSample => {
                let w = ctx.total_power_w();
                let now = ctx.now;
                ctx.power_timeline.push(now, w);
                ctx.sample_metrics();
                if now + sample_every < trace_end {
                    queue.schedule(now + sample_every, Event::PowerSample);
                }
            }
            Event::TraceEnd => {
                trace_done = true;
                wall_replay = Some(wall_start.elapsed());
                ctx.emit(|| SimEvent::TraceEnded);
                snapshot = Some(TraceEndSnapshot {
                    energy_by_disk: ctx.energy_by_disk(),
                    spin_cycles: ctx.spin_cycles(),
                    interval_ratio: ctx.intervals.interval_ratio(Phase::Destaging),
                    energy_ratio: ctx.intervals.energy_ratio(Phase::Destaging),
                    logging: ctx.intervals.summary(Phase::Logging),
                    destaging: ctx.intervals.summary(Phase::Destaging),
                });
                policy.begin_drain(&mut ctx);
            }
        }
        for slot in ctx.take_finished_rebuilds() {
            policy.on_rebuild_complete(&mut ctx, slot);
        }
        drain_ctx(&mut ctx, &mut queue, &mut scratch);
        if trace_done && snapshot.is_some() && queue.is_empty() && policy.is_drained(&ctx) {
            break;
        }
    }
    ctx.finalize_faults();

    // Export fault and controller counters into the registry and take a
    // final snapshot at the drained time, so exported timelines cover
    // the whole run.
    let fault_totals = ctx.faults.clone();
    fault_totals.publish(&mut ctx.metrics);
    policy.stats().publish(&mut ctx.metrics);
    ctx.sample_metrics();

    let wall_total = wall_start.elapsed();
    let wall_replay = wall_replay.unwrap_or(wall_total);
    let sink = ctx.take_sink();
    let profile = RunProfile {
        sink: sink.name().to_string(),
        wall_replay_us: wall_replay.as_micros() as u64,
        wall_drain_us: (wall_total - wall_replay).as_micros() as u64,
        wall_total_us: wall_total.as_micros() as u64,
        events_processed: queue.popped_total(),
        events_scheduled: queue.scheduled_total(),
        events_per_sec: queue.popped_total() as f64 / wall_total.as_secs_f64().max(1e-9),
        trace_events_recorded: sink.recorded(),
        trace_events_dropped: sink.dropped(),
    };

    let snapshot = snapshot.unwrap_or_default();
    let aggregate = snapshot
        .energy_by_disk
        .iter()
        .fold(DiskEnergyReport::default(), |acc, r| acc.merged(r));
    let consistency = policy.check_consistency(&ctx);
    let report = SimReport {
        scheme: policy.name().to_owned(),
        trace_duration: duration,
        drained_at: ctx.now.since(SimTime::ZERO),
        user_requests: ctx.responses.count(),
        total_energy_j: aggregate.total_joules,
        energy_by_disk: snapshot.energy_by_disk,
        aggregate_energy: aggregate,
        spin_cycles: snapshot.spin_cycles,
        responses: ctx.responses.clone(),
        read_responses: ctx.read_responses.clone(),
        write_responses: ctx.write_responses.clone(),
        logging_phase: snapshot.logging,
        destaging_phase: snapshot.destaging,
        destaging_interval_ratio: snapshot.interval_ratio,
        destaging_energy_ratio: snapshot.energy_ratio,
        log_capacity_timeline: ctx
            .log_timeline
            .samples()
            .iter()
            .map(|(t, v)| (t.as_secs_f64(), *v))
            .collect(),
        power_timeline: ctx
            .power_timeline
            .samples()
            .iter()
            .map(|(t, v)| (t.as_secs_f64(), *v))
            .collect(),
        policy: policy.stats(),
        faults: ctx.faults.clone(),
        degraded_responses: ctx.degraded_responses.clone(),
        consistency,
        metrics: ctx.metrics.export(),
        profile,
    };
    let run_spans = ctx.take_spans();
    let exemplars = ctx.take_exemplars();
    let slo_alerts = ctx.take_slo_alerts();
    let rca = cfg.rca_enabled.then(|| {
        let bg: &[rolo_obs::BgSpan] = run_spans
            .as_ref()
            .map(|s| s.background.as_slice())
            .unwrap_or(&[]);
        let exm = exemplars
            .as_ref()
            .expect("rca_enabled implies exemplar capture (SimConfig::check)");
        rolo_obs::rca::analyze(&slo_alerts, exm, bg)
    });
    let obs = RunObservations {
        sink,
        spans: run_spans,
        telemetry: ctx.take_telemetry(),
        slo_alerts,
        exemplars,
        rca,
    };
    (report, policy, obs)
}

/// Wraps a record into the logical address space, aligned and clipped.
fn clamp_record(mut rec: TraceRecord, capacity: u64, align: u64) -> TraceRecord {
    rec.bytes = rec.bytes.clamp(1, capacity.min(4 << 20));
    let span = capacity - rec.bytes;
    if rec.offset > span {
        rec.offset %= span.max(1);
    }
    rec.offset = (rec.offset / align) * align;
    rec
}

/// Reusable scratch buffers for the wake/timer drain: swapped with the
/// context's pending vectors each step instead of allocating fresh ones
/// (the pre-rewrite `take_wakes`/`take_timers` pattern allocated two
/// `Vec`s per delivered event).
#[derive(Debug, Default)]
struct DrainScratch {
    wakes: Vec<(DiskId, DiskWake)>,
    timers: Vec<(SimTime, u64)>,
}

fn drain_ctx(ctx: &mut SimCtx, queue: &mut CalendarQueue<Event>, scratch: &mut DrainScratch) {
    while ctx.has_pending() {
        ctx.drain_wakes_into(&mut scratch.wakes);
        ctx.drain_timers_into(&mut scratch.timers);
        for (disk, wake) in scratch.wakes.drain(..) {
            let ep = ctx.epoch(disk);
            let ev = match wake {
                DiskWake::Io(_) => Event::DiskIo(disk, ep),
                DiskWake::SpinUp(_) => Event::DiskSpinUp(disk, ep),
                DiskWake::SpinDown(_) => Event::DiskSpinDown(disk, ep),
                DiskWake::BgRetry(_) => Event::DiskBgRetry(disk, ep),
            };
            queue.schedule(wake.due(), ev);
        }
        for (due, token) in scratch.timers.drain(..) {
            queue.schedule(due, Event::Timer(token));
        }
    }
}

/// Builds the policy for `cfg.scheme` and runs the trace — the main entry
/// point used by examples and the experiment harness.
pub fn run_scheme(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    duration: Duration,
) -> SimReport {
    run_scheme_with_sink(cfg, records, duration, Box::new(NullSink)).0
}

/// Like [`run_scheme`], but records trace events into `sink` and hands
/// it back for draining — the entry point of the `trace_dump` tool.
pub fn run_scheme_with_sink(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    duration: Duration,
    sink: Box<dyn TraceSink>,
) -> (SimReport, Box<dyn TraceSink>) {
    let (report, obs) = run_scheme_observed(cfg, records, duration, sink, false);
    (report, obs.sink)
}

/// Like [`run_scheme`], but with per-request span recording on — the
/// entry point of the `span_report` and `bench_report` tools. Returns
/// the report plus every completed request span and background
/// (destage/rebuild) span of the run.
pub fn run_scheme_spanned(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    duration: Duration,
) -> (SimReport, SpanSet) {
    let (report, obs) = run_scheme_observed(cfg, records, duration, Box::new(NullSink), true);
    (report, obs.spans.expect("span recording was enabled"))
}

/// Like [`run_scheme`], but exposes every out-of-band observation
/// stream at once: the trace sink, spans (when `spans` is set), the
/// telemetry snapshot and the run's SLO alerts — the entry point of
/// the `metrics_export` tool.
pub fn run_scheme_observed(
    cfg: &SimConfig,
    records: impl IntoIterator<Item = TraceRecord>,
    duration: Duration,
    sink: Box<dyn TraceSink>,
    spans: bool,
) -> (SimReport, RunObservations) {
    use crate::config::Scheme;
    let geo = cfg.geometry().expect("invalid geometry");
    match cfg.scheme {
        Scheme::Raid10 => {
            let (report, _, obs) = run_trace_inner(
                cfg,
                records,
                crate::raid10::Raid10Policy::new(),
                duration,
                sink,
                spans,
            );
            (report, obs)
        }
        Scheme::Graid => {
            let mut policy = crate::graid::GraidPolicy::new(
                cfg.pairs,
                cfg.graid_log_disk(),
                cfg.graid_log_capacity,
                cfg.destage_threshold,
                cfg.destage_chunk,
            );
            policy.set_segment_tuning(cfg.log_segment, cfg.archive_ttl);
            let (report, _, obs) = run_trace_inner(cfg, records, policy, duration, sink, spans);
            (report, obs)
        }
        Scheme::RoloP | Scheme::RoloR => {
            let flavor = if cfg.scheme == Scheme::RoloP {
                crate::rolo::RoloFlavor::Performance
            } else {
                crate::rolo::RoloFlavor::Reliability
            };
            let mut policy = crate::rolo::RoloPolicy::new(
                flavor,
                cfg.pairs,
                geo.logger_base(),
                geo.logger_region(),
                cfg.rotate_free_threshold,
                cfg.destage_chunk,
            );
            policy.set_eager_spinup(cfg.eager_spinup);
            policy.set_segment_tuning(cfg.log_segment, cfg.compact_live_frac, cfg.archive_ttl);
            if cfg.rolo_on_duty > 1 {
                policy.set_on_duty_loggers(cfg.rolo_on_duty);
            }
            let (report, _, obs) = run_trace_inner(cfg, records, policy, duration, sink, spans);
            (report, obs)
        }
        Scheme::RoloE => {
            let mut policy = crate::roloe::RoloEPolicy::new(
                cfg.pairs,
                geo.logger_base(),
                geo.logger_region(),
                cfg.stripe_unit,
                cfg.destage_threshold,
                cfg.destage_chunk,
                cfg.roloe_idle_spindown,
                cfg.roloe_cache_fraction,
            );
            policy.set_segment_tuning(cfg.log_segment, cfg.archive_ttl);
            if cfg.rolo_on_duty > 1 {
                policy.set_on_duty_pairs(cfg.rolo_on_duty);
            }
            let (report, _, obs) = run_trace_inner(cfg, records, policy, duration, sink, spans);
            (report, obs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolo_trace::ReqKind;

    fn rec(offset: u64, bytes: u64) -> TraceRecord {
        TraceRecord::new(SimTime::ZERO, ReqKind::Write, offset, bytes)
    }

    #[test]
    fn clamp_wraps_and_aligns() {
        let cap = 1 << 30;
        let r = clamp_record(rec(cap + 12345, 4096), cap, 4096);
        assert!(r.end() <= cap);
        assert_eq!(r.offset % 4096, 0);
    }

    #[test]
    fn clamp_caps_giant_requests() {
        let cap = 1 << 30;
        let r = clamp_record(rec(0, 1 << 40), cap, 4096);
        assert!(r.bytes <= 4 << 20);
    }

    #[test]
    fn clamp_preserves_in_range() {
        let cap = 1 << 30;
        let r = clamp_record(rec(8192, 65536), cap, 4096);
        assert_eq!((r.offset, r.bytes), (8192, 65536));
    }
}
