//! Tracking of inconsistent (stale) mirror extents per mirrored pair.
//!
//! While writes are redirected to a logger, the write-targeted mirror
//! copies go stale. Each pair's stale extents are kept as a set of
//! disjoint, maximally-merged byte ranges over the pair's physical disk
//! offsets. Destage processes drain the map front-to-back, bundling
//! contiguous blocks into large destage I/Os (§VI: "spatial locality is
//! exploited to bundle as many data blocks with successive location as
//! possible in one destaging I/O operation").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Disjoint, merged set of stale extents for one mirrored pair.
///
/// # Example
///
/// ```
/// use rolo_core::dirty::DirtyMap;
///
/// let mut d = DirtyMap::new();
/// d.mark(0, 4096);
/// d.mark(4096, 4096);           // adjacent: merges
/// assert_eq!(d.extent_count(), 1);
/// assert_eq!(d.bytes(), 8192);
/// let (off, len) = d.take_next(1 << 20).unwrap();
/// assert_eq!((off, len), (0, 8192));
/// assert!(d.is_clean());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtyMap {
    /// offset → length; disjoint and non-adjacent.
    extents: BTreeMap<u64, u64>,
    bytes: u64,
}

impl DirtyMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total stale bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of disjoint extents.
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// True if nothing is stale.
    pub fn is_clean(&self) -> bool {
        self.extents.is_empty()
    }

    /// Marks `[offset, offset + len)` stale, merging with any overlapping
    /// or adjacent extents.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn mark(&mut self, offset: u64, len: u64) {
        assert!(len > 0, "zero-length dirty extent");
        let mut start = offset;
        let mut end = offset + len;
        // Absorb a predecessor that overlaps or touches us.
        if let Some((&poff, &plen)) = self.extents.range(..=start).next_back() {
            if poff + plen >= start {
                start = poff;
                end = end.max(poff + plen);
                self.bytes -= plen;
                self.extents.remove(&poff);
            }
        }
        // Absorb successors that start within (or adjacent to) us.
        while let Some((&soff, &slen)) = self.extents.range(start..).next() {
            if soff > end {
                break;
            }
            end = end.max(soff + slen);
            self.bytes -= slen;
            self.extents.remove(&soff);
        }
        self.extents.insert(start, end - start);
        self.bytes += end - start;
    }

    /// Removes and returns the lowest-addressed stale run, clipped to
    /// `max_bytes` — the next destage I/O.
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is zero.
    pub fn take_next(&mut self, max_bytes: u64) -> Option<(u64, u64)> {
        assert!(max_bytes > 0, "zero-length destage chunk");
        let (&off, &len) = self.extents.iter().next()?;
        self.extents.remove(&off);
        if len > max_bytes {
            self.extents.insert(off + max_bytes, len - max_bytes);
            self.bytes -= max_bytes;
            Some((off, max_bytes))
        } else {
            self.bytes -= len;
            Some((off, len))
        }
    }

    /// Removes any staleness within `[offset, offset + len)` (e.g. the
    /// range was just overwritten in place on the mirror).
    pub fn clear_range(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = offset + len;
        // Predecessor straddling the start.
        if let Some((&poff, &plen)) = self.extents.range(..offset).next_back() {
            if poff + plen > offset {
                self.extents.remove(&poff);
                self.bytes -= plen;
                self.extents.insert(poff, offset - poff);
                self.bytes += offset - poff;
                if poff + plen > end {
                    self.extents.insert(end, poff + plen - end);
                    self.bytes += poff + plen - end;
                }
            }
        }
        // Extents starting within the range.
        while let Some((&soff, &slen)) = self.extents.range(offset..).next() {
            if soff >= end {
                break;
            }
            self.extents.remove(&soff);
            self.bytes -= slen;
            if soff + slen > end {
                self.extents.insert(end, soff + slen - end);
                self.bytes += soff + slen - end;
            }
        }
    }

    /// Iterates over the stale extents in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.extents.iter().map(|(&o, &l)| (o, l))
    }

    /// Debug invariant check: extents disjoint, non-adjacent, accounted.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end: Option<u64> = None;
        let mut total = 0;
        for (&off, &len) in &self.extents {
            if len == 0 {
                return Err(format!("zero-length extent at {off}"));
            }
            if let Some(pe) = prev_end {
                if off < pe {
                    return Err(format!("overlap at {off}"));
                }
                if off == pe {
                    return Err(format!("unmerged adjacency at {off}"));
                }
            }
            prev_end = Some(off + len);
            total += len;
        }
        if total != self.bytes {
            return Err("byte accounting out of sync".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mark_merges_overlap() {
        let mut d = DirtyMap::new();
        d.mark(100, 100);
        d.mark(150, 100); // overlaps
        assert_eq!(d.extent_count(), 1);
        assert_eq!(d.bytes(), 150);
        d.check_invariants().unwrap();
    }

    #[test]
    fn mark_merges_spanning_several() {
        let mut d = DirtyMap::new();
        d.mark(0, 10);
        d.mark(20, 10);
        d.mark(40, 10);
        d.mark(5, 40); // swallows all three
        assert_eq!(d.extent_count(), 1);
        assert_eq!(d.bytes(), 50);
        d.check_invariants().unwrap();
    }

    #[test]
    fn disjoint_marks_stay_disjoint() {
        let mut d = DirtyMap::new();
        d.mark(0, 10);
        d.mark(100, 10);
        assert_eq!(d.extent_count(), 2);
        assert_eq!(d.bytes(), 20);
    }

    #[test]
    fn take_next_clips() {
        let mut d = DirtyMap::new();
        d.mark(0, 1000);
        assert_eq!(d.take_next(300), Some((0, 300)));
        assert_eq!(d.take_next(300), Some((300, 300)));
        assert_eq!(d.bytes(), 400);
        assert_eq!(d.take_next(10_000), Some((600, 400)));
        assert!(d.take_next(1).is_none());
        assert!(d.is_clean());
    }

    #[test]
    fn clear_range_splits() {
        let mut d = DirtyMap::new();
        d.mark(0, 100);
        d.clear_range(40, 20);
        assert_eq!(d.bytes(), 80);
        let ext: Vec<_> = d.iter().collect();
        assert_eq!(ext, vec![(0, 40), (60, 40)]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn clear_range_across_extents() {
        let mut d = DirtyMap::new();
        d.mark(0, 10);
        d.mark(20, 10);
        d.mark(40, 10);
        d.clear_range(5, 40);
        let ext: Vec<_> = d.iter().collect();
        assert_eq!(ext, vec![(0, 5), (45, 5)]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn clear_empty_range_is_noop() {
        let mut d = DirtyMap::new();
        d.mark(0, 10);
        d.clear_range(5, 0);
        assert_eq!(d.bytes(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn prop_invariants_under_random_ops(
            ops in proptest::collection::vec((0u8..3, 0u64..10_000, 1u64..500), 1..150)
        ) {
            let mut d = DirtyMap::new();
            for (op, off, len) in ops {
                match op {
                    0 | 1 => d.mark(off, len),
                    _ => d.clear_range(off, len),
                }
                prop_assert!(d.check_invariants().is_ok());
            }
        }

        #[test]
        fn prop_marked_bytes_drainable(
            marks in proptest::collection::vec((0u64..100_000, 1u64..1_000), 1..60)
        ) {
            let mut d = DirtyMap::new();
            for (off, len) in &marks {
                d.mark(*off, *len);
            }
            let total = d.bytes();
            let mut drained = 0;
            while let Some((_, l)) = d.take_next(777) {
                drained += l;
            }
            prop_assert_eq!(drained, total);
            prop_assert!(d.is_clean());
        }
    }
}
