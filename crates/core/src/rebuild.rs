//! Rebuild simulation for disk failures (§III-C, quantified).
//!
//! [`recovery_plan`](crate::recovery::recovery_plan) says *which* disks
//! participate in a recovery; this module simulates the rebuild itself on
//! the disk substrate to quantify what the plan costs: the spin-up delay
//! of awakened disks, the copy time of regenerating the failed disk's
//! contents onto a replacement, and the energy consumed — per scheme and
//! failed role.
//!
//! The rebuild engine is policy-independent: it takes a recovery plan,
//! builds the disks in their pre-failure power states, spins up the
//! `wake` set, then streams the data region from the source disks to the
//! replacement in large sequential chunks (round-robin across sources
//! when more than one holds needed content, as when a RoLo primary's
//! recent writes live across several past loggers).
//!
//! This module is the *offline* engine (isolated disks, no foreground
//! traffic). Rebuilds running inside a live trace replay go through
//! [`SimCtx::begin_rebuild`](crate::ctx::SimCtx), where — with span
//! tracing on — each rebuild opens a `BgSpan` over its source and
//! replacement slots, and foreground legs it delays record the causal
//! link (DESIGN.md §9.1).

use crate::config::{Scheme, SimConfig};
use crate::recovery::RecoveryPlan;
use rolo_disk::{Disk, DiskWake, IoKind, PowerState, Priority};
use rolo_obs::{NullSink, SimEvent, TraceSink};
use rolo_sim::{Duration, EventQueue, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Outcome of one simulated rebuild.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebuildReport {
    /// Scheme the plan came from.
    pub scheme: String,
    /// Total wall time from failure to fully rebuilt replacement.
    pub duration: Duration,
    /// Energy consumed by every participating disk over that window (J).
    pub energy_j: f64,
    /// Disks that had to spin up.
    pub disks_awakened: usize,
    /// Disks used in total (including already-active ones).
    pub disks_involved: usize,
    /// Bytes copied onto the replacement.
    pub bytes_rebuilt: u64,
}

/// Chunk size used for rebuild streaming.
const REBUILD_CHUNK: u64 = 1 << 20;

/// Simulates rebuilding a failed disk according to `plan`.
///
/// `standby` marks which disks were spun down at failure time (the
/// scheme's steady state). The replacement disk starts spun up (a fresh
/// drive). Source reads round-robin across `plan.wake ∪ plan.silent`;
/// each chunk is read from a source and written to the replacement.
///
/// # Panics
///
/// Panics if the plan has no source disks.
pub fn simulate_rebuild(
    cfg: &SimConfig,
    plan: &RecoveryPlan,
    standby: &[bool],
    rebuild_bytes: u64,
) -> RebuildReport {
    simulate_rebuild_traced(cfg, plan, standby, rebuild_bytes, &mut NullSink)
}

/// Like [`simulate_rebuild`], but emits [`SimEvent`]s (rebuild start and
/// completion, per-chunk dispatches, disk state transitions) into `sink`
/// so the offline rebuild engine is observable with the same taxonomy as
/// the live driver.
pub fn simulate_rebuild_traced(
    cfg: &SimConfig,
    plan: &RecoveryPlan,
    standby: &[bool],
    rebuild_bytes: u64,
    sink: &mut dyn TraceSink,
) -> RebuildReport {
    let sources: Vec<usize> = plan
        .wake
        .iter()
        .chain(plan.silent.iter())
        .copied()
        .collect();
    assert!(!sources.is_empty(), "recovery plan has no sources");
    let rng = SimRng::seed_from(cfg.seed ^ 0xfa11);

    // Participating disks: sources + the replacement (modelled as a fresh
    // disk reusing the failed disk's id slot).
    let mut disks: Vec<Disk> = Vec::new();
    for &d in &sources {
        let state = if standby.get(d).copied().unwrap_or(false) {
            PowerState::Standby
        } else {
            PowerState::Idle
        };
        disks.push(Disk::with_initial_state(
            d,
            cfg.disk.clone(),
            rng.fork(&format!("rebuild-src-{d}")),
            state,
        ));
    }
    let replacement_idx = disks.len();
    disks.push(Disk::with_initial_state(
        plan.failed,
        cfg.disk.clone(),
        rng.fork("rebuild-replacement"),
        PowerState::Idle,
    ));

    #[derive(Clone, Copy)]
    enum Ev {
        Io(usize),
        SpinUp(usize),
        SpinDown(usize),
        BgRetry(usize),
    }

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut offset = 0u64;
    let mut src_cursor = 0usize;
    let mut copied = 0u64;
    // Maps an engine index to the real array slot, for trace events.
    let slot_of = |idx: usize| -> usize {
        if idx < sources.len() {
            sources[idx]
        } else {
            plan.failed
        }
    };
    let submit = |disks: &mut Vec<Disk>,
                  queue: &mut EventQueue<Ev>,
                  sink: &mut dyn TraceSink,
                  idx: usize,
                  kind: IoKind,
                  off: u64,
                  len: u64,
                  now: SimTime| {
        let before = disks[idx].power_state();
        if let Some(w) = disks[idx].submit(
            rolo_disk::DiskRequest::new(0, kind, off, len, Priority::Foreground),
            now,
        ) {
            let ev = match w {
                DiskWake::Io(_) => Ev::Io(idx),
                DiskWake::SpinUp(_) => Ev::SpinUp(idx),
                DiskWake::SpinDown(_) => Ev::SpinDown(idx),
                DiskWake::BgRetry(_) => Ev::BgRetry(idx),
            };
            queue.schedule(w.due(), ev);
        }
        if sink.enabled() {
            let disk = slot_of(idx);
            let after = disks[idx].power_state();
            if after != before {
                sink.record(
                    now,
                    SimEvent::DiskState {
                        disk,
                        from: before,
                        to: after,
                    },
                );
            }
            sink.record(
                now,
                SimEvent::RequestDispatch {
                    io: 0,
                    disk,
                    kind,
                    offset: off,
                    bytes: len,
                    background: true,
                },
            );
        }
    };
    if sink.enabled() {
        sink.record(
            SimTime::ZERO,
            SimEvent::RebuildStarted {
                slot: plan.failed,
                bytes: rebuild_bytes,
            },
        );
    }

    // Kick off: first chunk read from the first source (spins it up if
    // needed — the spin-up cost is part of the §III-C story).
    let len = REBUILD_CHUNK.min(rebuild_bytes.max(1));
    submit(
        &mut disks,
        &mut queue,
        sink,
        0,
        IoKind::Read,
        0,
        len,
        SimTime::ZERO,
    );
    let mut awaiting_write = false;
    let mut pending_len = len;

    let mut now = SimTime::ZERO;
    while let Some(ev) = queue.pop() {
        now = ev.time;
        match ev.payload {
            Ev::Io(idx) => {
                let out = disks[idx].on_io_complete(now);
                if let Some(w) = out.next {
                    let evn = match w {
                        DiskWake::Io(_) => Ev::Io(idx),
                        DiskWake::SpinUp(_) => Ev::SpinUp(idx),
                        DiskWake::SpinDown(_) => Ev::SpinDown(idx),
                        DiskWake::BgRetry(_) => Ev::BgRetry(idx),
                    };
                    queue.schedule(w.due(), evn);
                }
                if idx == replacement_idx {
                    // Chunk landed on the replacement: next chunk.
                    copied += out.completed.bytes;
                    awaiting_write = false;
                    offset += out.completed.bytes;
                    if offset < rebuild_bytes {
                        src_cursor = (src_cursor + 1) % sources.len();
                        let len = REBUILD_CHUNK.min(rebuild_bytes - offset);
                        pending_len = len;
                        submit(
                            &mut disks,
                            &mut queue,
                            sink,
                            src_cursor,
                            IoKind::Read,
                            offset,
                            len,
                            now,
                        );
                    }
                } else if !awaiting_write {
                    // Source read done: write the chunk to the replacement.
                    awaiting_write = true;
                    submit(
                        &mut disks,
                        &mut queue,
                        sink,
                        replacement_idx,
                        IoKind::Write,
                        offset,
                        pending_len,
                        now,
                    );
                }
            }
            Ev::SpinUp(idx) => {
                let before = disks[idx].power_state();
                if let Some(w) = disks[idx].on_spin_up_complete(now) {
                    let evn = match w {
                        DiskWake::Io(_) => Ev::Io(idx),
                        DiskWake::SpinUp(_) => Ev::SpinUp(idx),
                        DiskWake::SpinDown(_) => Ev::SpinDown(idx),
                        DiskWake::BgRetry(_) => Ev::BgRetry(idx),
                    };
                    queue.schedule(w.due(), evn);
                }
                let after = disks[idx].power_state();
                if sink.enabled() && after != before {
                    sink.record(
                        now,
                        SimEvent::DiskState {
                            disk: slot_of(idx),
                            from: before,
                            to: after,
                        },
                    );
                }
            }
            Ev::SpinDown(idx) => {
                if let Some(DiskWake::SpinUp(t)) = disks[idx].on_spin_down_complete(now) {
                    queue.schedule(t, Ev::SpinUp(idx));
                }
            }
            Ev::BgRetry(idx) => {
                if let Some(DiskWake::Io(t)) = disks[idx].on_bg_retry(now) {
                    queue.schedule(t, Ev::Io(idx));
                }
            }
        }
        if copied >= rebuild_bytes {
            break;
        }
    }

    if sink.enabled() {
        sink.record(
            now,
            SimEvent::RebuildCompleted {
                slot: plan.failed,
                duration_us: now.since(SimTime::ZERO).as_micros(),
            },
        );
    }
    let energy: f64 = disks
        .iter()
        .map(|d| d.energy_report(now).total_joules)
        .sum();
    RebuildReport {
        scheme: String::new(),
        duration: now.since(SimTime::ZERO),
        energy_j: energy,
        disks_awakened: plan.wake.len(),
        disks_involved: plan.disks_involved(),
        bytes_rebuilt: copied,
    }
}

/// Convenience: plan + rebuild for a primary-disk failure under `scheme`
/// with `recent_loggers` holding log copies (RoLo-P/R only).
pub fn rebuild_primary_failure(
    cfg: &SimConfig,
    scheme: Scheme,
    recent_loggers: &[usize],
) -> RebuildReport {
    let geometry = cfg.geometry().expect("valid geometry");
    // Default the on-duty logger to a pair other than the failed disk's,
    // so the failure exercises the representative off-duty path.
    let logger_pair = recent_loggers.last().copied().unwrap_or(1 % cfg.pairs);
    let plan = crate::recovery::recovery_plan(scheme, &geometry, 0, logger_pair, recent_loggers);
    // Steady-state standby sets per scheme.
    let standby: Vec<bool> = (0..cfg.disk_count())
        .map(|d| match scheme {
            Scheme::Raid10 => false,
            Scheme::Graid => d >= cfg.pairs && d < 2 * cfg.pairs,
            Scheme::RoloP | Scheme::RoloR => {
                d >= cfg.pairs && d < 2 * cfg.pairs && d != cfg.pairs + logger_pair
            }
            Scheme::RoloE => d != logger_pair && d != cfg.pairs + logger_pair,
        })
        .collect();
    let mut report = simulate_rebuild(cfg, &plan, &standby, cfg.data_region());
    report.scheme = scheme.to_string();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(scheme: Scheme) -> SimConfig {
        let mut c = SimConfig::paper_default(scheme, 10);
        // Small data region keeps the rebuild quick in tests.
        c.logger_region = c.disk.capacity_bytes - (1 << 30);
        c
    }

    #[test]
    fn raid10_rebuild_needs_no_spinups() {
        let c = cfg(Scheme::Raid10);
        let r = rebuild_primary_failure(&c, Scheme::Raid10, &[]);
        assert_eq!(r.disks_awakened, 0);
        assert_eq!(r.bytes_rebuilt, c.data_region());
        // 1 GiB at ~55 MB/s with alternating read/write: tens of seconds.
        assert!(r.duration.as_secs_f64() > 10.0 && r.duration.as_secs_f64() < 300.0);
    }

    #[test]
    fn rolo_p_rebuild_wakes_fewer_than_graid() {
        let c = cfg(Scheme::RoloP);
        let rolo = rebuild_primary_failure(&c, Scheme::RoloP, &[3, 4, 5]);
        let graid = rebuild_primary_failure(&cfg(Scheme::Graid), Scheme::Graid, &[]);
        assert!(rolo.disks_awakened < graid.disks_awakened);
        assert!(
            rolo.energy_j < graid.energy_j,
            "RoLo {:.0} J !< GRAID {:.0} J",
            rolo.energy_j,
            graid.energy_j
        );
    }

    #[test]
    fn spinup_latency_shows_in_duration() {
        // A rebuild whose sources are all standby must include the 10.9 s
        // spin-up in its wall time.
        let c = cfg(Scheme::RoloE);
        let r = rebuild_primary_failure(&c, Scheme::RoloE, &[5]);
        assert!(r.duration.as_secs_f64() > 10.9);
    }

    #[test]
    fn copies_every_byte_exactly_once() {
        let mut c = cfg(Scheme::Raid10);
        c.logger_region = c.disk.capacity_bytes - (64 << 20);
        let r = rebuild_primary_failure(&c, Scheme::Raid10, &[]);
        assert_eq!(r.bytes_rebuilt, c.data_region());
    }
}
