#![warn(missing_docs)]
//! RoLo: rotated logging storage controllers for RAID10 arrays.
//!
//! This crate implements the paper's contribution — the RoLo-P, RoLo-R
//! and RoLo-E controllers (§III) — together with the two comparison
//! points of its evaluation: a plain RAID10 array and GRAID's
//! centralized-logging architecture. All five run over the same
//! event-driven disk substrate (`rolo-disk`) and are driven by the same
//! [`driver`], so any difference in the reports is attributable to the
//! controller alone.
//!
//! # Quick start
//!
//! ```
//! use rolo_core::{driver, SimConfig, Scheme};
//! use rolo_trace::SyntheticConfig;
//! use rolo_sim::Duration;
//!
//! let mut cfg = SimConfig::paper_default(Scheme::RoloP, 4);
//! cfg.logger_region = 64 << 20; // small logger for a fast demo
//! let dur = Duration::from_secs(60);
//! let workload = SyntheticConfig::motivation_write_only(50.0);
//! let report = driver::run_scheme(&cfg, workload.generator(dur, 1), dur);
//! assert!(report.consistency.is_ok());
//! assert!(report.user_requests > 0);
//! ```

pub mod cache;
pub mod config;
pub mod ctx;
pub mod dirty;
pub mod driver;
pub mod faults;
pub mod graid;
pub mod logspace;
pub mod paraid;
pub mod policy;
pub mod raid10;
pub mod rebuild;
pub mod recovery;
pub mod report;
pub mod rolo;
pub mod roloe;
pub mod segment;
pub mod slot;

pub use config::{ConfigError, Scheme, SimConfig};
pub use ctx::SimCtx;
pub use driver::{
    run_scheme, run_scheme_observed, run_scheme_spanned, run_scheme_with_sink, run_trace,
    run_trace_observed, run_trace_returning, run_trace_spanned, run_trace_with_sink,
    RunObservations,
};
pub use faults::{surviving_partner, FaultMetrics, FaultPlan, FaultPlanError};
pub use graid::GraidPolicy;
pub use paraid::ParaidPolicy;
pub use policy::{Policy, PolicyStats};
pub use raid10::Raid10Policy;
pub use rebuild::{
    rebuild_primary_failure, simulate_rebuild, simulate_rebuild_traced, RebuildReport,
};
pub use recovery::{recovery_plan, RecoveryPlan};
pub use report::SimReport;
pub use rolo::{RoloFlavor, RoloPolicy};
pub use roloe::RoloEPolicy;
pub use segment::{
    replay_journals, AppendOutcome, AppendRecord, ArchiveFrame, LogManifest, ReplayOutcome,
    Segment, SegmentState, SegmentStats, SegmentStore,
};
pub use slot::{IoSlab, IoSlot};
