//! Log-structured segment lifecycle for the logger regions
//! (DESIGN.md §10).
//!
//! [`LoggerSpace`](crate::logspace::LoggerSpace) answers *where on the
//! platter* a log append lands; this module answers *what the log
//! means* after a crash. Every logger disk carries a [`SegmentStore`]:
//! a chain of fixed-size segments holding checksummed
//! [`AppendRecord`]s, each tagged with the `(pair, period, LBA-range)`
//! it logged. Records **commit** — receive their log sequence number
//! and a valid checksum — exactly when the user request they belong to
//! is acknowledged, which is also the instant the controller applies
//! the corresponding dirty-map mark. A record that never commits
//! (its request was still in flight when a logger died) fails its
//! checksum on a recovery scan: that is the *torn record* the
//! replay engine detects and excludes.
//!
//! Dirty-map *clears* (destage extraction, direct-write overwrite) and
//! per-pair *reclaims* (destage completion) are not segment records:
//! they are updates to the controller-durable [`LogManifest`] — the
//! §III-E used/unused region lists the paper keeps in controller
//! memory. The manifest stays small because every reclaim prunes the
//! pair's clears and advances its stable LSN.
//!
//! **Crash consistency.** [`replay_journals`] merges the committed
//! records of the surviving segment chains with the manifest's clears
//! in global LSN order and re-applies them to empty dirty maps.
//! Because commit order equals dirty-map mutation order, the replayed
//! maps are byte-identical to the controller's in-memory maps at every
//! instant — the property the randomized crash-point suites assert.
//!
//! **Space reclamation.** A segment seals when full, becomes dead as
//! later writes/clears supersede its records (tracked by a per-pair
//! live-extent index), and — once fully dead with no in-flight
//! records — is folded into an append-only compressed
//! [`ArchiveFrame`]. Frames retire after a TTL. Dropping a fully-dead
//! segment never changes replay: every byte of a dead record is, by
//! definition, covered by a later committed record or clear, so the
//! last writer of each byte survives.

use crate::dirty::DirtyMap;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Modeled on-media footprint of a record header (checksum, LSN, tags).
pub const RECORD_HEADER_BYTES: u64 = 32;

/// Modeled fixed overhead of one compressed archive frame.
const FRAME_HEADER_BYTES: u64 = 64;

/// Deterministic stand-in for the compressor: dead log payloads are
/// highly redundant, so frames compress 4:1 plus a fixed header.
fn compressed_size(payload: u64) -> u64 {
    FRAME_HEADER_BYTES + payload / 4
}

/// Word-folded FNV-1a over the record's identity and commit LSN — the
/// checksum a recovery scan recomputes to detect torn records. Folding
/// whole words (with a shift to diffuse the high bits the multiply
/// alone leaves weak) keeps the stamp off the commit path's critical
/// nanoseconds; torn-record detection only needs any-field sensitivity,
/// not cryptographic strength.
fn record_checksum(rid: u64, pair: usize, period: u64, lba: u64, len: u64, lsn: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [rid, pair as u64, period, lba, len, lsn] {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 32;
    }
    h
}

/// Lifecycle state of one segment in a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SegmentState {
    /// The append target: new records go here.
    Active,
    /// Full; no further appends, records age toward dead.
    Sealed,
    /// Fully dead and folded into an archive frame.
    Archived,
}

/// One checksummed log record: a `(pair, period, LBA-range)` append.
#[derive(Debug, Clone, Serialize)]
pub struct AppendRecord {
    /// Store-local record id, assigned at append time.
    pub rid: u64,
    /// Mirrored pair whose write this record logs.
    pub pair: usize,
    /// Logging period the write belonged to.
    pub period: u64,
    /// Logical byte offset of the logged write.
    pub lba: u64,
    /// Length of the logged write in bytes.
    pub len: u64,
    /// Commit LSN; `None` while the user request is in flight (a crash
    /// now leaves this record torn).
    pub lsn: Option<u64>,
    /// Checksum over the header fields; valid only once committed.
    pub checksum: u64,
    /// True if the request was aborted (e.g. lost to a disk failure)
    /// and the record will never commit.
    pub abandoned: bool,
}

impl AppendRecord {
    /// True if the record committed and its checksum validates — the
    /// test a recovery scan applies; anything else is torn.
    pub fn verify(&self) -> bool {
        match self.lsn {
            Some(lsn) => {
                self.checksum
                    == record_checksum(self.rid, self.pair, self.period, self.lba, self.len, lsn)
            }
            None => false,
        }
    }

    /// Modeled on-media footprint: header plus payload.
    pub fn footprint(&self) -> u64 {
        RECORD_HEADER_BYTES + self.len
    }
}

/// One fixed-size segment of a logger disk's chain.
#[derive(Debug, Clone, Serialize)]
pub struct Segment {
    /// Chain-local id, assigned in allocation order.
    pub id: u64,
    /// Current lifecycle state.
    pub state: SegmentState,
    /// Bytes appended (record footprints).
    pub used: u64,
    /// Bytes still referenced by the live-extent index.
    pub live: u64,
    /// Records appended while not yet archived (drained on archive).
    pub records: Vec<AppendRecord>,
    /// Records appended but not yet committed or abandoned.
    pub pending: u64,
}

/// One append-only compressed archive frame (a fully-dead segment's
/// records, compressed and queued for TTL retirement).
#[derive(Debug, Clone, Serialize)]
pub struct ArchiveFrame {
    /// Archive-local frame id, in append order.
    pub id: u64,
    /// Segment the frame archived.
    pub segment: u64,
    /// Records folded in.
    pub records: u64,
    /// Uncompressed payload bytes.
    pub bytes: u64,
    /// Modeled compressed size.
    pub compressed: u64,
    /// Creation instant (simulated µs) — drives TTL retirement.
    pub created_us: u64,
}

/// Counters a controller folds into its `PolicyStats`.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SegmentStats {
    /// Records appended.
    pub appended_records: u64,
    /// Payload bytes appended.
    pub appended_bytes: u64,
    /// Records committed (checksummed at user acknowledgement).
    pub committed_records: u64,
    /// Records abandoned (request lost before acknowledgement).
    pub abandoned_records: u64,
    /// Segments sealed.
    pub sealed_segments: u64,
    /// Segments archived into frames.
    pub archived_segments: u64,
    /// Frames retired after their TTL.
    pub retired_frames: u64,
    /// Live bytes relocated out of compacted segments.
    pub compacted_bytes: u64,
}

/// What an append did to the chain, so the caller can emit lifecycle
/// events (`SegmentSealed` / `SegmentAllocated`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Record id of the new append (pass to `commit`/`abandon`).
    pub rid: u64,
    /// `(segment id, live bytes at seal)` if the previous active
    /// segment sealed to make room.
    pub sealed: Option<(u64, u64)>,
    /// Id of a newly opened segment, if one was allocated.
    pub opened: Option<u64>,
}

/// A live extent in the per-pair index: its length and owning segment.
#[derive(Debug, Clone, Copy)]
struct LiveExt {
    len: u64,
    slot: usize,
}

/// One logger disk's segment chain, live-extent index and archive.
#[derive(Debug, Clone, Default)]
pub struct SegmentStore {
    seg_bytes: u64,
    segments: Vec<Segment>,
    active: Option<usize>,
    /// Per-pair `lba` → live extent, disjoint within each pair. A
    /// `Vec` indexed by pair (grown on demand) keeps each tree small
    /// and hot — the commit path's index ops dominate journal cost, so
    /// one big `(pair, lba)`-keyed tree is measurably slower.
    live: Vec<BTreeMap<u64, LiveExt>>,
    /// In-flight records, a ring indexed by `rid - pending_base`: every
    /// append pushes a slot, commit/abandon takes it back. Rids are
    /// dense and retire in rough submission order, so the ring keeps
    /// the per-record take at O(1) with no hashing or tree walk.
    pending: VecDeque<Option<(usize, usize)>>,
    /// Rid of `pending`'s front slot.
    pending_base: u64,
    frames: Vec<ArchiveFrame>,
    next_rid: u64,
    next_frame: u64,
    stats: SegmentStats,
}

impl SegmentStore {
    /// Creates an empty chain of `seg_bytes`-sized segments.
    ///
    /// # Panics
    ///
    /// Panics if `seg_bytes` does not exceed the record header.
    pub fn new(seg_bytes: u64) -> Self {
        assert!(
            seg_bytes > RECORD_HEADER_BYTES,
            "segment smaller than one record header"
        );
        SegmentStore {
            seg_bytes,
            ..Default::default()
        }
    }

    /// Configured segment size in bytes.
    pub fn seg_bytes(&self) -> u64 {
        self.seg_bytes
    }

    /// The segment chain, in allocation order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Archive frames not yet retired, in append order.
    pub fn frames(&self) -> &[ArchiveFrame] {
        &self.frames
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SegmentStats {
        self.stats
    }

    /// Total live bytes across the chain.
    pub fn live_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.live).sum()
    }

    /// Appends a record for `pair`/`period` covering `[lba, lba+len)`,
    /// sealing the active segment and opening a new one as needed. The
    /// record is uncommitted (torn if the logger dies now) until
    /// [`commit`](Self::commit) stamps it.
    pub fn append(&mut self, pair: usize, period: u64, lba: u64, len: u64) -> AppendOutcome {
        let footprint = RECORD_HEADER_BYTES + len;
        let mut sealed = None;
        let mut opened = None;
        let need_new = match self.active {
            Some(slot) => {
                let seg = &self.segments[slot];
                // An oversized record gets a dedicated segment rather
                // than growing this one past its size.
                seg.used + footprint > self.seg_bytes && seg.used > 0
            }
            None => true,
        };
        if need_new {
            if let Some(slot) = self.active.take() {
                sealed = Some(self.seal(slot));
            }
            let id = self.segments.len() as u64;
            self.segments.push(Segment {
                id,
                state: SegmentState::Active,
                used: 0,
                live: 0,
                records: Vec::new(),
                pending: 0,
            });
            self.active = Some(self.segments.len() - 1);
            opened = Some(id);
        }
        let slot = self.active.expect("active segment exists");
        let rid = self.next_rid;
        self.next_rid += 1;
        let seg = &mut self.segments[slot];
        seg.records.push(AppendRecord {
            rid,
            pair,
            period,
            lba,
            len,
            lsn: None,
            checksum: 0,
            abandoned: false,
        });
        seg.used += footprint;
        seg.pending += 1;
        if self.pending.is_empty() {
            self.pending_base = rid;
        }
        self.pending.push_back(Some((slot, seg.records.len() - 1)));
        self.stats.appended_records += 1;
        self.stats.appended_bytes += len;
        AppendOutcome {
            rid,
            sealed,
            opened,
        }
    }

    /// Takes rid's in-flight entry out of the ring, draining retired
    /// slots off the front so the ring stays as short as the commit
    /// window. `None` if the rid was never pending or already taken.
    fn take_pending(&mut self, rid: u64) -> Option<(usize, usize)> {
        let at = usize::try_from(rid.checked_sub(self.pending_base)?).ok()?;
        let taken = self.pending.get_mut(at)?.take();
        while let Some(None) = self.pending.front() {
            self.pending.pop_front();
            self.pending_base += 1;
        }
        taken
    }

    fn seal(&mut self, slot: usize) -> (u64, u64) {
        let seg = &mut self.segments[slot];
        debug_assert_eq!(seg.state, SegmentState::Active);
        seg.state = SegmentState::Sealed;
        self.stats.sealed_segments += 1;
        (seg.id, seg.live)
    }

    /// Commits record `rid` at `lsn`: stamps the checksum and claims
    /// the record's LBA range in the live-extent index (superseding any
    /// older owners of those bytes). Call exactly when the owning user
    /// request is acknowledged — the same instant the dirty-map mark is
    /// applied — so replay order equals dirty-map mutation order.
    pub fn commit(&mut self, rid: u64, lsn: u64) {
        let Some((slot, idx)) = self.take_pending(rid) else {
            return;
        };
        let (pair, lba, len) = {
            let seg = &mut self.segments[slot];
            let rec = &mut seg.records[idx];
            rec.lsn = Some(lsn);
            rec.checksum = record_checksum(rec.rid, rec.pair, rec.period, rec.lba, rec.len, lsn);
            seg.pending -= 1;
            (rec.pair, rec.lba, rec.len)
        };
        self.stats.committed_records += 1;
        self.claim_live(pair, lba, len, slot);
    }

    /// Abandons record `rid` (its request was lost before it was
    /// acknowledged); the record stays in the chain as permanently torn
    /// dead weight until its segment archives.
    pub fn abandon(&mut self, rid: u64) {
        let Some((slot, idx)) = self.take_pending(rid) else {
            return;
        };
        let seg = &mut self.segments[slot];
        seg.records[idx].abandoned = true;
        seg.pending -= 1;
        self.stats.abandoned_records += 1;
    }

    /// Applies a dirty-map clear to the live-extent index: bytes in
    /// `[lba, lba+len)` of `pair` no longer need the log. The clear
    /// itself is manifest state ([`LogManifest::clear`]), not a record.
    pub fn clear_extent(&mut self, pair: usize, lba: u64, len: u64) {
        self.remove_live(pair, lba, len);
    }

    /// Drops every live extent of `pair` (destage completion: the whole
    /// pair's log is stale). Takes the pair's whole tree in one pass —
    /// no per-key removals.
    pub fn reclaim_pair(&mut self, pair: usize) {
        let Some(tree) = self.live.get_mut(pair) else {
            return;
        };
        for (_, ext) in std::mem::take(tree) {
            self.segments[ext.slot].live -= ext.len;
        }
    }

    /// Claims `[lba, lba+len)` of `pair` for `slot` in one tree walk:
    /// overlapped bytes change owner (their old extents are trimmed or
    /// dropped, exactly as a remove would), and contiguous same-slot
    /// neighbours coalesce into the inserted extent. Coalescing keeps
    /// the per-pair trees tiny under sequential appends without
    /// changing per-segment live sums — `LiveExt` carries no record
    /// identity. The single fused pass is the journal's hottest
    /// operation (once per committed record), which is why remove and
    /// insert are not separate walks.
    fn claim_live(&mut self, pair: usize, lba: u64, len: u64, slot: usize) {
        debug_assert!(len > 0);
        self.segments[slot].live += len;
        if pair >= self.live.len() {
            self.live.resize_with(pair + 1, BTreeMap::new);
        }
        let tree = &mut self.live[pair];
        let segments = &mut self.segments;
        let end = lba + len;
        let mut start = lba;
        let mut new_end = end;
        // Predecessor: bytes it held inside the claim change owner; a
        // same-slot predecessor (straddling or exactly adjacent) folds
        // into the inserted extent, a foreign one is trimmed around it.
        if let Some((&poff, &pext)) = tree.range(..lba).next_back() {
            let pend = poff + pext.len;
            if pend > lba {
                segments[pext.slot].live -= pend.min(end) - lba;
                if pext.slot == slot {
                    tree.remove(&poff);
                    start = poff;
                    new_end = new_end.max(pend);
                } else {
                    tree.insert(
                        poff,
                        LiveExt {
                            len: lba - poff,
                            slot: pext.slot,
                        },
                    );
                    if pend > end {
                        tree.insert(
                            end,
                            LiveExt {
                                len: pend - end,
                                slot: pext.slot,
                            },
                        );
                    }
                }
            } else if pend == lba && pext.slot == slot {
                tree.remove(&poff);
                start = poff;
            }
        }
        // Extents starting inside the claim lose their overlapped bytes;
        // a same-slot tail (or an extent starting exactly at the end)
        // coalesces instead of being re-inserted.
        while let Some((&soff, &sext)) = tree.range(lba..=end).next() {
            let send = soff + sext.len;
            if soff == end {
                if sext.slot == slot {
                    tree.remove(&soff);
                    new_end = new_end.max(send);
                }
                break;
            }
            tree.remove(&soff);
            segments[sext.slot].live -= send.min(end) - soff;
            if send > end {
                if sext.slot == slot {
                    new_end = new_end.max(send);
                } else {
                    tree.insert(
                        end,
                        LiveExt {
                            len: send - end,
                            slot: sext.slot,
                        },
                    );
                    break;
                }
            }
        }
        tree.insert(
            start,
            LiveExt {
                len: new_end - start,
                slot,
            },
        );
    }

    /// Removes `[lba, lba+len)` of `pair` from the index, splitting
    /// straddling extents (the pieces keep their original owner).
    /// O(1) when the pair holds nothing — the common case for clears
    /// fanned out across a pool of journals.
    fn remove_live(&mut self, pair: usize, lba: u64, len: u64) {
        if len == 0 {
            return;
        }
        let Some(tree) = self.live.get_mut(pair) else {
            return;
        };
        if tree.is_empty() {
            return;
        }
        let segments = &mut self.segments;
        let end = lba + len;
        // Predecessor straddling the start.
        if let Some((&poff, &pext)) = tree
            .range(..lba)
            .next_back()
            .filter(|(&poff, e)| poff + e.len > lba)
        {
            segments[pext.slot].live -= pext.len - (lba - poff);
            tree.insert(
                poff,
                LiveExt {
                    len: lba - poff,
                    slot: pext.slot,
                },
            );
            if poff + pext.len > end {
                segments[pext.slot].live += poff + pext.len - end;
                tree.insert(
                    end,
                    LiveExt {
                        len: poff + pext.len - end,
                        slot: pext.slot,
                    },
                );
            }
        }
        // Extents starting within the range.
        while let Some((&soff, &sext)) = tree.range(lba..end).next() {
            tree.remove(&soff);
            segments[sext.slot].live -= sext.len;
            if soff + sext.len > end {
                segments[sext.slot].live += soff + sext.len - end;
                tree.insert(
                    end,
                    LiveExt {
                        len: soff + sext.len - end,
                        slot: sext.slot,
                    },
                );
            }
        }
    }

    /// Sealed segments whose live fraction dropped below
    /// `live_fraction` — the compactor's relocation candidates, oldest
    /// first.
    pub fn compaction_candidates(&self, live_fraction: f64) -> Vec<u64> {
        self.segments
            .iter()
            .filter(|s| {
                s.state == SegmentState::Sealed
                    && s.live > 0
                    && (s.live as f64) < live_fraction * s.used as f64
            })
            .map(|s| s.id)
            .collect()
    }

    /// The live extents still owned by `segment`, in `(pair, lba)`
    /// order — what a compaction pass must relocate.
    pub fn live_extents_of(&self, segment: u64) -> Vec<(usize, u64, u64)> {
        let slot = segment as usize;
        let mut out = Vec::new();
        for (pair, tree) in self.live.iter().enumerate() {
            for (&lba, e) in tree {
                if e.slot == slot {
                    out.push((pair, lba, e.len));
                }
            }
        }
        out
    }

    /// Clips `[lba, lba+len)` of `pair` to the pieces still live *and*
    /// still owned by `segment` — re-checked at relocation completion
    /// so a clear or overwrite that raced the relocation I/O is never
    /// re-logged.
    pub fn live_intersection(
        &self,
        segment: u64,
        pair: usize,
        lba: u64,
        len: u64,
    ) -> Vec<(u64, u64)> {
        let slot = segment as usize;
        let end = lba + len;
        let mut out = Vec::new();
        let Some(tree) = self.live.get(pair) else {
            return out;
        };
        // Predecessor straddling the start, then extents within.
        if let Some((&poff, e)) = tree
            .range(..lba)
            .next_back()
            .filter(|(&poff, e)| poff + e.len > lba)
        {
            if e.slot == slot {
                out.push((lba, (poff + e.len).min(end) - lba));
            }
        }
        for (&soff, e) in tree.range(lba..end) {
            if e.slot == slot {
                out.push((soff, (soff + e.len).min(end) - soff));
            }
        }
        out
    }

    /// Sealed, fully-dead segments with no in-flight records — ready to
    /// be folded into archive frames, oldest first.
    pub fn archive_ready(&self) -> Vec<u64> {
        self.segments
            .iter()
            .filter(|s| s.state == SegmentState::Sealed && s.live == 0 && s.pending == 0)
            .map(|s| s.id)
            .collect()
    }

    /// Archives `segment` into a compressed frame created at `now_us`,
    /// returning `(frame id, compressed bytes)`. Dropping a fully-dead
    /// segment's records from the replayable chain is sound: every byte
    /// they logged is superseded by a later committed record or clear.
    ///
    /// # Panics
    ///
    /// Panics if the segment is not ready (see [`Self::archive_ready`]).
    pub fn archive(&mut self, segment: u64, now_us: u64) -> (u64, u64) {
        let slot = segment as usize;
        let seg = &mut self.segments[slot];
        assert_eq!(
            seg.state,
            SegmentState::Sealed,
            "archive of unsealed segment"
        );
        assert_eq!(seg.live, 0, "archive of a segment with live records");
        assert_eq!(
            seg.pending, 0,
            "archive of a segment with in-flight records"
        );
        let records = std::mem::take(&mut seg.records);
        let payload = seg.used;
        seg.state = SegmentState::Archived;
        let id = self.next_frame;
        self.next_frame += 1;
        let compressed = compressed_size(payload);
        self.frames.push(ArchiveFrame {
            id,
            segment,
            records: records.len() as u64,
            bytes: payload,
            compressed,
            created_us: now_us,
        });
        self.stats.archived_segments += 1;
        (id, compressed)
    }

    /// Retires (deletes) every frame older than `ttl_us` at `now_us`,
    /// returning the retired frame ids in append order.
    pub fn retire_expired(&mut self, now_us: u64, ttl_us: u64) -> Vec<u64> {
        let mut retired = Vec::new();
        self.frames.retain(|f| {
            if now_us.saturating_sub(f.created_us) >= ttl_us {
                retired.push(f.id);
                false
            } else {
                true
            }
        });
        self.stats.retired_frames += retired.len() as u64;
        retired
    }

    /// Notes `bytes` relocated out of a compacted segment (the new
    /// copies enter via [`Self::append`] + [`Self::commit`] as usual).
    pub fn note_compacted(&mut self, bytes: u64) {
        self.stats.compacted_bytes += bytes;
    }

    /// `(lsn, pair)` of every committed record still in the replayable
    /// chain (non-archived segments). A failure of this journal removes
    /// exactly these LSNs from replay; callers cross-check them against
    /// the surviving journals to find pairs whose coverage was lost.
    pub fn committed_records(&self) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if seg.state == SegmentState::Archived {
                continue;
            }
            for rec in &seg.records {
                if let Some(lsn) = rec.lsn.filter(|_| rec.verify()) {
                    out.push((lsn, rec.pair));
                }
            }
        }
        out
    }

    /// Flips the stored checksum of the committed record `rid`, modeling
    /// silent on-media corruption: the record still scans, but end-to-end
    /// verification fails and replay must fall back to a mirrored copy.
    /// Returns `false` if no committed copy of `rid` exists in a
    /// non-archived segment (nothing to corrupt).
    pub fn corrupt_record(&mut self, rid: u64) -> bool {
        for seg in &mut self.segments {
            if seg.state == SegmentState::Archived {
                continue;
            }
            for rec in &mut seg.records {
                if rec.rid == rid && rec.lsn.is_some() && !rec.abandoned {
                    rec.checksum ^= 0xdead_beef_dead_beef;
                    return true;
                }
            }
        }
        false
    }

    /// Scans the chain the way a recovery pass does: committed records
    /// are verified and folded into `merged` (keyed by LSN; copies on
    /// other chains deduplicate). A record that fails verification is
    /// *torn* if it never committed (no LSN — the crash interrupted it)
    /// and *corrupt* if it committed but its checksum no longer matches
    /// (silent media corruption); corrupt records are collected so the
    /// caller can classify each as repaired or lost once every chain has
    /// been scanned.
    fn scan_into(
        &self,
        merged: &mut BTreeMap<u64, (usize, u64, u64)>,
        corrupt: &mut Vec<(u64, usize)>,
        outcome: &mut ReplayOutcome,
    ) {
        for seg in &self.segments {
            if seg.state == SegmentState::Archived {
                continue;
            }
            outcome.segments_scanned += 1;
            for rec in &seg.records {
                outcome.records_scanned += 1;
                if !rec.verify() {
                    match rec.lsn {
                        Some(lsn) if !rec.abandoned => {
                            outcome.corrupt_records += 1;
                            corrupt.push((lsn, rec.pair));
                        }
                        _ => outcome.torn_records += 1,
                    }
                    continue;
                }
                let lsn = rec.lsn.expect("verified record has an LSN");
                merged.entry(lsn).or_insert((rec.pair, rec.lba, rec.len));
            }
        }
    }

    /// Debug invariant check for the chain, index and archive.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut live_by_slot: HashMap<usize, u64> = HashMap::new();
        for (pair, tree) in self.live.iter().enumerate() {
            let mut pend: Option<u64> = None;
            for (&lba, ext) in tree {
                if ext.len == 0 {
                    return Err(format!("zero-length live extent at ({pair}, {lba})"));
                }
                if pend.is_some_and(|p| lba < p) {
                    return Err(format!("overlapping live extents at ({pair}, {lba})"));
                }
                pend = Some(lba + ext.len);
                *live_by_slot.entry(ext.slot).or_default() += ext.len;
            }
        }
        let mut actives = 0;
        for (slot, seg) in self.segments.iter().enumerate() {
            if seg.id != slot as u64 {
                return Err(format!("segment id {} at slot {slot}", seg.id));
            }
            let indexed = live_by_slot.get(&slot).copied().unwrap_or(0);
            if indexed != seg.live {
                return Err(format!(
                    "segment {}: live accounting {} != indexed {indexed}",
                    seg.id, seg.live
                ));
            }
            let pending = seg
                .records
                .iter()
                .filter(|r| r.lsn.is_none() && !r.abandoned)
                .count() as u64;
            match seg.state {
                SegmentState::Active => {
                    actives += 1;
                    if self.active != Some(slot) {
                        return Err(format!("segment {} active but not the target", seg.id));
                    }
                }
                SegmentState::Sealed => {}
                SegmentState::Archived => {
                    if seg.live != 0 || !seg.records.is_empty() || seg.pending != 0 {
                        return Err(format!("archived segment {} not empty", seg.id));
                    }
                }
            }
            if seg.state != SegmentState::Archived {
                if pending != seg.pending {
                    return Err(format!(
                        "segment {}: pending {} != counted {pending}",
                        seg.id, seg.pending
                    ));
                }
                let used: u64 = seg.records.iter().map(AppendRecord::footprint).sum();
                if used != seg.used {
                    return Err(format!(
                        "segment {}: used {} != record footprints {used}",
                        seg.id, seg.used
                    ));
                }
                if seg.live > seg.used {
                    return Err(format!("segment {}: live exceeds used", seg.id));
                }
            }
        }
        if actives > 1 {
            return Err(format!("{actives} active segments"));
        }
        if let Some(slot) = self.active {
            if self
                .segments
                .get(slot)
                .map(|s| s.state != SegmentState::Active)
                .unwrap_or(true)
            {
                return Err(format!("active slot {slot} is not an Active segment"));
            }
        }
        for (at, entry) in self.pending.iter().enumerate() {
            let Some(&(slot, idx)) = entry.as_ref() else {
                continue;
            };
            let rid = self.pending_base + at as u64;
            let rec = self
                .segments
                .get(slot)
                .and_then(|s| s.records.get(idx))
                .ok_or_else(|| format!("pending rid {rid} points at nothing"))?;
            if rec.rid != rid || rec.lsn.is_some() || rec.abandoned {
                return Err(format!("pending rid {rid} out of sync"));
            }
        }
        let mut prev_frame: Option<u64> = None;
        for f in &self.frames {
            if let Some(p) = prev_frame {
                if f.id <= p {
                    return Err("archive frames out of append order".into());
                }
            }
            prev_frame = Some(f.id);
        }
        Ok(())
    }
}

/// One dirty-map clear in the manifest's op log.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ClearOp {
    /// Mirrored pair the clear applies to.
    pub pair: usize,
    /// Start of the cleared range.
    pub lba: u64,
    /// Length of the cleared range.
    pub len: u64,
}

/// The controller-durable log metadata (§III-E region lists): dirty-map
/// clears since each pair's last reclaim, and the per-pair stable LSN
/// below which the log is known fully destaged (the dirty map was empty
/// at that LSN, so older records and clears never replay).
///
/// Clears are bucketed per pair, LSN-ascending (LSNs are handed out in
/// mutation order, so a push never goes backwards): recording a clear
/// is a push and a pair's reclaim drops its bucket wholesale, keeping
/// both off any whole-manifest scan. Only a replay — the rare path —
/// pays to merge the buckets back into global LSN order.
#[derive(Debug, Clone, Default)]
pub struct LogManifest {
    /// Clears since each pair's last reclaim, indexed by pair.
    ops: Vec<Vec<(u64, ClearOp)>>,
    /// Stable LSNs, indexed by pair (0 = never completed a destage).
    pair_stable: Vec<u64>,
}

impl LogManifest {
    /// Creates an empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a dirty-map clear at `lsn` (destage extraction or
    /// direct-write overwrite).
    pub fn clear(&mut self, lsn: u64, pair: usize, lba: u64, len: u64) {
        if pair >= self.ops.len() {
            self.ops.resize_with(pair + 1, Vec::new);
        }
        let bucket = &mut self.ops[pair];
        debug_assert!(bucket.last().is_none_or(|&(l, _)| l < lsn));
        bucket.push((lsn, ClearOp { pair, lba, len }));
    }

    /// Records a destage completion for `pair` at `lsn`: the pair's
    /// dirty map is empty, so its stable LSN advances and every older
    /// clear for it is pruned — this is what keeps the manifest small.
    pub fn reclaim(&mut self, lsn: u64, pair: usize) {
        if pair >= self.pair_stable.len() {
            self.pair_stable.resize(pair + 1, 0);
        }
        self.pair_stable[pair] = self.pair_stable[pair].max(lsn);
        if let Some(bucket) = self.ops.get_mut(pair) {
            bucket.retain(|&(l, _)| l > lsn);
        }
    }

    /// The stable LSN of `pair` (0 if it never completed a destage).
    pub fn pair_stable(&self, pair: usize) -> u64 {
        self.pair_stable.get(pair).copied().unwrap_or(0)
    }

    /// Number of clears currently held.
    pub fn op_count(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }

    /// All held clears, merged back into global LSN order (replay's
    /// view; each per-pair bucket is already sorted).
    fn ops_by_lsn(&self) -> Vec<(u64, ClearOp)> {
        let mut out: Vec<(u64, ClearOp)> = self.ops.iter().flatten().copied().collect();
        out.sort_unstable_by_key(|&(l, _)| l);
        out
    }
}

/// The result of a recovery-by-replay pass.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// Reconstructed per-pair dirty maps.
    pub maps: Vec<DirtyMap>,
    /// Non-archived segments scanned across the surviving chains.
    pub segments_scanned: u64,
    /// Records scanned (before deduplication).
    pub records_scanned: u64,
    /// Records that failed checksum verification (torn by the crash).
    pub torn_records: u64,
    /// Committed records whose checksum no longer matched (silent media
    /// corruption, as opposed to a torn crash-interrupted record).
    pub corrupt_records: u64,
    /// Corrupt records whose LSN survived verified on another chain —
    /// the mirrored copy repairs them.
    pub corrupt_repaired: u64,
    /// Corrupt records with no verified copy of their LSN anywhere —
    /// the logged write is unrecoverable.
    pub corrupt_lost: u64,
    /// Deduplicated committed appends redone into the maps.
    pub applied_appends: u64,
    /// Manifest clears undone from the maps.
    pub applied_clears: u64,
    /// Records skipped as at-or-below their pair's stable LSN.
    pub skipped_stable: u64,
}

/// Recovery-by-replay: scans the surviving segment chains, drops torn
/// records, deduplicates the mirrored copies by LSN, interleaves the
/// manifest's clears, and re-applies everything above each pair's
/// stable LSN — in commit order — onto empty dirty maps.
///
/// Because records commit at the same instant their dirty-map mark is
/// applied, the result equals the controller's in-memory maps for every
/// pair whose records survive on at least one chain.
pub fn replay_journals<'a, I>(journals: I, manifest: &LogManifest, pairs: usize) -> ReplayOutcome
where
    I: IntoIterator<Item = &'a SegmentStore>,
{
    let mut outcome = ReplayOutcome {
        maps: vec![DirtyMap::new(); pairs],
        ..Default::default()
    };
    let mut appends: BTreeMap<u64, (usize, u64, u64)> = BTreeMap::new();
    let mut corrupt: Vec<(u64, usize)> = Vec::new();
    for store in journals {
        store.scan_into(&mut appends, &mut corrupt, &mut outcome);
    }
    // Classify every corrupt record exactly once: repaired if any chain
    // holds a verified copy of its LSN, lost otherwise — so
    // `corrupt_records == corrupt_repaired + corrupt_lost` always.
    for (lsn, _pair) in corrupt {
        if appends.contains_key(&lsn) {
            outcome.corrupt_repaired += 1;
        } else {
            outcome.corrupt_lost += 1;
        }
    }
    // Merge appends and clears in global LSN order (LSNs are unique
    // across both, so a simple two-cursor merge is exact).
    let manifest_ops = manifest.ops_by_lsn();
    let mut clears = manifest_ops.iter().peekable();
    let mut records = appends.iter().peekable();
    loop {
        let next_is_clear = match (clears.peek(), records.peek()) {
            (Some(&&(cl, _)), Some((&rl, _))) => cl < rl,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if next_is_clear {
            let &(lsn, op) = clears.next().expect("peeked");
            if lsn <= manifest.pair_stable(op.pair) {
                outcome.skipped_stable += 1;
                continue;
            }
            if op.pair < pairs {
                outcome.maps[op.pair].clear_range(op.lba, op.len);
                outcome.applied_clears += 1;
            }
        } else {
            let (&lsn, &(pair, lba, len)) = records.next().expect("peeked");
            if lsn <= manifest.pair_stable(pair) {
                outcome.skipped_stable += 1;
                continue;
            }
            if pair < pairs && len > 0 {
                outcome.maps[pair].mark(lba, len);
                outcome.applied_appends += 1;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a store and a reference dirty map in lockstep the way a
    /// controller does, then checks replay reconstructs the reference.
    struct Harness {
        store: SegmentStore,
        mirror: SegmentStore,
        manifest: LogManifest,
        reference: DirtyMap,
        next_lsn: u64,
    }

    impl Harness {
        fn new(seg_bytes: u64) -> Self {
            Harness {
                store: SegmentStore::new(seg_bytes),
                mirror: SegmentStore::new(seg_bytes),
                manifest: LogManifest::new(),
                reference: DirtyMap::new(),
                next_lsn: 0,
            }
        }

        fn lsn(&mut self) -> u64 {
            self.next_lsn += 1;
            self.next_lsn
        }

        fn write(&mut self, lba: u64, len: u64) -> (u64, u64) {
            let a = self.store.append(0, 1, lba, len);
            let b = self.mirror.append(0, 1, lba, len);
            (a.rid, b.rid)
        }

        fn ack(&mut self, rids: (u64, u64), lba: u64, len: u64) {
            let lsn = self.lsn();
            self.store.commit(rids.0, lsn);
            self.mirror.commit(rids.1, lsn);
            self.reference.mark(lba, len);
        }

        fn clear(&mut self, lba: u64, len: u64) {
            let lsn = self.lsn();
            self.manifest.clear(lsn, 0, lba, len);
            self.store.clear_extent(0, lba, len);
            self.mirror.clear_extent(0, lba, len);
            self.reference.clear_range(lba, len);
        }

        fn replay_one_survivor(&self) -> ReplayOutcome {
            replay_journals([&self.mirror], &self.manifest, 1)
        }
    }

    fn maps_equal(a: &DirtyMap, b: &DirtyMap) -> bool {
        a.bytes() == b.bytes() && a.iter().collect::<Vec<_>>() == b.iter().collect::<Vec<_>>()
    }

    #[test]
    fn commit_claims_live_extents_and_supersedes() {
        let mut s = SegmentStore::new(1 << 20);
        let a = s.append(0, 1, 100, 50);
        s.commit(a.rid, 1);
        assert_eq!(s.live_bytes(), 50);
        // A later write over part of the range supersedes the old copy.
        let b = s.append(0, 1, 120, 100);
        s.commit(b.rid, 2);
        assert_eq!(s.live_bytes(), 20 + 100);
        s.check_invariants().unwrap();
    }

    #[test]
    fn seal_and_open_on_overflow() {
        let mut s = SegmentStore::new(RECORD_HEADER_BYTES + 100);
        let a = s.append(0, 1, 0, 100);
        assert_eq!(a.opened, Some(0));
        assert!(a.sealed.is_none());
        let b = s.append(0, 1, 200, 100);
        assert_eq!(b.sealed.map(|(id, _)| id), Some(0));
        assert_eq!(b.opened, Some(1));
        assert_eq!(s.segments()[0].state, SegmentState::Sealed);
        s.check_invariants().unwrap();
    }

    #[test]
    fn torn_records_fail_verification() {
        let mut s = SegmentStore::new(1 << 20);
        let a = s.append(0, 1, 0, 100);
        let b = s.append(0, 1, 200, 100);
        s.commit(a.rid, 7);
        // b never commits: a crash now leaves it torn.
        let manifest = LogManifest::new();
        let out = replay_journals([&s], &manifest, 1);
        assert_eq!(out.torn_records, 1);
        assert_eq!(out.applied_appends, 1);
        assert_eq!(out.maps[0].bytes(), 100);
        let _ = b;
    }

    #[test]
    fn corrupt_record_detected_and_repaired_from_mirror() {
        let mut h = Harness::new(1 << 16);
        let w1 = h.write(0, 4096);
        h.ack(w1, 0, 4096);
        assert!(h.store.corrupt_record(w1.0));
        let out = replay_journals([&h.store, &h.mirror], &h.manifest, 1);
        assert_eq!(out.corrupt_records, 1);
        assert_eq!(out.corrupt_repaired, 1);
        assert_eq!(out.corrupt_lost, 0);
        assert_eq!(out.torn_records, 0, "corruption is not torn");
        assert!(maps_equal(&out.maps[0], &h.reference));
    }

    #[test]
    fn corrupt_record_without_clean_copy_is_lost() {
        let mut h = Harness::new(1 << 16);
        let w1 = h.write(0, 4096);
        h.ack(w1, 0, 4096);
        assert!(h.store.corrupt_record(w1.0));
        assert!(h.mirror.corrupt_record(w1.1));
        let out = replay_journals([&h.store, &h.mirror], &h.manifest, 1);
        assert_eq!(out.corrupt_records, 2);
        assert_eq!(out.corrupt_repaired, 0);
        assert_eq!(out.corrupt_lost, 2);
        assert_eq!(out.maps[0].bytes(), 0, "the logged write is gone");
    }

    #[test]
    fn corrupt_record_requires_commit() {
        let mut s = SegmentStore::new(1 << 20);
        let a = s.append(0, 1, 0, 100);
        assert!(
            !s.corrupt_record(a.rid),
            "an uncommitted record is torn, not silently corrupt"
        );
        s.commit(a.rid, 1);
        assert!(s.corrupt_record(a.rid));
    }

    #[test]
    fn replay_matches_reference_with_clears() {
        let mut h = Harness::new(1 << 16);
        let w1 = h.write(0, 4096);
        h.ack(w1, 0, 4096);
        let w2 = h.write(8192, 4096);
        h.ack(w2, 8192, 4096);
        h.clear(0, 2048); // destage extracted half the first extent
        let w3 = h.write(1024, 512); // re-dirtied inside the cleared range
        h.ack(w3, 1024, 512);
        let out = h.replay_one_survivor();
        assert_eq!(out.torn_records, 0);
        assert!(maps_equal(&out.maps[0], &h.reference));
    }

    #[test]
    fn reclaim_advances_stability_and_prunes() {
        let mut h = Harness::new(1 << 16);
        let w1 = h.write(0, 4096);
        h.ack(w1, 0, 4096);
        h.clear(0, 4096);
        // Destage completed: stable LSN advances, clears prune.
        let lsn = h.lsn();
        h.manifest.reclaim(lsn, 0);
        h.store.reclaim_pair(0);
        h.mirror.reclaim_pair(0);
        assert_eq!(h.manifest.op_count(), 0);
        assert_eq!(h.store.live_bytes(), 0);
        // Writes after the reclaim still replay.
        let w2 = h.write(500, 100);
        h.ack(w2, 500, 100);
        let out = h.replay_one_survivor();
        assert!(out.skipped_stable > 0);
        assert!(maps_equal(&out.maps[0], &h.reference));
        h.store.check_invariants().unwrap();
    }

    #[test]
    fn archive_requires_fully_dead_and_retires_by_ttl() {
        let mut h = Harness::new(RECORD_HEADER_BYTES + 4096);
        let w1 = h.write(0, 4096);
        h.ack(w1, 0, 4096);
        let w2 = h.write(8192, 4096); // seals segment 0
        h.ack(w2, 8192, 4096);
        assert!(h.store.archive_ready().is_empty(), "segment 0 still live");
        h.clear(0, 4096);
        assert_eq!(h.store.archive_ready(), vec![0]);
        let (frame, compressed) = h.store.archive(0, 1_000);
        assert!(compressed < RECORD_HEADER_BYTES + 4096);
        assert_eq!(h.store.segments()[0].state, SegmentState::Archived);
        // Replay is unaffected by the archived segment.
        let out = replay_journals([&h.store], &h.manifest, 1);
        assert!(maps_equal(&out.maps[0], &h.reference));
        // TTL retirement.
        assert!(h.store.retire_expired(1_500, 1_000).is_empty());
        assert_eq!(h.store.retire_expired(2_000, 1_000), vec![frame]);
        h.store.check_invariants().unwrap();
    }

    #[test]
    fn compaction_candidates_and_live_intersection() {
        let mut s = SegmentStore::new(2 * (RECORD_HEADER_BYTES + 1000));
        let a = s.append(0, 1, 0, 1000);
        s.commit(a.rid, 1);
        let b = s.append(1, 1, 0, 1000);
        s.commit(b.rid, 2);
        let c = s.append(0, 2, 5000, 1000); // seals segment 0
        s.commit(c.rid, 3);
        // Pair 0's extent in segment 0 dies; pair 1's stays live.
        s.clear_extent(0, 0, 1000);
        let cands = s.compaction_candidates(0.6);
        assert_eq!(cands, vec![0]);
        assert_eq!(s.live_extents_of(0), vec![(1, 0, 1000)]);
        // The intersection re-check clips to what segment 0 still owns.
        assert_eq!(s.live_intersection(0, 1, 0, 1000), vec![(0, 1000)]);
        s.clear_extent(1, 0, 500);
        assert_eq!(s.live_intersection(0, 1, 0, 1000), vec![(500, 500)]);
        s.check_invariants().unwrap();
    }

    #[test]
    fn relocation_rehomes_extents_between_stores() {
        let mut h = Harness::new(RECORD_HEADER_BYTES + 1000);
        let w1 = h.write(0, 1000);
        h.ack(w1, 0, 1000);
        let w2 = h.write(5000, 1000); // seals segment 0 in both stores
        h.ack(w2, 5000, 1000);
        // Relocate segment 0's live extent to the active segment.
        let exts = h.store.live_extents_of(0);
        assert_eq!(exts, vec![(0, 0, 1000)]);
        let rids = h.write(0, 1000);
        let lsn = h.lsn();
        h.store.commit(rids.0, lsn);
        h.mirror.commit(rids.1, lsn);
        h.store.note_compacted(1000);
        assert_eq!(h.store.live_extents_of(0), Vec::new());
        assert_eq!(h.store.archive_ready(), vec![0]);
        // Replay still matches the (unchanged) reference map.
        let out = h.replay_one_survivor();
        assert!(maps_equal(&out.maps[0], &h.reference));
        h.store.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_copies_deduplicate_by_lsn() {
        let mut h = Harness::new(1 << 16);
        let w = h.write(100, 200);
        h.ack(w, 100, 200);
        let out = replay_journals([&h.store, &h.mirror], &h.manifest, 1);
        assert_eq!(out.records_scanned, 2);
        assert_eq!(out.applied_appends, 1);
        assert!(maps_equal(&out.maps[0], &h.reference));
    }
}
