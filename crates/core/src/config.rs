//! Simulation configuration: array shape, scheme selection, tunables.

use crate::faults::{FaultPlan, FaultPlanError};
use rolo_disk::{DiskParams, SchedulerKind};
use rolo_obs::{BurnRatePolicy, Quantile, SloSpec};
use rolo_raid::{ArrayGeometry, GeometryError};
use rolo_sim::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which controller runs the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain RAID10: every disk active, writes mirrored synchronously.
    Raid10,
    /// GRAID (Mao et al., MASCOTS'08): dedicated log disk, mirrors
    /// standby, centralized destaging at a log-occupancy threshold.
    Graid,
    /// RoLo-P: rotated logging on one mirrored disk at a time,
    /// decentralized destaging; primaries always on (§III-B1).
    RoloP,
    /// RoLo-R: like RoLo-P but the logger is a mirrored pair, giving
    /// three copies of every write (§III-B2).
    RoloR,
    /// RoLo-E: only one mirrored pair active (log + read cache); every
    /// other disk spun down; centralized destaging when the log fills
    /// (§III-B3).
    RoloE,
}

impl Scheme {
    /// All schemes in the paper's presentation order.
    pub fn all() -> [Scheme; 5] {
        [
            Scheme::Raid10,
            Scheme::Graid,
            Scheme::RoloP,
            Scheme::RoloR,
            Scheme::RoloE,
        ]
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::Raid10 => "RAID10",
            Scheme::Graid => "GRAID",
            Scheme::RoloP => "RoLo-P",
            Scheme::RoloR => "RoLo-R",
            Scheme::RoloE => "RoLo-E",
        };
        f.write_str(s)
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Controller scheme.
    pub scheme: Scheme,
    /// Number of mirrored pairs (the paper uses 10–20, i.e. 20–40 disks).
    pub pairs: usize,
    /// Stripe unit in bytes (Table II: 16/32/64 KB; default 64 KB).
    pub stripe_unit: u64,
    /// Per-disk logger region ("free space"; Table II: 8/6/4 GB).
    pub logger_region: u64,
    /// Dedicated log-disk capacity for GRAID (Table II: 16 GB).
    pub graid_log_capacity: u64,
    /// Log occupancy fraction that triggers centralized destaging
    /// (the paper's example: 80 %).
    pub destage_threshold: f64,
    /// RoLo rotates its logger when the on-duty logger's free space falls
    /// below this fraction of the region.
    pub rotate_free_threshold: f64,
    /// Maximum bytes per destage I/O (spatial-locality bundling).
    pub destage_chunk: u64,
    /// Idle time a disk must observe (no foreground activity) before it
    /// dispatches background destage I/O — the "short idle time slot"
    /// detector of §III-A.
    pub bg_idle_guard: Duration,
    /// RoLo: proactively spin up the next on-duty logger before rotation
    /// is due (rate-based look-ahead). Disable only for ablation studies —
    /// without it every rotation stalls writes behind a 10.9 s spin-up.
    pub eager_spinup: bool,
    /// RoLo-P/R: number of simultaneously on-duty logger mirrors, and
    /// RoLo-E: number of on-duty logger *pairs* (§III-B "one or a few" /
    /// "one or several"; §III-D's bottleneck-alleviation knob). Each
    /// extra logger trades idle power for append bandwidth.
    pub rolo_on_duty: usize,
    /// RoLo-E: idle time after which a read-miss-awakened pair is spun
    /// back down.
    pub roloe_idle_spindown: Duration,
    /// RoLo-E: fraction of the logger region reserved for the popular
    /// read-block cache (the rest takes log appends).
    pub roloe_cache_fraction: f64,
    /// Foreground queue-scheduling discipline of every disk.
    pub scheduler: SchedulerKind,
    /// Disk model parameters.
    pub disk: DiskParams,
    /// RNG seed for the disk service models.
    pub seed: u64,
    /// Faults to inject during the run (none by default).
    pub faults: FaultPlan,
    /// Size of one log segment in the segment store (DESIGN.md §10).
    pub log_segment: u64,
    /// Sealed segments whose live fraction falls below this threshold
    /// become background-compaction candidates.
    pub compact_live_frac: f64,
    /// Age after which an archived log frame is retired (deleted).
    pub archive_ttl: Duration,
    /// Run the background integrity scrub (DESIGN.md §11). Off by
    /// default: with scrubbing disabled the simulation is event-for-
    /// event identical to a build without the scrub engine.
    pub scrub_enabled: bool,
    /// Bytes verified per scrub chunk read (the scrub bandwidth knob:
    /// chunk size over tick interval bounds the per-disk scrub rate).
    pub scrub_chunk: u64,
    /// Interval between scrub scheduling ticks. Each tick issues at
    /// most one chunk per eligible disk, and only on disks that are
    /// already spun up — the power-aware rule.
    pub scrub_interval: Duration,
    /// Run the online telemetry hub (DESIGN.md §12): windowed rollups
    /// of response quantiles, power and per-disk activity, plus SLO
    /// burn-rate monitoring. On by default — the hub is observational
    /// only, so the simulation outcome is identical either way.
    pub telemetry_enabled: bool,
    /// Telemetry rollup window length (window `k` covers
    /// `[k·w, (k+1)·w)` of simulated time).
    pub telemetry_window: Duration,
    /// Closed telemetry windows retained per series before the oldest
    /// is evicted.
    pub telemetry_retain: usize,
    /// Declarative SLOs evaluated online against every closed
    /// telemetry window.
    pub slos: Vec<SloSpec>,
    /// Multi-window burn-rate alerting thresholds shared by all SLOs.
    pub slo_burn: BurnRatePolicy,
    /// Tail exemplars retained per telemetry window: the k of the
    /// bounded top-k slowest-request recorder (DESIGN.md §14). Zero
    /// disables capture. The recorder only observes anything when
    /// telemetry *and* span recording are both on — it needs finished
    /// spans to decompose — and is observational either way.
    pub exemplars_per_window: usize,
    /// Run root-cause attribution over every SLO alert window at end
    /// of run (DESIGN.md §14). Forces span recording on so exemplar
    /// critical paths and `delayed_by` causality exist; the pass is
    /// observational only, so the report stays byte-identical with it
    /// on or off.
    pub rca_enabled: bool,
}

fn default_log_segment() -> u64 {
    4 << 20
}

fn default_compact_live_frac() -> f64 {
    0.25
}

fn default_archive_ttl() -> Duration {
    Duration::from_secs(60)
}

/// Default SLO set: a p95 response-time bound loose enough that a
/// healthy scheme (RoLo-P on every paper trace) never trips it, yet
/// far below RoLo-E's multi-second spin-up tail; and a mean-power
/// budget above any paper configuration's steady draw.
fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::latency("latency_p95", Quantile::P95, Duration::from_millis(500)),
        SloSpec::energy("power_budget", 600.0),
    ]
}

/// Default burn-rate thresholds (SRE-style 5/15-window pairing over a
/// 10 % error budget): a warning needs a sustained short-lookback
/// burn, a breach needs both lookbacks saturated.
fn default_burn_policy() -> BurnRatePolicy {
    BurnRatePolicy {
        short_windows: 5,
        long_windows: 15,
        error_budget: 0.1,
        warn_burn: 2.0,
        breach_burn: 5.0,
    }
}

impl SimConfig {
    /// The paper's default configuration (Table II) for `scheme` on
    /// `pairs` mirrored pairs: 64 KB stripe unit, 8 GB free space per
    /// disk, 16 GB GRAID log disk, 80 % destage threshold, IBM Ultrastar
    /// 36Z15 disks.
    pub fn paper_default(scheme: Scheme, pairs: usize) -> Self {
        SimConfig {
            scheme,
            pairs,
            stripe_unit: 64 * 1024,
            logger_region: 8 << 30,
            graid_log_capacity: 16 << 30,
            destage_threshold: 0.8,
            rotate_free_threshold: 0.01,
            destage_chunk: 64 * 1024,
            bg_idle_guard: Duration::from_millis(10),
            eager_spinup: true,
            rolo_on_duty: 1,
            roloe_idle_spindown: Duration::from_secs(30),
            roloe_cache_fraction: 0.5,
            scheduler: SchedulerKind::Fifo,
            disk: DiskParams::ultrastar_36z15(),
            seed: 0x5eed,
            faults: FaultPlan::none(),
            log_segment: default_log_segment(),
            compact_live_frac: default_compact_live_frac(),
            archive_ttl: default_archive_ttl(),
            scrub_enabled: false,
            scrub_chunk: 1 << 20,
            scrub_interval: Duration::from_millis(500),
            telemetry_enabled: true,
            telemetry_window: Duration::from_secs(60),
            telemetry_retain: 256,
            slos: default_slos(),
            slo_burn: default_burn_policy(),
            exemplars_per_window: 8,
            rca_enabled: false,
        }
    }

    /// Per-disk data-region size: the capacity not set aside for logging,
    /// rounded down to a whole stripe unit.
    pub fn data_region(&self) -> u64 {
        let data = self.disk.capacity_bytes.saturating_sub(self.logger_region);
        (data / self.stripe_unit) * self.stripe_unit
    }

    /// Builds the RAID10 geometry implied by this configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] for degenerate shapes (zero pairs,
    /// logger region exceeding the disk, …).
    pub fn geometry(&self) -> Result<ArrayGeometry, GeometryError> {
        if self.data_region() == 0 {
            return Err(GeometryError::InvalidConfig(format!(
                "logger region {} leaves no data region on a {}-byte disk",
                self.logger_region, self.disk.capacity_bytes
            )));
        }
        ArrayGeometry::new(
            self.pairs,
            self.stripe_unit,
            self.data_region(),
            self.logger_region,
        )
    }

    /// Total number of physical disks, including GRAID's dedicated log
    /// disk when applicable.
    pub fn disk_count(&self) -> usize {
        self.pairs * 2 + usize::from(self.scheme == Scheme::Graid)
    }

    /// Disk id of GRAID's dedicated log disk.
    ///
    /// # Panics
    ///
    /// Panics if the scheme is not [`Scheme::Graid`].
    pub fn graid_log_disk(&self) -> usize {
        assert_eq!(self.scheme, Scheme::Graid, "no log disk in {}", self.scheme);
        self.pairs * 2
    }

    /// Validates tunables that the geometry check does not cover.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for out-of-range thresholds, a zero
    /// destage chunk, a GRAID log sizing problem, or an invalid fault
    /// plan — any of which would otherwise cause silent misbehaviour
    /// mid-run.
    pub fn check(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.destage_threshold) || self.destage_threshold <= 0.0 {
            return Err(ConfigError::Tunable("destage threshold out of range"));
        }
        if !(0.0..1.0).contains(&self.rotate_free_threshold) {
            return Err(ConfigError::Tunable("rotate threshold out of range"));
        }
        if self.destage_chunk == 0 {
            return Err(ConfigError::Tunable("zero destage chunk"));
        }
        if self.rolo_on_duty < 1 || self.rolo_on_duty >= self.pairs.max(2) {
            return Err(ConfigError::Tunable("rolo_on_duty out of range"));
        }
        if !(0.0..1.0).contains(&self.roloe_cache_fraction) {
            return Err(ConfigError::Tunable("cache fraction out of range"));
        }
        if self.graid_log_capacity == 0 && self.scheme == Scheme::Graid {
            return Err(ConfigError::Tunable("GRAID requires a log disk capacity"));
        }
        if self.graid_log_capacity > self.disk.capacity_bytes {
            return Err(ConfigError::Tunable("GRAID log capacity exceeds the disk"));
        }
        if self.log_segment < 4096 || self.log_segment > self.logger_region {
            return Err(ConfigError::Tunable("log segment size out of range"));
        }
        if !(0.0..1.0).contains(&self.compact_live_frac) {
            return Err(ConfigError::Tunable(
                "compaction live fraction out of range",
            ));
        }
        if self.scrub_enabled {
            if self.scrub_chunk == 0 {
                return Err(ConfigError::Tunable("zero scrub chunk"));
            }
            if self.scrub_interval.is_zero() {
                return Err(ConfigError::Tunable("zero scrub interval"));
            }
        }
        if self.telemetry_enabled {
            if self.telemetry_window.is_zero() {
                return Err(ConfigError::Tunable("zero telemetry window"));
            }
            if self.telemetry_retain == 0 {
                return Err(ConfigError::Tunable("zero telemetry retention"));
            }
            self.slo_burn.check().map_err(ConfigError::Tunable)?;
            for slo in &self.slos {
                slo.check().map_err(ConfigError::Tunable)?;
            }
            // The exemplar recorder's memory bound is retain · k spans;
            // cap k so a typo cannot turn "bounded" into "everything".
            if self.exemplars_per_window > 4096 {
                return Err(ConfigError::Tunable("exemplars_per_window out of range"));
            }
        }
        if self.rca_enabled {
            if !self.telemetry_enabled {
                return Err(ConfigError::Tunable("RCA requires telemetry"));
            }
            if self.exemplars_per_window == 0 {
                return Err(ConfigError::Tunable("RCA requires exemplar capture"));
            }
        }
        self.faults
            .check(self.disk_count())
            .map_err(ConfigError::Faults)?;
        Ok(())
    }

    /// Panicking form of [`SimConfig::check`], for callers that treat a
    /// bad configuration as a programming error.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message when validation fails.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// A [`SimConfig`] that failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A tunable is out of range.
    Tunable(&'static str),
    /// The fault plan is inconsistent with the array.
    Faults(FaultPlanError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Tunable(msg) => f.write_str(msg),
            ConfigError::Faults(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Tunable(_) => None,
            ConfigError::Faults(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_ii() {
        let c = SimConfig::paper_default(Scheme::RoloP, 20);
        assert_eq!(c.stripe_unit, 64 * 1024);
        assert_eq!(c.logger_region, 8 << 30);
        assert_eq!(c.graid_log_capacity, 16 << 30);
        assert_eq!(c.disk_count(), 40);
        c.validate();
        let geo = c.geometry().unwrap();
        assert_eq!(geo.pairs(), 20);
        // 18.4 GB disk minus 8 GiB logger ≈ 10 GB data region.
        assert!(geo.data_region() > 9 << 30);
        assert!(geo.data_region().is_multiple_of(c.stripe_unit));
    }

    #[test]
    fn graid_gets_extra_disk() {
        let c = SimConfig::paper_default(Scheme::Graid, 10);
        assert_eq!(c.disk_count(), 21);
        assert_eq!(c.graid_log_disk(), 20);
    }

    #[test]
    #[should_panic(expected = "no log disk")]
    fn log_disk_only_for_graid() {
        SimConfig::paper_default(Scheme::Raid10, 10).graid_log_disk();
    }

    #[test]
    fn oversized_logger_region_rejected() {
        let mut c = SimConfig::paper_default(Scheme::RoloP, 4);
        c.logger_region = c.disk.capacity_bytes + 1;
        assert!(c.geometry().is_err());
    }

    #[test]
    fn check_flags_bad_tunables() {
        let mut c = SimConfig::paper_default(Scheme::RoloP, 4);
        assert!(c.check().is_ok());
        c.destage_chunk = 0;
        assert_eq!(c.check(), Err(ConfigError::Tunable("zero destage chunk")));
    }

    #[test]
    fn check_flags_bad_scrub_knobs() {
        let mut c = SimConfig::paper_default(Scheme::RoloE, 4);
        c.scrub_enabled = true;
        assert!(c.check().is_ok());
        c.scrub_chunk = 0;
        assert_eq!(c.check(), Err(ConfigError::Tunable("zero scrub chunk")));
        c.scrub_chunk = 1 << 20;
        c.scrub_interval = Duration::ZERO;
        assert_eq!(c.check(), Err(ConfigError::Tunable("zero scrub interval")));
        // With scrubbing disabled the knobs are inert and unchecked.
        c.scrub_enabled = false;
        c.scrub_chunk = 0;
        assert!(c.check().is_ok());
    }

    #[test]
    fn check_flags_bad_telemetry_knobs() {
        let mut c = SimConfig::paper_default(Scheme::RoloP, 4);
        assert!(c.check().is_ok(), "defaults validate");
        c.telemetry_window = Duration::ZERO;
        assert_eq!(
            c.check(),
            Err(ConfigError::Tunable("zero telemetry window"))
        );
        c.telemetry_window = Duration::from_secs(60);
        c.telemetry_retain = 0;
        assert_eq!(
            c.check(),
            Err(ConfigError::Tunable("zero telemetry retention"))
        );
        c.telemetry_retain = 16;
        c.slo_burn.breach_burn = 0.1;
        assert_eq!(
            c.check(),
            Err(ConfigError::Tunable(
                "breach burn threshold must be at least the warn threshold"
            ))
        );
        c.slo_burn = default_burn_policy();
        c.slos.push(SloSpec::energy("bad", -1.0));
        assert!(matches!(c.check(), Err(ConfigError::Tunable(_))));
        // With telemetry disabled the knobs are inert and unchecked.
        c.telemetry_enabled = false;
        c.telemetry_retain = 0;
        assert!(c.check().is_ok());
    }

    #[test]
    fn check_flags_bad_forensics_knobs() {
        let mut c = SimConfig::paper_default(Scheme::RoloE, 4);
        c.rca_enabled = true;
        assert!(c.check().is_ok(), "RCA on top of defaults validates");
        c.exemplars_per_window = 0;
        assert_eq!(
            c.check(),
            Err(ConfigError::Tunable("RCA requires exemplar capture"))
        );
        c.exemplars_per_window = 8;
        c.telemetry_enabled = false;
        assert_eq!(
            c.check(),
            Err(ConfigError::Tunable("RCA requires telemetry"))
        );
        c.telemetry_enabled = true;
        c.exemplars_per_window = 1 << 20;
        assert_eq!(
            c.check(),
            Err(ConfigError::Tunable("exemplars_per_window out of range"))
        );
        // With RCA off, zero exemplars simply disables capture.
        c.rca_enabled = false;
        c.exemplars_per_window = 0;
        assert!(c.check().is_ok());
    }

    #[test]
    fn check_flags_bad_corruption_knobs() {
        let mut c = SimConfig::paper_default(Scheme::RoloP, 4);
        c.faults.lse_rate_active = -0.5;
        assert!(matches!(c.check(), Err(ConfigError::Faults(_))));
        let mut c = SimConfig::paper_default(Scheme::RoloP, 4);
        c.faults.shock_rate = 0.1;
        c.faults.shock_enclosure = 0;
        assert!(matches!(c.check(), Err(ConfigError::Faults(_))));
    }

    #[test]
    fn check_flags_bad_fault_plan() {
        let mut c = SimConfig::paper_default(Scheme::Raid10, 4);
        c.faults.disk_failures.push((77, Duration::from_secs(1)));
        assert!(matches!(c.check(), Err(ConfigError::Faults(_))));
    }

    #[test]
    fn scheme_display_names() {
        let names: Vec<String> = Scheme::all().iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["RAID10", "GRAID", "RoLo-P", "RoLo-R", "RoLo-E"]);
    }
}
