//! GRAID baseline: centralized logging on a dedicated log disk.
//!
//! Reimplementation of GRAID (Mao et al., MASCOTS'08) as described in
//! §II of the RoLo paper: all mirrored disks are kept in STANDBY; each
//! write puts one copy on its primary (in place) and one sequentially on
//! the dedicated log disk. When log occupancy reaches a threshold (80 %),
//! *all* mirrors are spun up and the stale mirror blocks are updated in
//! parallel from the primaries; the log is then reclaimed wholesale and
//! the mirrors spun back down.
//!
//! During a destage period incoming writes go directly to primary +
//! mirror (the mirrors are up anyway), which both matches Fig. 1(c) and
//! guarantees the destage terminates.

use crate::ctx::SimCtx;
use crate::dirty::DirtyMap;
use crate::faults::surviving_partner;
use crate::logspace::LoggerSpace;
use crate::policy::{Policy, PolicyStats};
use crate::recovery::recovery_plan;
use crate::segment::{replay_journals, LogManifest, SegmentStore};
use crate::slot::IoSlot;
use rolo_disk::{DiskId, DiskRequest, IoKind, IoOutcome, Priority};
use rolo_metrics::Phase;
use rolo_obs::{LegFlavor, SimEvent};
use rolo_sim::{Duration, IoMap};
use rolo_trace::{ReqKind, TraceRecord};
use std::collections::HashSet;

/// Default log-segment size (bytes) until the driver tunes it.
const DEFAULT_SEG_BYTES: u64 = 4 << 20;
/// Default archive-frame TTL (µs) until the driver tunes it.
const DEFAULT_ARCHIVE_TTL_US: u64 = 60_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Logging,
    Destaging,
}

#[derive(Debug, Clone, Copy)]
enum Tag {
    User(u64, IoSlot),
    DestageRead { pair: usize, off: u64, len: u64 },
    DestageWrite { pair: usize, len: u64 },
}

#[derive(Debug, Default)]
struct UserMeta {
    /// Extents to mark stale on the mirror at completion.
    marks: Vec<(usize, u64, u64)>,
    /// Extents freshly written in place on the mirror at completion.
    clears: Vec<(usize, u64, u64)>,
    /// Journal record ids, index-aligned with `marks`; committed with a
    /// fresh LSN when the request acks. Emptied wholesale if the log
    /// disk dies mid-flight (the wiped journal restarts record ids).
    appends: Vec<u64>,
}

/// The GRAID controller.
#[derive(Debug)]
pub struct GraidPolicy {
    pairs: usize,
    log_disk: DiskId,
    threshold: f64,
    chunk: u64,
    log: LoggerSpace,
    /// Checksummed record journal mirroring the log disk's contents
    /// (DESIGN.md §10). GRAID runs no compactor: the whole-log destage
    /// cycle reclaims every segment wholesale, so fragmentation never
    /// accumulates between cycles.
    journal: SegmentStore,
    /// Controller-durable (NVRAM) clear/reclaim journal (§III-E).
    manifest: LogManifest,
    next_lsn: u64,
    seg_bytes: u64,
    archive_ttl_us: u64,
    dirty: Vec<DirtyMap>,
    chain_active: Vec<bool>,
    mode: Mode,
    period: u64,
    io_map: IoMap<Tag>,
    user_meta: IoMap<UserMeta>,
    logging_token: Option<u64>,
    destaging_token: Option<u64>,
    phase_energy_mark: f64,
    stats: PolicyStats,
    draining: bool,
}

impl GraidPolicy {
    /// Creates a GRAID controller for `pairs` mirrored pairs with a log
    /// disk of `log_capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized log or out-of-range threshold.
    pub fn new(
        pairs: usize,
        log_disk: DiskId,
        log_capacity: u64,
        threshold: f64,
        chunk: u64,
    ) -> Self {
        assert!(log_capacity > 0, "zero log capacity");
        assert!((0.0..=1.0).contains(&threshold) && threshold > 0.0);
        GraidPolicy {
            pairs,
            log_disk,
            threshold,
            chunk,
            log: LoggerSpace::new(0, log_capacity),
            journal: SegmentStore::new(DEFAULT_SEG_BYTES),
            manifest: LogManifest::new(),
            next_lsn: 0,
            seg_bytes: DEFAULT_SEG_BYTES,
            archive_ttl_us: DEFAULT_ARCHIVE_TTL_US,
            dirty: (0..pairs).map(|_| DirtyMap::new()).collect(),
            chain_active: vec![false; pairs],
            mode: Mode::Logging,
            period: 0,
            io_map: IoMap::default(),
            user_meta: IoMap::default(),
            logging_token: None,
            destaging_token: None,
            phase_energy_mark: 0.0,
            stats: PolicyStats::default(),
            draining: false,
        }
    }

    /// Current log occupancy in `[0, 1]`.
    pub fn log_occupancy(&self) -> f64 {
        self.log.occupancy()
    }

    /// Total stale bytes across all mirrors.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.iter().map(|d| d.bytes()).sum()
    }

    /// Tunes the journal geometry (before the run starts); resets the
    /// journal.
    pub fn set_segment_tuning(&mut self, seg_bytes: u64, archive_ttl: Duration) {
        self.seg_bytes = seg_bytes;
        self.archive_ttl_us = archive_ttl.as_micros();
        self.journal = SegmentStore::new(seg_bytes);
    }

    /// Read-only view of the log disk's journal (tests).
    pub fn journal(&self) -> &SegmentStore {
        &self.journal
    }

    /// The controller-durable log manifest (tests).
    pub fn manifest(&self) -> &LogManifest {
        &self.manifest
    }

    fn alloc_lsn(&mut self) -> u64 {
        self.next_lsn += 1;
        self.next_lsn
    }

    /// Appends a journal record for one logged extent, emitting segment
    /// lifecycle events as segments seal and open.
    fn journal_append(&mut self, ctx: &mut SimCtx, pair: usize, lba: u64, len: u64) -> u64 {
        let disk = self.log_disk;
        let out = self.journal.append(pair, self.period, lba, len);
        if let Some((segment, live_bytes)) = out.sealed {
            ctx.emit(|| SimEvent::SegmentSealed {
                disk,
                segment,
                live_bytes,
            });
        }
        if let Some(segment) = out.opened {
            ctx.emit(|| SimEvent::SegmentAllocated { disk, segment });
        }
        out.rid
    }

    /// Journals a dirty-map clear at the same instant the in-memory
    /// `clear_range` / `take_next` happens.
    fn journal_clear(&mut self, pair: usize, off: u64, len: u64) {
        let lsn = self.alloc_lsn();
        self.manifest.clear(lsn, pair, off, len);
        self.journal.clear_extent(pair, off, len);
    }

    /// Archives fully-dead sealed segments and retires expired frames.
    fn sweep_archives(&mut self, ctx: &mut SimCtx) {
        let disk = self.log_disk;
        let now_us = ctx.now.as_micros();
        for segment in self.journal.archive_ready() {
            let (frame, compressed_bytes) = self.journal.archive(segment, now_us);
            ctx.emit(|| SimEvent::SegmentArchived {
                disk,
                segment,
                frame,
                compressed_bytes,
            });
        }
        for frame in self.journal.retire_expired(now_us, self.archive_ttl_us) {
            ctx.emit(|| SimEvent::ArchiveFrameRetired { disk, frame });
        }
    }

    /// Recovery-by-replay after a disk death. GRAID keeps its sole
    /// journal on the dedicated log disk, so a log-disk death leaves no
    /// surviving journal: every pair with a committed record newer than
    /// its manifest watermark is lost to replay and falls back to the
    /// controller's NVRAM dirty map (which the ensuing whole-array
    /// destage then flushes from the primaries). Any other death leaves
    /// the journal intact and replay must reconstruct every pair.
    fn replay_after_failure(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        self.stats.log_replays += 1;
        ctx.emit(|| SimEvent::ReplayStarted { disk });
        let survivors: Vec<&SegmentStore> = if disk == self.log_disk {
            Vec::new()
        } else {
            vec![&self.journal]
        };
        let outcome = replay_journals(survivors, &self.manifest, self.pairs);
        self.stats.torn_records += outcome.torn_records;
        if outcome.torn_records > 0 {
            let count = outcome.torn_records;
            ctx.emit(|| SimEvent::TornRecordDetected { disk, count });
        }
        let lost: HashSet<usize> = if disk == self.log_disk {
            self.journal
                .committed_records()
                .into_iter()
                .filter(|&(lsn, pair)| lsn > self.manifest.pair_stable(pair))
                .map(|(_, pair)| pair)
                .collect()
        } else {
            HashSet::new()
        };
        let mut divergent_pairs = 0u64;
        for (pair, map) in outcome.maps.iter().enumerate() {
            if lost.contains(&pair) {
                continue;
            }
            if *map == self.dirty[pair] {
                // Install the replayed map: load-bearing (the controller
                // proceeds on reconstructed state) yet behavior-identical.
                self.dirty[pair] = map.clone();
            } else {
                divergent_pairs += 1;
                self.stats.replay_divergence += 1;
            }
        }
        let records = outcome.records_scanned;
        let torn = outcome.torn_records;
        ctx.emit(|| SimEvent::ReplayCompleted {
            disk,
            records,
            torn,
            divergent_pairs,
        });
    }

    fn mirror(&self, ctx: &SimCtx, pair: usize) -> DiskId {
        ctx.geometry().mirror_disk(pair)
    }

    fn start_destage(&mut self, ctx: &mut SimCtx) {
        if self.mode == Mode::Destaging {
            // Idempotent kick: re-pump everything that can run.
            for pair in 0..self.pairs {
                if ctx.disk(self.mirror(ctx, pair)).is_spun_up() {
                    self.pump(ctx, pair);
                }
            }
            return;
        }
        self.mode = Mode::Destaging;
        ctx.emit(|| SimEvent::DestageStart { pair: None });
        // A whole-log destage cycle touches every disk in the array
        // (reads from primaries, writes to every mirror).
        let all: Vec<DiskId> = (0..ctx.disk_count()).collect();
        ctx.span_destage_begin(None, &all);
        let energy = ctx.total_energy();
        if let Some(tok) = self.logging_token.take() {
            ctx.intervals
                .end(tok, ctx.now, energy - self.phase_energy_mark);
        }
        self.phase_energy_mark = energy;
        self.destaging_token = Some(ctx.intervals.begin(Phase::Destaging, ctx.now));
        for pair in 0..self.pairs {
            let m = self.mirror(ctx, pair);
            if ctx.disk(m).is_spun_up() {
                self.pump(ctx, pair);
            } else {
                ctx.spin_up(m);
            }
        }
        // Degenerate case: nothing dirty anywhere.
        self.check_destage_done(ctx);
    }

    fn pump(&mut self, ctx: &mut SimCtx, pair: usize) {
        if self.mode != Mode::Destaging || self.chain_active[pair] {
            return;
        }
        match self.dirty[pair].take_next(self.chunk) {
            Some((off, len)) => {
                self.journal_clear(pair, off, len);
                self.chain_active[pair] = true;
                let p = ctx.geometry().primary_disk(pair);
                let id = ctx.submit(p, IoKind::Read, off, len, Priority::Background);
                self.io_map.insert(id, Tag::DestageRead { pair, off, len });
            }
            None => self.check_destage_done(ctx),
        }
    }

    fn check_destage_done(&mut self, ctx: &mut SimCtx) {
        if self.mode != Mode::Destaging {
            return;
        }
        let busy = self.chain_active.iter().any(|&b| b);
        let dirty = self.dirty.iter().any(|d| !d.is_clean());
        if busy || dirty {
            return;
        }
        // Cycle complete: reclaim the whole log, resume logging. Every
        // journal segment is now fully dead, so the sweep archives them
        // wholesale — GRAID needs no background compactor.
        self.log.reclaim(|_| true);
        for pair in 0..self.pairs {
            let lsn = self.alloc_lsn();
            self.manifest.reclaim(lsn, pair);
            self.journal.reclaim_pair(pair);
        }
        self.sweep_archives(ctx);
        ctx.log_timeline.push(ctx.now, 0.0);
        let energy = ctx.total_energy();
        if let Some(tok) = self.destaging_token.take() {
            ctx.intervals
                .end(tok, ctx.now, energy - self.phase_energy_mark);
        }
        self.phase_energy_mark = energy;
        self.mode = Mode::Logging;
        self.period += 1;
        self.stats.destage_cycles += 1;
        ctx.emit(|| SimEvent::DestageEnd { pair: None });
        ctx.span_destage_end(None);
        self.logging_token = Some(ctx.intervals.begin(Phase::Logging, ctx.now));
        if !self.draining {
            for pair in 0..self.pairs {
                let m = self.mirror(ctx, pair);
                ctx.spin_down(m);
            }
        }
    }
}

impl Policy for GraidPolicy {
    fn name(&self) -> &'static str {
        "GRAID"
    }

    fn initial_standby(&self, disk: DiskId) -> bool {
        // Mirrors start spun down; primaries and the log disk are up.
        disk >= self.pairs && disk < 2 * self.pairs
    }

    fn attach(&mut self, ctx: &mut SimCtx) {
        self.logging_token = Some(ctx.intervals.begin(Phase::Logging, ctx.now));
        self.phase_energy_mark = ctx.total_energy();
    }

    fn on_user_request(&mut self, ctx: &mut SimCtx, user_id: u64, rec: &TraceRecord) {
        let exts = ctx
            .geometry()
            .split(rec.offset, rec.bytes)
            .expect("driver keeps requests in range");
        let mut meta = UserMeta::default();
        let mut subs: u32 = 0;
        // Admission hold: one sub reserved up front so the slab slot
        // exists before the first sub-request can possibly complete;
        // the balance is topped up below once `subs` is known.
        let uslot = ctx.register_user(user_id, rec.kind, ctx.now, 1);
        match rec.kind {
            ReqKind::Read => {
                for ext in &exts {
                    let mut d = ctx.geometry().primary_disk(ext.pair);
                    let mut flavor = LegFlavor::Transfer;
                    if ctx.is_degraded(d) {
                        // Degraded mode: the mirror absorbs the primary's
                        // reads until its rebuild completes (§III-C).
                        let from = d;
                        d = ctx.geometry().mirror_disk(ext.pair);
                        flavor = LegFlavor::DegradedRedirect;
                        ctx.note_redirect();
                        ctx.emit(|| SimEvent::ReadRedirected { from, to: d });
                    }
                    let id =
                        ctx.submit(d, IoKind::Read, ext.offset, ext.bytes, Priority::Foreground);
                    self.io_map.insert(id, Tag::User(user_id, uslot));
                    ctx.tag_io(id, user_id, flavor);
                    subs += 1;
                }
            }
            ReqKind::Write => {
                // Primary copies in place.
                for ext in &exts {
                    let p = ctx.geometry().primary_disk(ext.pair);
                    let id = ctx.submit(
                        p,
                        IoKind::Write,
                        ext.offset,
                        ext.bytes,
                        Priority::Foreground,
                    );
                    self.io_map.insert(id, Tag::User(user_id, uslot));
                    ctx.tag_io(id, user_id, LegFlavor::Transfer);
                    subs += 1;
                }
                // Second copies appended to the log disk.
                let mut logged_all = true;
                for ext in &exts {
                    match self.log.alloc(ext.bytes, ext.pair, self.period) {
                        Some(segs) => {
                            for seg in segs {
                                let id = ctx.submit(
                                    self.log_disk,
                                    IoKind::Write,
                                    seg.offset,
                                    seg.bytes,
                                    Priority::Foreground,
                                );
                                self.io_map.insert(id, Tag::User(user_id, uslot));
                                ctx.tag_io(id, user_id, LegFlavor::LogAppend);
                                subs += 1;
                                self.stats.log_appended_bytes += seg.bytes;
                            }
                            let rid = self.journal_append(ctx, ext.pair, ext.offset, ext.bytes);
                            meta.appends.push(rid);
                            meta.marks.push((ext.pair, ext.offset, ext.bytes));
                        }
                        None => {
                            logged_all = false;
                            // Log full: fall back to a direct mirror copy.
                            let m = ctx.geometry().mirror_disk(ext.pair);
                            let id = ctx.submit(
                                m,
                                IoKind::Write,
                                ext.offset,
                                ext.bytes,
                                Priority::Foreground,
                            );
                            self.io_map.insert(id, Tag::User(user_id, uslot));
                            ctx.tag_io(id, user_id, LegFlavor::MirrorCopy);
                            subs += 1;
                            meta.clears.push((ext.pair, ext.offset, ext.bytes));
                            self.stats.direct_writes += 1;
                        }
                    }
                }
                ctx.log_timeline.push(ctx.now, self.log.used_bytes() as f64);
                // The 80 % threshold leaves headroom so logging continues
                // while the mirrors spin up and destage; only exhaustion
                // forces direct writes.
                if !logged_all || self.log.occupancy() >= self.threshold {
                    self.start_destage(ctx);
                }
            }
        }
        debug_assert!(subs >= 1, "every admitted request issues at least one sub");
        if subs > 1 {
            ctx.add_user_subs(uslot, subs - 1);
        }
        self.user_meta.insert(user_id, meta);
    }

    fn on_io_complete(&mut self, ctx: &mut SimCtx, _disk: DiskId, req: DiskRequest) {
        match self.io_map.remove(&req.id).expect("unknown sub-request") {
            Tag::User(user, uslot) => {
                if ctx.user_sub_done(uslot).is_some() {
                    let meta = self.user_meta.remove(&user).unwrap_or_default();
                    for (i, (pair, off, len)) in meta.marks.into_iter().enumerate() {
                        // The ack instant is the commit point: stamp the
                        // journal record with the mutation's LSN.
                        let lsn = self.alloc_lsn();
                        if let Some(&rid) = meta.appends.get(i) {
                            self.journal.commit(rid, lsn);
                        }
                        self.dirty[pair].mark(off, len);
                        // Newly stale data may arrive mid-destage; keep the
                        // pump moving.
                        if self.mode == Mode::Destaging {
                            self.pump(ctx, pair);
                        }
                    }
                    for (pair, off, len) in meta.clears {
                        self.journal_clear(pair, off, len);
                        self.dirty[pair].clear_range(off, len);
                    }
                }
            }
            Tag::DestageRead { pair, off, len } => {
                let m = ctx.geometry().mirror_disk(pair);
                let id = ctx.submit(m, IoKind::Write, off, len, Priority::Background);
                self.io_map.insert(id, Tag::DestageWrite { pair, len });
            }
            Tag::DestageWrite { pair, len } => {
                self.stats.destaged_bytes += len;
                self.chain_active[pair] = false;
                self.pump(ctx, pair);
            }
        }
    }

    fn on_io_error(
        &mut self,
        ctx: &mut SimCtx,
        disk: DiskId,
        req: DiskRequest,
        outcome: IoOutcome,
    ) {
        // Only user reads hitting a latent sector error or a degraded
        // slot can be re-served elsewhere; everything else closes through
        // the normal completion path (the rebuild restores the
        // replacement's copy).
        if req.kind == IoKind::Read && (outcome == IoOutcome::MediaError || ctx.is_degraded(disk)) {
            if let Some(Tag::User(user, uslot)) = self.io_map.get(&req.id).copied() {
                if let Some(p) =
                    surviving_partner(ctx.geometry(), disk).filter(|&p| !ctx.is_degraded(p))
                {
                    self.io_map.remove(&req.id);
                    ctx.note_redirect();
                    ctx.emit(|| SimEvent::ReadRedirected { from: disk, to: p });
                    let id =
                        ctx.submit(p, IoKind::Read, req.offset, req.bytes, Priority::Foreground);
                    self.io_map.insert(id, Tag::User(user, uslot));
                    ctx.tag_io(id, user, LegFlavor::DegradedRedirect);
                    return;
                }
            }
        }
        self.on_io_complete(ctx, disk, req);
    }

    fn on_disk_failure(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        let plan = recovery_plan(crate::config::Scheme::Graid, ctx.geometry(), disk, 0, &[]);
        if disk == self.log_disk {
            // The log held only second copies, but they were the sole
            // redundancy for stale mirror blocks: replay what the
            // manifest can vouch for (lost pairs fall back to the NVRAM
            // dirty maps), drop the now-gone log contents and destage
            // everything dirty from the primaries.
            self.replay_after_failure(ctx, disk);
            self.journal = SegmentStore::new(self.seg_bytes);
            for meta in self.user_meta.values_mut() {
                meta.appends.clear();
            }
            self.log.reclaim(|_| true);
            ctx.log_timeline.push(ctx.now, 0.0);
            ctx.begin_rebuild(&plan, 0);
            if self.dirty_bytes() > 0 {
                self.start_destage(ctx);
            }
            return;
        }
        ctx.begin_rebuild(&plan, ctx.geometry().data_region());
        // A mirror that died while (or before) spinning up for a destage
        // loses its spin-up wake with the dead disk; the replacement is
        // already spinning, so kick the pair's pump directly.
        if self.mode == Mode::Destaging && disk >= self.pairs && disk < 2 * self.pairs {
            self.pump(ctx, disk - self.pairs);
        }
    }

    fn on_rebuild_complete(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        // A rebuilt mirror goes back to standby once logging resumes.
        if self.mode == Mode::Logging
            && !self.draining
            && disk >= self.pairs
            && disk < 2 * self.pairs
        {
            ctx.spin_down(disk);
        }
    }

    fn on_spin_up(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        if disk >= self.pairs && disk < 2 * self.pairs {
            self.pump(ctx, disk - self.pairs);
        }
    }

    fn on_spin_down(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}
    fn on_timer(&mut self, _ctx: &mut SimCtx, _token: u64) {}

    fn begin_drain(&mut self, ctx: &mut SimCtx) {
        self.draining = true;
        if self.log.used_bytes() > 0 || self.dirty_bytes() > 0 {
            self.start_destage(ctx);
        }
    }

    fn is_drained(&self, ctx: &SimCtx) -> bool {
        self.mode == Mode::Logging
            && self.log.used_bytes() == 0
            && self.dirty.iter().all(|d| d.is_clean())
            && ctx.outstanding_users() == 0
            && self.io_map.is_empty()
    }

    fn stats(&self) -> PolicyStats {
        let mut s = self.stats;
        let js = self.journal.stats();
        s.segments_sealed += js.sealed_segments;
        s.segments_archived += js.archived_segments;
        s.frames_retired += js.retired_frames;
        s.compacted_bytes += js.compacted_bytes;
        s
    }

    fn check_consistency(&self, ctx: &SimCtx) -> Result<(), String> {
        self.log.check_invariants()?;
        self.journal
            .check_invariants()
            .map_err(|e| format!("journal {}: {e}", self.log_disk))?;
        if self.journal.live_bytes() != 0 {
            return Err(format!(
                "journal {} still tracks {} live bytes",
                self.log_disk,
                self.journal.live_bytes()
            ));
        }
        for (pair, d) in self.dirty.iter().enumerate() {
            d.check_invariants()?;
            if !d.is_clean() {
                return Err(format!("pair {pair} still has {} stale bytes", d.bytes()));
            }
        }
        if self.log.used_bytes() != 0 {
            return Err(format!("{} log bytes unreclaimed", self.log.used_bytes()));
        }
        if ctx.outstanding_users() != 0 {
            return Err(format!(
                "{} user requests unfinished",
                ctx.outstanding_users()
            ));
        }
        if !self.io_map.is_empty() {
            return Err(format!("{} orphaned sub-requests", self.io_map.len()));
        }
        Ok(())
    }
}
