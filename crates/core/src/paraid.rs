//! PARAID-inspired gear-shifting baseline (related work, §VI).
//!
//! The paper contrasts RoLo's use of free space with PARAID's (Weddle et
//! al., TOS'07): *"PARAID uses it to gather all active data onto a small
//! number of disks in a RAID"*, shifting between power "gears" as load
//! changes. This controller is a two-gear PARAID-style adaptation to the
//! RAID10 substrate, built to make the §VI comparison quantitative:
//!
//! * **Low gear** — all mirrors spun down. Writes put their second copy
//!   into a *shadow region* carved from the free space of the (always
//!   active) primaries, round-robin across primaries; mirror copies go
//!   stale.
//! * **High gear** — all mirrors up; writes go direct (plain RAID10);
//!   stale mirror blocks are synced in the background and the shadow
//!   space is reclaimed when the sync completes.
//! * **Shifting** — an EWMA of the arrival rate triggers gear-up when it
//!   crosses `up_iops`; after the load stays below `down_iops` for a
//!   hold period, the array shifts back down (hysteresis against gear
//!   thrash).
//!
//! The contrast with RoLo this enables: PARAID spins *every* mirror per
//! shift (GRAID-like spin bursts, gear-up latency spikes under bursty
//! load), where RoLo touches one logger at a time.

use crate::ctx::SimCtx;
use crate::dirty::DirtyMap;
use crate::logspace::LoggerSpace;
use crate::policy::{Policy, PolicyStats};
use crate::slot::IoSlot;
use rolo_disk::{DiskId, DiskRequest, IoKind, Priority};
use rolo_obs::LegFlavor;
use rolo_sim::{Duration, IoMap, SimTime};
use rolo_trace::{ReqKind, TraceRecord};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gear {
    Low,
    High,
}

#[derive(Debug, Clone, Copy)]
enum Tag {
    User(u64, IoSlot),
    SyncRead { pair: usize, off: u64, len: u64 },
    SyncWrite { pair: usize, len: u64 },
}

#[derive(Debug, Default)]
struct UserMeta {
    marks: Vec<(usize, u64, u64)>,
    clears: Vec<(usize, u64, u64)>,
}

/// Timer token for the gear-down hold check.
const GEAR_TIMER: u64 = u64::MAX - 7;

/// The PARAID-inspired two-gear controller.
#[derive(Debug)]
pub struct ParaidPolicy {
    pairs: usize,
    chunk: u64,
    /// Shadow regions on the primaries, indexed by disk id (0..pairs).
    shadows: Vec<LoggerSpace>,
    shadow_cursor: usize,
    dirty: Vec<DirtyMap>,
    chain_active: Vec<bool>,
    gear: Gear,
    syncing: bool,
    io_map: IoMap<Tag>,
    user_meta: IoMap<UserMeta>,
    /// EWMA arrival rate (requests/s) and its last update instant.
    rate: f64,
    rate_at: SimTime,
    /// Gear-shift thresholds (requests/s).
    up_iops: f64,
    down_iops: f64,
    /// How long the load must stay low before gearing down.
    hold: Duration,
    low_since: Option<SimTime>,
    draining: bool,
    stats: PolicyStats,
}

impl ParaidPolicy {
    /// Creates a two-gear controller. `shadow_base`/`shadow_size` locate
    /// the per-primary shadow region; gear-up at `up_iops`, gear-down
    /// after the EWMA stays under `down_iops` for `hold`.
    ///
    /// # Panics
    ///
    /// Panics on zero pairs/shadow or non-positive thresholds with
    /// `up_iops ≤ down_iops`.
    pub fn new(
        pairs: usize,
        shadow_base: u64,
        shadow_size: u64,
        up_iops: f64,
        down_iops: f64,
        hold: Duration,
        chunk: u64,
    ) -> Self {
        assert!(pairs > 0 && shadow_size > 0);
        assert!(
            up_iops > down_iops && down_iops > 0.0,
            "need up_iops > down_iops > 0"
        );
        ParaidPolicy {
            pairs,
            chunk,
            shadows: (0..pairs)
                .map(|_| LoggerSpace::new(shadow_base, shadow_size))
                .collect(),
            shadow_cursor: 0,
            dirty: (0..pairs).map(|_| DirtyMap::new()).collect(),
            chain_active: vec![false; pairs],
            gear: Gear::Low,
            syncing: false,
            io_map: IoMap::default(),
            user_meta: IoMap::default(),
            rate: 0.0,
            rate_at: SimTime::ZERO,
            up_iops,
            down_iops,
            hold,
            low_since: None,
            draining: false,
            stats: PolicyStats::default(),
        }
    }

    /// Current gear (true = high).
    pub fn in_high_gear(&self) -> bool {
        self.gear == Gear::High
    }

    /// Total live shadow bytes.
    pub fn shadow_used_bytes(&self) -> u64 {
        self.shadows.iter().map(|s| s.used_bytes()).sum()
    }

    fn mirror(&self, ctx: &SimCtx, pair: usize) -> DiskId {
        ctx.geometry().mirror_disk(pair)
    }

    /// Exponentially-weighted arrival rate with a 30 s time constant.
    fn note_arrival(&mut self, now: SimTime) {
        let dt = now.since(self.rate_at).as_secs_f64();
        self.rate_at = now;
        let tau = 30.0;
        let decay = (-dt / tau).exp();
        self.rate = self.rate * decay + (1.0 - decay) / dt.max(1e-6);
    }

    fn gear_up(&mut self, ctx: &mut SimCtx) {
        if self.gear == Gear::High {
            return;
        }
        self.gear = Gear::High;
        self.low_since = None;
        self.stats.rotations += 1; // counts gear shifts
        for pair in 0..self.pairs {
            let m = self.mirror(ctx, pair);
            ctx.spin_up(m);
        }
        self.start_sync(ctx);
    }

    fn gear_down(&mut self, ctx: &mut SimCtx) {
        if self.gear == Gear::Low || self.syncing {
            return;
        }
        self.gear = Gear::Low;
        self.stats.rotations += 1;
        if !self.draining {
            for pair in 0..self.pairs {
                let m = self.mirror(ctx, pair);
                ctx.spin_down(m);
            }
        }
    }

    fn start_sync(&mut self, ctx: &mut SimCtx) {
        if self.syncing {
            for pair in 0..self.pairs {
                self.pump(ctx, pair);
            }
            return;
        }
        if self.dirty.iter().all(|d| d.is_clean()) && self.shadow_used_bytes() == 0 {
            return;
        }
        self.syncing = true;
        let all: Vec<DiskId> = (0..ctx.disk_count()).collect();
        ctx.span_destage_begin(None, &all);
        for pair in 0..self.pairs {
            self.pump(ctx, pair);
        }
        self.check_sync_done(ctx);
    }

    fn pump(&mut self, ctx: &mut SimCtx, pair: usize) {
        if !self.syncing || self.chain_active[pair] {
            return;
        }
        if !ctx.disk(self.mirror(ctx, pair)).is_spun_up() {
            return; // chain starts on its spin-up completion
        }
        if let Some((off, len)) = self.dirty[pair].take_next(self.chunk) {
            self.chain_active[pair] = true;
            let p = ctx.geometry().primary_disk(pair);
            let id = ctx.submit(p, IoKind::Read, off, len, Priority::Background);
            self.io_map.insert(id, Tag::SyncRead { pair, off, len });
        }
    }

    fn check_sync_done(&mut self, ctx: &mut SimCtx) {
        if !self.syncing {
            return;
        }
        if self.chain_active.iter().any(|&c| c) || self.dirty.iter().any(|d| !d.is_clean()) {
            return;
        }
        self.syncing = false;
        ctx.span_destage_end(None);
        self.stats.destage_cycles += 1;
        for shadow in &mut self.shadows {
            shadow.reclaim(|_| true);
        }
        ctx.log_timeline.push(ctx.now, 0.0);
        // If the load already died down, the hold timer (or drain) will
        // gear us back down; nothing else to do here.
    }

    fn write_shadowed(
        &mut self,
        ctx: &mut SimCtx,
        user_id: u64,
        uslot: IoSlot,
        meta: &mut UserMeta,
        exts: &[rolo_raid::PhysExtent],
    ) -> u32 {
        let mut subs = 0;
        for ext in exts {
            let p = ctx.geometry().primary_disk(ext.pair);
            let id = ctx.submit(
                p,
                IoKind::Write,
                ext.offset,
                ext.bytes,
                Priority::Foreground,
            );
            self.io_map.insert(id, Tag::User(user_id, uslot));
            ctx.tag_io(id, user_id, LegFlavor::Transfer);
            subs += 1;
            // Shadow copy on the next primary over (never the same disk,
            // or one failure would take both copies).
            let mut target = self.shadow_cursor % self.pairs;
            if target == ext.pair {
                target = (target + 1) % self.pairs;
            }
            self.shadow_cursor = (target + 1) % self.pairs;
            match self.shadows[target].alloc(ext.bytes, ext.pair, 0) {
                Some(segs) => {
                    for seg in segs {
                        let id = ctx.submit(
                            target,
                            IoKind::Write,
                            seg.offset,
                            seg.bytes,
                            Priority::Foreground,
                        );
                        self.io_map.insert(id, Tag::User(user_id, uslot));
                        ctx.tag_io(id, user_id, LegFlavor::LogAppend);
                        subs += 1;
                        self.stats.log_appended_bytes += seg.bytes;
                    }
                    meta.marks.push((ext.pair, ext.offset, ext.bytes));
                }
                None => {
                    // Shadow space exhausted: forced gear-up (PARAID has
                    // no rotation to fall back on).
                    self.stats.direct_writes += 1;
                    let m = ctx.geometry().mirror_disk(ext.pair);
                    let id = ctx.submit(
                        m,
                        IoKind::Write,
                        ext.offset,
                        ext.bytes,
                        Priority::Foreground,
                    );
                    self.io_map.insert(id, Tag::User(user_id, uslot));
                    ctx.tag_io(id, user_id, LegFlavor::MirrorCopy);
                    subs += 1;
                    meta.clears.push((ext.pair, ext.offset, ext.bytes));
                    self.gear_up(ctx);
                }
            }
        }
        subs
    }
}

impl Policy for ParaidPolicy {
    fn name(&self) -> &'static str {
        "PARAID-2g"
    }

    fn initial_standby(&self, disk: DiskId) -> bool {
        disk >= self.pairs && disk < 2 * self.pairs
    }

    fn attach(&mut self, ctx: &mut SimCtx) {
        // Periodic gear-down check.
        ctx.set_timer(self.hold, GEAR_TIMER);
    }

    fn on_user_request(&mut self, ctx: &mut SimCtx, user_id: u64, rec: &TraceRecord) {
        self.note_arrival(ctx.now);
        if self.gear == Gear::Low && self.rate > self.up_iops {
            self.gear_up(ctx);
        }
        let exts = ctx
            .geometry()
            .split(rec.offset, rec.bytes)
            .expect("driver keeps requests in range");
        let mut meta = UserMeta::default();
        let mut subs: u32 = 0;
        // Admission hold: one sub reserved up front so the slab slot
        // exists before the first sub-request can possibly complete;
        // the balance is topped up below once `subs` is known.
        let uslot = ctx.register_user(user_id, rec.kind, ctx.now, 1);
        match rec.kind {
            ReqKind::Read => {
                for ext in &exts {
                    let p = ctx.geometry().primary_disk(ext.pair);
                    let id =
                        ctx.submit(p, IoKind::Read, ext.offset, ext.bytes, Priority::Foreground);
                    self.io_map.insert(id, Tag::User(user_id, uslot));
                    ctx.tag_io(id, user_id, LegFlavor::Transfer);
                    subs += 1;
                }
            }
            ReqKind::Write => {
                // Writes go direct only once the pair's mirror is
                // actually spinning (a graceful up-shift: while mirrors
                // spin up, the low-gear shadow path keeps absorbing
                // writes instead of stalling them ~11 s behind the
                // spin-up).
                for ext in &exts {
                    let m = ctx.geometry().mirror_disk(ext.pair);
                    let ready = matches!(
                        ctx.disk(m).power_state(),
                        rolo_disk::PowerState::Active | rolo_disk::PowerState::Idle
                    );
                    if self.gear == Gear::High && ready && !ctx.disk(m).is_park_pending() {
                        let p = ctx.geometry().primary_disk(ext.pair);
                        for d in [p, m] {
                            let id = ctx.submit(
                                d,
                                IoKind::Write,
                                ext.offset,
                                ext.bytes,
                                Priority::Foreground,
                            );
                            self.io_map.insert(id, Tag::User(user_id, uslot));
                            let flavor = if d == p {
                                LegFlavor::Transfer
                            } else {
                                LegFlavor::MirrorCopy
                            };
                            ctx.tag_io(id, user_id, flavor);
                            subs += 1;
                        }
                        meta.clears.push((ext.pair, ext.offset, ext.bytes));
                    } else {
                        subs += self.write_shadowed(
                            ctx,
                            user_id,
                            uslot,
                            &mut meta,
                            std::slice::from_ref(ext),
                        );
                    }
                }
            }
        }
        debug_assert!(subs >= 1, "every admitted request issues at least one sub");
        if subs > 1 {
            ctx.add_user_subs(uslot, subs - 1);
        }
        self.user_meta.insert(user_id, meta);
    }

    fn on_io_complete(&mut self, ctx: &mut SimCtx, _disk: DiskId, req: DiskRequest) {
        match self.io_map.remove(&req.id).expect("unknown sub-request") {
            Tag::User(user, uslot) => {
                if ctx.user_sub_done(uslot).is_some() {
                    let meta = self.user_meta.remove(&user).unwrap_or_default();
                    for (pair, off, len) in meta.marks {
                        self.dirty[pair].mark(off, len);
                        if self.syncing {
                            self.pump(ctx, pair);
                        }
                    }
                    for (pair, off, len) in meta.clears {
                        self.dirty[pair].clear_range(off, len);
                        if self.syncing {
                            self.check_sync_done(ctx);
                        }
                    }
                }
            }
            Tag::SyncRead { pair, off, len } => {
                let m = ctx.geometry().mirror_disk(pair);
                let id = ctx.submit(m, IoKind::Write, off, len, Priority::Background);
                self.io_map.insert(id, Tag::SyncWrite { pair, len });
            }
            Tag::SyncWrite { pair, len } => {
                self.stats.destaged_bytes += len;
                self.chain_active[pair] = false;
                if self.dirty[pair].is_clean() {
                    self.check_sync_done(ctx);
                } else {
                    self.pump(ctx, pair);
                }
            }
        }
    }

    fn on_spin_up(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        if disk >= self.pairs && disk < 2 * self.pairs && self.syncing {
            self.pump(ctx, disk - self.pairs);
        }
    }

    fn on_spin_down(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}

    fn on_timer(&mut self, ctx: &mut SimCtx, token: u64) {
        if token != GEAR_TIMER || self.draining {
            return;
        }
        // Decay the EWMA to the present before judging it.
        let dt = ctx.now.since(self.rate_at).as_secs_f64();
        let current = self.rate * (-dt / 30.0).exp();
        if self.gear == Gear::High && !self.syncing && current < self.down_iops {
            match self.low_since {
                Some(since) if ctx.now.since(since) >= self.hold => {
                    self.gear_down(ctx);
                    self.low_since = None;
                }
                None => self.low_since = Some(ctx.now),
                _ => {}
            }
        } else if current >= self.down_iops {
            self.low_since = None;
        }
        ctx.set_timer(self.hold, GEAR_TIMER);
    }

    fn begin_drain(&mut self, ctx: &mut SimCtx) {
        self.draining = true;
        for pair in 0..self.pairs {
            let m = self.mirror(ctx, pair);
            ctx.spin_up(m);
        }
        self.start_sync(ctx);
        // Shadow segments without dirtiness are already consistent.
        if self.dirty.iter().all(|d| d.is_clean()) && !self.chain_active.iter().any(|&c| c) {
            for shadow in &mut self.shadows {
                shadow.reclaim(|_| true);
            }
            self.syncing = false;
            ctx.span_destage_end(None);
        }
    }

    fn is_drained(&self, ctx: &SimCtx) -> bool {
        ctx.outstanding_users() == 0
            && self.io_map.is_empty()
            && self.dirty.iter().all(|d| d.is_clean())
            && self.shadow_used_bytes() == 0
            && !self.chain_active.iter().any(|&c| c)
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn check_consistency(&self, ctx: &SimCtx) -> Result<(), String> {
        for shadow in &self.shadows {
            shadow.check_invariants()?;
        }
        for (pair, d) in self.dirty.iter().enumerate() {
            d.check_invariants()?;
            if !d.is_clean() {
                return Err(format!("pair {pair} still has {} stale bytes", d.bytes()));
            }
        }
        if self.shadow_used_bytes() != 0 {
            return Err(format!(
                "{} shadow bytes unreclaimed",
                self.shadow_used_bytes()
            ));
        }
        if ctx.outstanding_users() != 0 {
            return Err(format!(
                "{} user requests unfinished",
                ctx.outstanding_users()
            ));
        }
        if !self.io_map.is_empty() {
            return Err(format!("{} orphaned sub-requests", self.io_map.len()));
        }
        Ok(())
    }
}
