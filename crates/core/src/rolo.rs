//! RoLo-P and RoLo-R: rotated logging with decentralized destaging.
//!
//! The two flavors share all of the rotation machinery (§III-A) and
//! differ only in what serves as the on-duty logger (§III-B):
//!
//! * **RoLo-P** — mirrored *disks* serve as loggers (`M_j`); each write
//!   has two copies (primary in place + one log append);
//! * **RoLo-R** — mirrored *pairs* serve as loggers (`P_j`, `M_j`); each
//!   write has three copies (primary in place + two log appends).
//!
//! Following §III-B's "one or a few mirrored disks take turns", the
//! on-duty window holds one logger by default and can be widened
//! ([`SimConfig::rolo_on_duty`](crate::config::SimConfig)) to alleviate
//! the append bottleneck of large arrays (§III-D).
//!
//! Rotation: when the on-duty logger's free logging space falls below a
//! threshold, the logger advances to the next pair. The newly on-duty
//! mirror spins up and a **destage process** for its pair starts: stale
//! blocks are updated from the pair's primary through background I/O in
//! idle slots. When a pair's destage completes, every log segment holding
//! that pair's second copies — on any disk — is stale and is reclaimed
//! (the paper's proactive reclamation), which is what lets logging rotate
//! indefinitely. The previous logger spins down as soon as it is no
//! longer needed (immediately at rotation, or when its own unfinished
//! destage ends, exactly as Fig. 5(a) shows).
//!
//! If the next logger has no usable space, RoLo deactivates (§III-E):
//! all mirrors spin up, writes go straight to both copies, and logging
//! resumes once every destage process has drained and reclaimed the
//! logging space pool.

use crate::ctx::SimCtx;
use crate::dirty::DirtyMap;
use crate::faults::surviving_partner;
use crate::logspace::LoggerSpace;
use crate::policy::{Policy, PolicyStats};
use crate::recovery::recovery_plan;
use rolo_disk::{DiskId, DiskRequest, IoKind, IoOutcome, Priority};
use rolo_metrics::Phase;
use rolo_obs::{LegFlavor, SimEvent};
use rolo_trace::{ReqKind, TraceRecord};
use std::collections::HashMap;

/// Minimum fraction of the logger region still free when the *next*
/// on-duty logger is proactively spun up, so rotation never stalls a
/// write on a spin-up (the 10.9 s latency would otherwise dominate mean
/// response). The actual look-ahead is rate-based: enough headroom to
/// absorb `SPIN_UP_AHEAD_FACTOR` spin-up times of appends at the
/// currently observed write rate.
const SPIN_UP_AHEAD_FRACTION: f64 = 0.02;
/// Safety factor on the spin-up time for the rate-based look-ahead.
const SPIN_UP_AHEAD_FACTOR: f64 = 3.0;

/// Which RoLo flavor the controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoloFlavor {
    /// RoLo-P: single-mirror logger, two copies per write.
    Performance,
    /// RoLo-R: mirrored-pair logger, three copies per write.
    Reliability,
}

#[derive(Debug, Clone, Copy)]
enum Tag {
    User(u64),
    DestageRead { pair: usize, off: u64, len: u64 },
    DestageWrite { pair: usize, len: u64 },
}

#[derive(Debug, Default)]
struct UserMeta {
    marks: Vec<(usize, u64, u64)>,
    clears: Vec<(usize, u64, u64)>,
}

/// The RoLo-P / RoLo-R controller.
#[derive(Debug)]
pub struct RoloPolicy {
    flavor: RoloFlavor,
    pairs: usize,
    rotate_threshold: f64,
    chunk: u64,
    period: u64,
    /// On-duty logger pairs (§III-B: "one or a few mirrored disks take
    /// turns to serve as on-duty log disks"; more slots alleviate the
    /// append bottleneck per §III-D).
    loggers: Vec<usize>,
    /// Next pair to bring on duty when a slot rotates out.
    rotation_cursor: usize,
    /// Round-robin cursor over the slots for append placement.
    slot_cursor: usize,
    /// Logger-space manager per disk id (mirrors always; primaries too
    /// for RoLo-R).
    spaces: HashMap<DiskId, LoggerSpace>,
    dirty: Vec<DirtyMap>,
    destage_active: Vec<bool>,
    chain_active: Vec<bool>,
    destage_tokens: Vec<Option<u64>>,
    io_map: HashMap<u64, Tag>,
    user_meta: HashMap<u64, UserMeta>,
    logging_token: Option<u64>,
    phase_energy_mark: f64,
    deactivated: bool,
    draining: bool,
    stats: PolicyStats,
    logger_base: u64,
    logger_size: u64,
    /// Append-rate estimation window for the eager-spin-up look-ahead.
    rate_window_start: rolo_sim::SimTime,
    rate_window_bytes: u64,
    append_rate: f64,
    spin_up_secs: f64,
    eager_spinup: bool,
}

impl RoloPolicy {
    /// Creates a RoLo controller.
    ///
    /// `logger_base`/`logger_size` locate the per-disk logger region (the
    /// geometry's [`logger_base`](rolo_raid::ArrayGeometry::logger_base)).
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized logger region or zero pairs.
    pub fn new(
        flavor: RoloFlavor,
        pairs: usize,
        logger_base: u64,
        logger_size: u64,
        rotate_threshold: f64,
        chunk: u64,
    ) -> Self {
        assert!(pairs > 0, "need at least one pair");
        assert!(logger_size > 0, "zero logger region");
        let mut spaces = HashMap::new();
        for pair in 0..pairs {
            // Mirror disks are pairs..2*pairs.
            spaces.insert(pairs + pair, LoggerSpace::new(logger_base, logger_size));
            if flavor == RoloFlavor::Reliability {
                spaces.insert(pair, LoggerSpace::new(logger_base, logger_size));
            }
        }
        RoloPolicy {
            flavor,
            pairs,
            rotate_threshold,
            chunk,
            period: 0,
            loggers: vec![0],
            rotation_cursor: 1 % pairs,
            slot_cursor: 0,
            spaces,
            dirty: (0..pairs).map(|_| DirtyMap::new()).collect(),
            destage_active: vec![false; pairs],
            chain_active: vec![false; pairs],
            destage_tokens: vec![None; pairs],
            io_map: HashMap::new(),
            user_meta: HashMap::new(),
            logging_token: None,
            phase_energy_mark: 0.0,
            deactivated: false,
            draining: false,
            stats: PolicyStats::default(),
            logger_base,
            logger_size,
            rate_window_start: rolo_sim::SimTime::ZERO,
            rate_window_bytes: 0,
            append_rate: 0.0,
            spin_up_secs: 11.0,
            eager_spinup: true,
        }
    }

    /// Disables the proactive next-logger spin-up (ablation studies).
    pub fn set_eager_spinup(&mut self, enabled: bool) {
        self.eager_spinup = enabled;
    }

    /// Updates the observed append rate (bytes/s) over ~30 s windows.
    fn note_append(&mut self, now: rolo_sim::SimTime, bytes: u64) {
        self.rate_window_bytes += bytes;
        let elapsed = now.since(self.rate_window_start).as_secs_f64();
        if elapsed >= 30.0 {
            self.append_rate = self.rate_window_bytes as f64 / elapsed;
            self.rate_window_start = now;
            self.rate_window_bytes = 0;
        }
    }

    /// Headroom at which the next logger should already be spinning.
    fn spin_up_ahead_bytes(&self) -> u64 {
        let floor =
            (self.logger_size as f64 * (self.rotate_threshold + SPIN_UP_AHEAD_FRACTION)) as u64;
        let rate_based = (self.append_rate * self.spin_up_secs * SPIN_UP_AHEAD_FACTOR) as u64;
        floor.max(rate_based).min(self.logger_size)
    }

    /// The first on-duty logger pair (the only one unless
    /// [`set_on_duty_loggers`](Self::set_on_duty_loggers) widened the
    /// window).
    pub fn logger_pair(&self) -> usize {
        self.loggers[0]
    }

    /// All on-duty logger pairs.
    pub fn on_duty_loggers(&self) -> &[usize] {
        &self.loggers
    }

    /// Sets the number of simultaneously on-duty loggers (before the run
    /// starts). The initial window is pairs `0..k`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k < pairs`.
    pub fn set_on_duty_loggers(&mut self, k: usize) {
        assert!(k >= 1 && k < self.pairs, "on-duty window out of range");
        self.loggers = (0..k).collect();
        self.rotation_cursor = k % self.pairs;
    }

    /// True while logging is deactivated for lack of space (§III-E).
    pub fn is_deactivated(&self) -> bool {
        self.deactivated
    }

    /// Total live logged bytes across the logical logging space pool.
    pub fn log_used_bytes(&self) -> u64 {
        self.spaces.values().map(|s| s.used_bytes()).sum()
    }

    /// Total stale bytes awaiting destage.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.iter().map(|d| d.bytes()).sum()
    }

    /// The pairs whose logger spaces still hold un-reclaimed second
    /// copies of `pair`'s data — exactly the mirrors §III-C must awaken
    /// to recover a failure of `pair`'s primary (feed this to
    /// [`crate::recovery::recovery_plan`] as `recent_loggers`).
    pub fn pairs_holding_copies_of(&self, pair: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .spaces
            .iter()
            .filter(|(_, space)| space.segments().iter().any(|seg| seg.pair == pair))
            .map(|(&disk, _)| {
                if disk >= self.pairs {
                    disk - self.pairs
                } else {
                    disk
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn mirror(&self, ctx: &SimCtx, pair: usize) -> DiskId {
        ctx.geometry().mirror_disk(pair)
    }

    /// Disks receiving log appends for logger pair `j`.
    fn pair_targets(&self, ctx: &SimCtx, j: usize) -> Vec<DiskId> {
        match self.flavor {
            RoloFlavor::Performance => vec![ctx.geometry().mirror_disk(j)],
            RoloFlavor::Reliability => vec![
                ctx.geometry().primary_disk(j),
                ctx.geometry().mirror_disk(j),
            ],
        }
    }

    fn pair_has_space(&self, ctx: &SimCtx, j: usize, needed: u64) -> bool {
        let floor = (self.logger_size as f64 * self.rotate_threshold) as u64;
        self.pair_targets(ctx, j).iter().all(|d| {
            let s = &self.spaces[d];
            s.free_bytes() >= needed && s.free_bytes() > floor
        })
    }

    /// Picks the next on-duty pair with room, round-robin across slots.
    fn pick_slot(&mut self, ctx: &SimCtx, needed: u64) -> Option<usize> {
        let k = self.loggers.len();
        for i in 0..k {
            let j = self.loggers[(self.slot_cursor + i) % k];
            if self.pair_has_space(ctx, j, needed) {
                self.slot_cursor = (self.slot_cursor + i + 1) % k;
                return Some(j);
            }
        }
        None
    }

    fn activate_destage(&mut self, ctx: &mut SimCtx, pair: usize) {
        if self.destage_active[pair] {
            return;
        }
        self.destage_active[pair] = true;
        ctx.emit(|| SimEvent::DestageStart { pair: Some(pair) });
        // The destage chain reads the pair's primary and writes its
        // mirror; foreground legs stuck behind those transfers link here.
        let p = ctx.geometry().primary_disk(pair);
        ctx.span_destage_begin(Some(pair), &[p, self.mirror(ctx, pair)]);
        self.destage_tokens[pair] = Some(ctx.intervals.begin(Phase::Destaging, ctx.now));
        let m = self.mirror(ctx, pair);
        if ctx.disk(m).is_spun_up() {
            self.pump(ctx, pair);
        } else {
            ctx.spin_up(m);
        }
    }

    /// Pair that will next come on duty.
    fn next_on_duty(&self) -> usize {
        let mut cand = self.rotation_cursor;
        // Skip pairs already in the window.
        for _ in 0..self.pairs {
            if !self.loggers.contains(&cand) {
                return cand;
            }
            cand = (cand + 1) % self.pairs;
        }
        cand
    }

    fn rotate(&mut self, ctx: &mut SimCtx) {
        // Retire the fullest slot, bring the next pair on duty.
        let (slot, _) = self
            .loggers
            .iter()
            .enumerate()
            .min_by_key(|(_, &j)| {
                self.pair_targets(ctx, j)
                    .iter()
                    .map(|d| self.spaces[d].free_bytes())
                    .min()
                    .unwrap_or(0)
            })
            .expect("at least one slot");
        let incoming = self.next_on_duty();
        let old = std::mem::replace(&mut self.loggers[slot], incoming);
        self.rotation_cursor = (incoming + 1) % self.pairs;
        self.period += 1;
        self.stats.rotations += 1;
        ctx.emit(|| SimEvent::LoggerRotation {
            outgoing: old,
            incoming,
            period: self.period,
        });
        // Close the old logging period, open the next.
        let energy = ctx.total_energy();
        if let Some(tok) = self.logging_token.take() {
            ctx.intervals
                .end(tok, ctx.now, energy - self.phase_energy_mark);
        }
        self.phase_energy_mark = energy;
        self.logging_token = Some(ctx.intervals.begin(Phase::Logging, ctx.now));
        // The new on-duty mirror spins up and starts destaging its pair.
        let new_mirror = self.mirror(ctx, incoming);
        ctx.spin_up(new_mirror);
        self.activate_destage(ctx, incoming);
        // The old logger spins down unless its own destage is unfinished —
        // in which case its (possibly deferred) destage resumes now.
        if old != incoming && !self.destage_active[old] && !self.draining {
            let m = self.mirror(ctx, old);
            ctx.spin_down(m);
        } else if old != incoming && self.destage_active[old] {
            self.pump(ctx, old);
        }
    }

    fn deactivate(&mut self, ctx: &mut SimCtx) {
        if self.deactivated {
            return;
        }
        self.deactivated = true;
        self.stats.deactivations += 1;
        ctx.emit(|| SimEvent::LoggingDeactivated);
        for pair in 0..self.pairs {
            let m = self.mirror(ctx, pair);
            ctx.spin_up(m);
            if !self.dirty[pair].is_clean() {
                self.activate_destage(ctx, pair);
            }
        }
    }

    fn try_reactivate(&mut self, ctx: &mut SimCtx) {
        if !self.deactivated
            || self.destage_active.iter().any(|&a| a)
            || self.dirty.iter().any(|d| !d.is_clean())
            || self.log_used_bytes() > 0
        {
            return;
        }
        self.deactivated = false;
        ctx.emit(|| SimEvent::LoggingReactivated);
        self.rotate(ctx);
        // Park every mirror that is not an on-duty logger.
        for pair in 0..self.pairs {
            if !self.loggers.contains(&pair) && !self.destage_active[pair] && !self.draining {
                let m = self.mirror(ctx, pair);
                ctx.spin_down(m);
            }
        }
    }

    fn pump(&mut self, ctx: &mut SimCtx, pair: usize) {
        if !self.destage_active[pair] || self.chain_active[pair] {
            return;
        }
        // RoLo-R: the on-duty pair's primary carries every write's log
        // copy, so running its own destage reads against it would delay
        // all foreground writes. Defer the pair's destage until it leaves
        // the on-duty window (it stays marked active and resumes then).
        if self.flavor == RoloFlavor::Reliability
            && self.loggers.contains(&pair)
            && !self.draining
            && !self.deactivated
        {
            return;
        }
        if !ctx.disk(self.mirror(ctx, pair)).is_spun_up() {
            ctx.spin_up(self.mirror(ctx, pair));
            return;
        }
        match self.dirty[pair].take_next(self.chunk) {
            Some((off, len)) => {
                self.chain_active[pair] = true;
                let p = ctx.geometry().primary_disk(pair);
                let id = ctx.submit(p, IoKind::Read, off, len, Priority::Background);
                self.io_map.insert(id, Tag::DestageRead { pair, off, len });
            }
            None => self.complete_destage(ctx, pair),
        }
    }

    fn complete_destage(&mut self, ctx: &mut SimCtx, pair: usize) {
        if !self.destage_active[pair] || self.chain_active[pair] || !self.dirty[pair].is_clean() {
            return;
        }
        self.destage_active[pair] = false;
        self.stats.destage_cycles += 1;
        ctx.emit(|| SimEvent::DestageEnd { pair: Some(pair) });
        ctx.span_destage_end(Some(pair));
        // Proactive reclamation: every log copy of this pair, anywhere in
        // the pool, is now stale.
        for space in self.spaces.values_mut() {
            space.reclaim(|seg| seg.pair == pair);
        }
        ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
        if let Some(tok) = self.destage_tokens[pair].take() {
            ctx.intervals.end(tok, ctx.now, 0.0);
        }
        if !self.loggers.contains(&pair) && !self.deactivated && !self.draining {
            let m = self.mirror(ctx, pair);
            ctx.spin_down(m);
        }
        if self.deactivated {
            self.try_reactivate(ctx);
        }
    }

    fn after_dirty_change(&mut self, ctx: &mut SimCtx, pair: usize) {
        if self.destage_active[pair] {
            if self.chain_active[pair] {
                return;
            }
            if self.dirty[pair].is_clean() {
                self.complete_destage(ctx, pair);
            } else {
                self.pump(ctx, pair);
            }
        } else if (self.draining || self.deactivated) && !self.dirty[pair].is_clean() {
            self.activate_destage(ctx, pair);
        }
    }

    fn write_direct(
        &mut self,
        ctx: &mut SimCtx,
        user_id: u64,
        meta: &mut UserMeta,
        exts: &[rolo_raid::PhysExtent],
    ) -> u32 {
        self.stats.direct_writes += 1;
        let mut subs = 0;
        for ext in exts {
            let p = ctx.geometry().primary_disk(ext.pair);
            let m = ctx.geometry().mirror_disk(ext.pair);
            for d in [p, m] {
                let id = ctx.submit(
                    d,
                    IoKind::Write,
                    ext.offset,
                    ext.bytes,
                    Priority::Foreground,
                );
                self.io_map.insert(id, Tag::User(user_id));
                let flavor = if d == p {
                    LegFlavor::Transfer
                } else {
                    LegFlavor::MirrorCopy
                };
                ctx.tag_io(id, user_id, flavor);
                subs += 1;
            }
            meta.clears.push((ext.pair, ext.offset, ext.bytes));
        }
        subs
    }
}

impl Policy for RoloPolicy {
    fn name(&self) -> &'static str {
        match self.flavor {
            RoloFlavor::Performance => "RoLo-P",
            RoloFlavor::Reliability => "RoLo-R",
        }
    }

    fn initial_standby(&self, disk: DiskId) -> bool {
        // All mirrors except the initial on-duty loggers start spun down.
        disk >= self.pairs && disk < 2 * self.pairs && !self.loggers.contains(&(disk - self.pairs))
    }

    fn attach(&mut self, ctx: &mut SimCtx) {
        self.logging_token = Some(ctx.intervals.begin(Phase::Logging, ctx.now));
        self.phase_energy_mark = ctx.total_energy();
        self.spin_up_secs = ctx.disk(0).params().spin_up_time.as_secs_f64();
    }

    fn on_user_request(&mut self, ctx: &mut SimCtx, user_id: u64, rec: &TraceRecord) {
        let exts = ctx
            .geometry()
            .split(rec.offset, rec.bytes)
            .expect("driver keeps requests in range");
        let mut meta = UserMeta::default();
        let mut subs: u32 = 0;
        match rec.kind {
            ReqKind::Read => {
                // Primaries are always ACTIVE/IDLE in RoLo-P/R: no
                // spin-up latency on reads (§III-B1). A degraded primary
                // slot hands its reads to the pair's mirror (§III-C).
                for ext in &exts {
                    let mut d = ctx.geometry().primary_disk(ext.pair);
                    let mut flavor = LegFlavor::Transfer;
                    if ctx.is_degraded(d) {
                        let from = d;
                        d = ctx.geometry().mirror_disk(ext.pair);
                        flavor = LegFlavor::DegradedRedirect;
                        ctx.note_redirect();
                        ctx.emit(|| SimEvent::ReadRedirected { from, to: d });
                    }
                    let id =
                        ctx.submit(d, IoKind::Read, ext.offset, ext.bytes, Priority::Foreground);
                    self.io_map.insert(id, Tag::User(user_id));
                    ctx.tag_io(id, user_id, flavor);
                    subs += 1;
                }
            }
            ReqKind::Write if self.deactivated => {
                subs += self.write_direct(ctx, user_id, &mut meta, &exts);
                // A deactivated-mode write may unblock reactivation later;
                // nothing to do now.
            }
            ReqKind::Write => {
                let mut slot = self.pick_slot(ctx, rec.bytes);
                if slot.is_none() && !self.deactivated {
                    self.rotate(ctx);
                    slot = self.pick_slot(ctx, rec.bytes);
                    if slot.is_none() {
                        self.deactivate(ctx);
                    }
                }
                let usable_slot = if self.deactivated { None } else { slot };
                if let Some(slot) = usable_slot {
                    // Primary copies in place.
                    for ext in &exts {
                        let p = ctx.geometry().primary_disk(ext.pair);
                        let id = ctx.submit(
                            p,
                            IoKind::Write,
                            ext.offset,
                            ext.bytes,
                            Priority::Foreground,
                        );
                        self.io_map.insert(id, Tag::User(user_id));
                        ctx.tag_io(id, user_id, LegFlavor::Transfer);
                        subs += 1;
                        meta.marks.push((ext.pair, ext.offset, ext.bytes));
                    }
                    // Log copies on the chosen on-duty logger disk(s).
                    for target in self.pair_targets(ctx, slot) {
                        for ext in &exts {
                            let segs = self
                                .spaces
                                .get_mut(&target)
                                .expect("logger space exists")
                                .alloc(ext.bytes, ext.pair, self.period)
                                .expect("rotation guaranteed space");
                            for seg in segs {
                                let id = ctx.submit(
                                    target,
                                    IoKind::Write,
                                    seg.offset,
                                    seg.bytes,
                                    Priority::Foreground,
                                );
                                self.io_map.insert(id, Tag::User(user_id));
                                ctx.tag_io(id, user_id, LegFlavor::LogAppend);
                                subs += 1;
                                self.stats.log_appended_bytes += seg.bytes;
                            }
                        }
                    }
                    ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
                    self.note_append(ctx.now, rec.bytes);
                    // Spin the next on-duty logger up *before* rotation is
                    // due, so the hand-over is seamless (no write ever
                    // waits out a spin-up at the rotation point).
                    let ahead = self.spin_up_ahead_bytes();
                    let low_water = self.loggers.iter().any(|&j| {
                        self.pair_targets(ctx, j)
                            .iter()
                            .any(|d| self.spaces[d].free_bytes() < ahead)
                    });
                    if low_water && !self.deactivated && self.eager_spinup {
                        let next = self.next_on_duty();
                        let m = self.mirror(ctx, next);
                        ctx.spin_up(m);
                    }
                } else {
                    subs += self.write_direct(ctx, user_id, &mut meta, &exts);
                }
            }
        }
        ctx.register_user(user_id, rec.kind, ctx.now, subs);
        self.user_meta.insert(user_id, meta);
    }

    fn on_io_complete(&mut self, ctx: &mut SimCtx, _disk: DiskId, req: DiskRequest) {
        match self.io_map.remove(&req.id).expect("unknown sub-request") {
            Tag::User(user) => {
                if ctx.user_sub_done(user).is_some() {
                    let meta = self.user_meta.remove(&user).unwrap_or_default();
                    for (pair, off, len) in meta.marks {
                        self.dirty[pair].mark(off, len);
                        self.after_dirty_change(ctx, pair);
                    }
                    for (pair, off, len) in meta.clears {
                        self.dirty[pair].clear_range(off, len);
                        self.after_dirty_change(ctx, pair);
                    }
                }
            }
            Tag::DestageRead { pair, off, len } => {
                let m = ctx.geometry().mirror_disk(pair);
                let id = ctx.submit(m, IoKind::Write, off, len, Priority::Background);
                self.io_map.insert(id, Tag::DestageWrite { pair, len });
            }
            Tag::DestageWrite { pair, len } => {
                self.stats.destaged_bytes += len;
                self.chain_active[pair] = false;
                if self.dirty[pair].is_clean() {
                    self.complete_destage(ctx, pair);
                } else {
                    self.pump(ctx, pair);
                }
            }
        }
    }

    fn on_io_error(
        &mut self,
        ctx: &mut SimCtx,
        disk: DiskId,
        req: DiskRequest,
        outcome: IoOutcome,
    ) {
        // User reads hitting a latent sector error or a degraded slot are
        // re-served by the surviving partner; every other failure closes
        // through the normal path (the rebuild restores the replacement's
        // copy).
        if req.kind == IoKind::Read && (outcome == IoOutcome::MediaError || ctx.is_degraded(disk)) {
            if let Some(Tag::User(user)) = self.io_map.get(&req.id).copied() {
                if let Some(p) =
                    surviving_partner(ctx.geometry(), disk).filter(|&p| !ctx.is_degraded(p))
                {
                    self.io_map.remove(&req.id);
                    ctx.note_redirect();
                    ctx.emit(|| SimEvent::ReadRedirected { from: disk, to: p });
                    let id =
                        ctx.submit(p, IoKind::Read, req.offset, req.bytes, Priority::Foreground);
                    self.io_map.insert(id, Tag::User(user));
                    ctx.tag_io(id, user, LegFlavor::DegradedRedirect);
                    return;
                }
            }
        }
        self.on_io_complete(ctx, disk, req);
    }

    fn on_disk_failure(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        let pair = if disk < self.pairs {
            disk
        } else {
            disk - self.pairs
        };
        let scheme = match self.flavor {
            RoloFlavor::Performance => crate::config::Scheme::RoloP,
            RoloFlavor::Reliability => crate::config::Scheme::RoloR,
        };
        // The recovery plan needs the *live* logger history: the pairs
        // whose unreclaimed log segments hold the failed disk's recent
        // second copies (§III-C).
        let recent = self.pairs_holding_copies_of(pair);
        let plan = recovery_plan(scheme, ctx.geometry(), disk, self.logger_pair(), &recent);

        // Everything logged on the dead disk is gone; its blank
        // replacement starts with an empty logging space. The in-place
        // primary copies still cover all of it, so only redundancy was
        // lost — the per-pair destages restore it below.
        if let Some(space) = self.spaces.get_mut(&disk) {
            *space = LoggerSpace::new(self.logger_base, self.logger_size);
            ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
        }

        // A dead on-duty logger vacates its window slot immediately:
        // the next pair rotates in so appends never target the blank
        // replacement. (For RoLo-P only the mirror serves the slot; for
        // RoLo-R both halves of the pair do.)
        let serves_slot = match self.flavor {
            RoloFlavor::Performance => disk >= self.pairs,
            RoloFlavor::Reliability => true,
        };
        if serves_slot && !self.deactivated {
            if let Some(slot) = self.loggers.iter().position(|&j| j == pair) {
                let incoming = self.next_on_duty();
                self.loggers[slot] = incoming;
                self.rotation_cursor = (incoming + 1) % self.pairs;
                self.period += 1;
                self.stats.rotations += 1;
                ctx.emit(|| SimEvent::LoggerRotation {
                    outgoing: pair,
                    incoming,
                    period: self.period,
                });
                let m = self.mirror(ctx, incoming);
                ctx.spin_up(m);
                self.activate_destage(ctx, incoming);
            }
        }

        ctx.begin_rebuild(&plan, ctx.geometry().data_region());

        // Restore the pair's redundancy promptly: destage its stale
        // blocks (this also reclaims every surviving log copy of the
        // pair once clean). The replacement is already spinning, and a
        // destage that was waiting on the dead disk's spin-up wake gets
        // re-kicked here.
        if !self.dirty[pair].is_clean() {
            self.activate_destage(ctx, pair);
        }
        if self.destage_active[pair] {
            self.pump(ctx, pair);
        }
    }

    fn on_rebuild_complete(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        // A rebuilt off-duty mirror returns to standby.
        if disk >= self.pairs && disk < 2 * self.pairs {
            let pair = disk - self.pairs;
            if !self.loggers.contains(&pair)
                && !self.destage_active[pair]
                && !self.deactivated
                && !self.draining
            {
                ctx.spin_down(disk);
            }
        }
    }

    fn on_spin_up(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        if disk >= self.pairs && disk < 2 * self.pairs {
            let pair = disk - self.pairs;
            if self.destage_active[pair] {
                self.pump(ctx, pair);
            }
        }
    }

    fn on_spin_down(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}
    fn on_timer(&mut self, _ctx: &mut SimCtx, _token: u64) {}

    fn begin_drain(&mut self, ctx: &mut SimCtx) {
        self.draining = true;
        for pair in 0..self.pairs {
            if self.destage_active[pair] {
                // Includes destages deferred while the pair was on duty.
                self.pump(ctx, pair);
            } else if !self.dirty[pair].is_clean() {
                self.activate_destage(ctx, pair);
            } else if self
                .spaces
                .values()
                .any(|s| s.segments().iter().any(|g| g.pair == pair))
            {
                // Segments without dirtiness: every covered block is
                // already consistent; reclaim directly.
                for space in self.spaces.values_mut() {
                    space.reclaim(|seg| seg.pair == pair);
                }
            }
        }
    }

    fn is_drained(&self, ctx: &SimCtx) -> bool {
        ctx.outstanding_users() == 0
            && self.io_map.is_empty()
            && self.dirty.iter().all(|d| d.is_clean())
            && self.log_used_bytes() == 0
            && !self.chain_active.iter().any(|&c| c)
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn check_consistency(&self, ctx: &SimCtx) -> Result<(), String> {
        for space in self.spaces.values() {
            space.check_invariants()?;
        }
        for (pair, d) in self.dirty.iter().enumerate() {
            d.check_invariants()?;
            if !d.is_clean() {
                return Err(format!("pair {pair} still has {} stale bytes", d.bytes()));
            }
        }
        if self.log_used_bytes() != 0 {
            return Err(format!("{} log bytes unreclaimed", self.log_used_bytes()));
        }
        if ctx.outstanding_users() != 0 {
            return Err(format!(
                "{} user requests unfinished",
                ctx.outstanding_users()
            ));
        }
        if !self.io_map.is_empty() {
            return Err(format!("{} orphaned sub-requests", self.io_map.len()));
        }
        let _ = self.logger_base;
        Ok(())
    }
}
