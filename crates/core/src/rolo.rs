//! RoLo-P and RoLo-R: rotated logging with decentralized destaging.
//!
//! The two flavors share all of the rotation machinery (§III-A) and
//! differ only in what serves as the on-duty logger (§III-B):
//!
//! * **RoLo-P** — mirrored *disks* serve as loggers (`M_j`); each write
//!   has two copies (primary in place + one log append);
//! * **RoLo-R** — mirrored *pairs* serve as loggers (`P_j`, `M_j`); each
//!   write has three copies (primary in place + two log appends).
//!
//! Following §III-B's "one or a few mirrored disks take turns", the
//! on-duty window holds one logger by default and can be widened
//! ([`SimConfig::rolo_on_duty`](crate::config::SimConfig)) to alleviate
//! the append bottleneck of large arrays (§III-D).
//!
//! Rotation: when the on-duty logger's free logging space falls below a
//! threshold, the logger advances to the next pair. The newly on-duty
//! mirror spins up and a **destage process** for its pair starts: stale
//! blocks are updated from the pair's primary through background I/O in
//! idle slots. When a pair's destage completes, every log segment holding
//! that pair's second copies — on any disk — is stale and is reclaimed
//! (the paper's proactive reclamation), which is what lets logging rotate
//! indefinitely. The previous logger spins down as soon as it is no
//! longer needed (immediately at rotation, or when its own unfinished
//! destage ends, exactly as Fig. 5(a) shows).
//!
//! If the next logger has no usable space, RoLo deactivates (§III-E):
//! all mirrors spin up, writes go straight to both copies, and logging
//! resumes once every destage process has drained and reclaimed the
//! logging space pool.

use crate::ctx::SimCtx;
use crate::dirty::DirtyMap;
use crate::faults::surviving_partner;
use crate::logspace::LoggerSpace;
use crate::policy::{Policy, PolicyStats};
use crate::recovery::recovery_plan;
use crate::segment::{replay_journals, LogManifest, SegmentStore};
use crate::slot::IoSlot;
use rolo_disk::{DiskId, DiskRequest, IoKind, IoOutcome, Priority};
use rolo_metrics::Phase;
use rolo_obs::{LegFlavor, SimEvent};
use rolo_sim::{Duration, IoMap};
use rolo_trace::{ReqKind, TraceRecord};
use std::collections::{BTreeMap, HashSet};

/// Minimum fraction of the logger region still free when the *next*
/// on-duty logger is proactively spun up, so rotation never stalls a
/// write on a spin-up (the 10.9 s latency would otherwise dominate mean
/// response). The actual look-ahead is rate-based: enough headroom to
/// absorb `SPIN_UP_AHEAD_FACTOR` spin-up times of appends at the
/// currently observed write rate.
const SPIN_UP_AHEAD_FRACTION: f64 = 0.02;
/// Safety factor on the spin-up time for the rate-based look-ahead.
const SPIN_UP_AHEAD_FACTOR: f64 = 3.0;

/// Default log segment size; overridden via
/// [`RoloPolicy::set_segment_tuning`] from
/// [`SimConfig::log_segment`](crate::config::SimConfig).
const DEFAULT_SEG_BYTES: u64 = 4 << 20;
/// Default compaction live-fraction threshold.
const DEFAULT_COMPACT_FRAC: f64 = 0.25;
/// Default archive-frame TTL.
const DEFAULT_ARCHIVE_TTL_US: u64 = 60_000_000;

/// Which RoLo flavor the controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoloFlavor {
    /// RoLo-P: single-mirror logger, two copies per write.
    Performance,
    /// RoLo-R: mirrored-pair logger, three copies per write.
    Reliability,
}

#[derive(Debug, Clone, Copy)]
enum Tag {
    User(u64, IoSlot),
    DestageRead { pair: usize, off: u64, len: u64 },
    DestageWrite { pair: usize, len: u64 },
    CompactRead { gen: u64 },
    CompactWrite { gen: u64 },
}

#[derive(Debug, Default)]
struct UserMeta {
    marks: Vec<(usize, u64, u64)>,
    clears: Vec<(usize, u64, u64)>,
    /// Journal records awaiting commit, flat to keep the write path
    /// to one allocation: `(mark index, journal disk, record id)`. The
    /// copies of `marks[i]` commit at a shared LSN when the request
    /// acknowledges.
    appends: Vec<(u32, DiskId, u64)>,
}

/// One in-flight background compaction: the relocation of a sealed
/// segment's live extents onto the current on-duty logger(s).
#[derive(Debug)]
struct CompactState {
    /// Generation guard: completions of a cancelled compaction's I/O
    /// carry an older `gen` and are ignored.
    gen: u64,
    /// Journal whose segment is being compacted.
    disk: DiskId,
    /// The segment being emptied.
    segment: u64,
    /// Extents still to relocate (popped from the back).
    extents: Vec<(usize, u64, u64)>,
    /// The extent whose read/write chain is in flight.
    current: Option<(usize, u64, u64)>,
    /// Relocation writes outstanding for the current extent.
    writes_left: u32,
    /// Journals receiving the relocated copies.
    targets: Vec<DiskId>,
    /// Live bytes relocated so far.
    relocated: u64,
}

/// Appends a record to `disk`'s journal, emitting the segment lifecycle
/// events its allocation caused, and returns the record id.
pub(crate) fn journal_append(
    ctx: &mut SimCtx,
    journals: &mut BTreeMap<DiskId, SegmentStore>,
    disk: DiskId,
    pair: usize,
    period: u64,
    lba: u64,
    len: u64,
) -> u64 {
    let out = journals
        .get_mut(&disk)
        .expect("journal exists")
        .append(pair, period, lba, len);
    if let Some((segment, live_bytes)) = out.sealed {
        ctx.emit(|| SimEvent::SegmentSealed {
            disk,
            segment,
            live_bytes,
        });
    }
    if let Some(segment) = out.opened {
        ctx.emit(|| SimEvent::SegmentAllocated { disk, segment });
    }
    out.rid
}

/// The RoLo-P / RoLo-R controller.
#[derive(Debug)]
pub struct RoloPolicy {
    flavor: RoloFlavor,
    pairs: usize,
    rotate_threshold: f64,
    chunk: u64,
    period: u64,
    /// On-duty logger pairs (§III-B: "one or a few mirrored disks take
    /// turns to serve as on-duty log disks"; more slots alleviate the
    /// append bottleneck per §III-D).
    loggers: Vec<usize>,
    /// Next pair to bring on duty when a slot rotates out.
    rotation_cursor: usize,
    /// Round-robin cursor over the slots for append placement.
    slot_cursor: usize,
    /// Logger-space manager per disk id (mirrors always; primaries too
    /// for RoLo-R).
    spaces: BTreeMap<DiskId, LoggerSpace>,
    /// Segment-store journal per logger disk (DESIGN.md §10), parallel
    /// to `spaces`: `spaces` manages the physical platter region, the
    /// journal carries the crash-consistent record chain.
    journals: BTreeMap<DiskId, SegmentStore>,
    /// Controller-durable log metadata (clears + per-pair stable LSNs).
    manifest: LogManifest,
    /// Commit LSN counter: assigned when a record's mark (or a clear)
    /// mutates a dirty map, so LSN order equals mutation order.
    next_lsn: u64,
    seg_bytes: u64,
    compact_frac: f64,
    archive_ttl_us: u64,
    compaction: Option<CompactState>,
    compaction_gen: u64,
    dirty: Vec<DirtyMap>,
    destage_active: Vec<bool>,
    chain_active: Vec<bool>,
    destage_tokens: Vec<Option<u64>>,
    io_map: IoMap<Tag>,
    user_meta: IoMap<UserMeta>,
    logging_token: Option<u64>,
    phase_energy_mark: f64,
    deactivated: bool,
    draining: bool,
    stats: PolicyStats,
    logger_base: u64,
    logger_size: u64,
    /// Append-rate estimation window for the eager-spin-up look-ahead.
    rate_window_start: rolo_sim::SimTime,
    rate_window_bytes: u64,
    append_rate: f64,
    spin_up_secs: f64,
    eager_spinup: bool,
}

impl RoloPolicy {
    /// Creates a RoLo controller.
    ///
    /// `logger_base`/`logger_size` locate the per-disk logger region (the
    /// geometry's [`logger_base`](rolo_raid::ArrayGeometry::logger_base)).
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized logger region or zero pairs.
    pub fn new(
        flavor: RoloFlavor,
        pairs: usize,
        logger_base: u64,
        logger_size: u64,
        rotate_threshold: f64,
        chunk: u64,
    ) -> Self {
        assert!(pairs > 0, "need at least one pair");
        assert!(logger_size > 0, "zero logger region");
        let mut spaces = BTreeMap::new();
        let mut journals = BTreeMap::new();
        for pair in 0..pairs {
            // Mirror disks are pairs..2*pairs.
            spaces.insert(pairs + pair, LoggerSpace::new(logger_base, logger_size));
            journals.insert(pairs + pair, SegmentStore::new(DEFAULT_SEG_BYTES));
            if flavor == RoloFlavor::Reliability {
                spaces.insert(pair, LoggerSpace::new(logger_base, logger_size));
                journals.insert(pair, SegmentStore::new(DEFAULT_SEG_BYTES));
            }
        }
        RoloPolicy {
            flavor,
            pairs,
            rotate_threshold,
            chunk,
            period: 0,
            loggers: vec![0],
            rotation_cursor: 1 % pairs,
            slot_cursor: 0,
            spaces,
            journals,
            manifest: LogManifest::new(),
            next_lsn: 0,
            seg_bytes: DEFAULT_SEG_BYTES,
            compact_frac: DEFAULT_COMPACT_FRAC,
            archive_ttl_us: DEFAULT_ARCHIVE_TTL_US,
            compaction: None,
            compaction_gen: 0,
            dirty: (0..pairs).map(|_| DirtyMap::new()).collect(),
            destage_active: vec![false; pairs],
            chain_active: vec![false; pairs],
            destage_tokens: vec![None; pairs],
            io_map: IoMap::default(),
            user_meta: IoMap::default(),
            logging_token: None,
            phase_energy_mark: 0.0,
            deactivated: false,
            draining: false,
            stats: PolicyStats::default(),
            logger_base,
            logger_size,
            rate_window_start: rolo_sim::SimTime::ZERO,
            rate_window_bytes: 0,
            append_rate: 0.0,
            spin_up_secs: 11.0,
            eager_spinup: true,
        }
    }

    /// Disables the proactive next-logger spin-up (ablation studies).
    pub fn set_eager_spinup(&mut self, enabled: bool) {
        self.eager_spinup = enabled;
    }

    /// Configures the segment store (call before the run starts; resets
    /// the — still empty — journals to the new segment size).
    pub fn set_segment_tuning(&mut self, seg_bytes: u64, compact_frac: f64, archive_ttl: Duration) {
        self.seg_bytes = seg_bytes;
        self.compact_frac = compact_frac;
        self.archive_ttl_us = archive_ttl.as_micros();
        for j in self.journals.values_mut() {
            *j = SegmentStore::new(seg_bytes);
        }
    }

    /// Read-only view of one logger disk's journal (tests).
    pub fn journal(&self, disk: DiskId) -> Option<&SegmentStore> {
        self.journals.get(&disk)
    }

    /// The controller-durable log manifest (tests).
    pub fn manifest(&self) -> &LogManifest {
        &self.manifest
    }

    fn alloc_lsn(&mut self) -> u64 {
        self.next_lsn += 1;
        self.next_lsn
    }

    /// Journals a dirty-map clear: the manifest gets the op at `lsn` and
    /// every journal's live-extent index drops the range. Call at the
    /// same instant the in-memory `clear_range` happens.
    fn journal_clear(&mut self, pair: usize, off: u64, len: u64) {
        let lsn = self.alloc_lsn();
        self.manifest.clear(lsn, pair, off, len);
        for j in self.journals.values_mut() {
            j.clear_extent(pair, off, len);
        }
    }

    /// Archives every fully-dead sealed segment and retires expired
    /// frames across all journals.
    fn sweep_archives(&mut self, ctx: &mut SimCtx) {
        let now_us = ctx.now.as_micros();
        let ttl = self.archive_ttl_us;
        for (&disk, j) in self.journals.iter_mut() {
            for segment in j.archive_ready() {
                let (frame, compressed_bytes) = j.archive(segment, now_us);
                ctx.emit(|| SimEvent::SegmentArchived {
                    disk,
                    segment,
                    frame,
                    compressed_bytes,
                });
            }
            for frame in j.retire_expired(now_us, ttl) {
                ctx.emit(|| SimEvent::ArchiveFrameRetired { disk, frame });
            }
        }
    }

    /// Starts a background compaction if a sealed segment's live
    /// fraction fell below the threshold and no compaction is running.
    /// Relocation I/O is background priority, so it folds into the same
    /// idle slots destage uses.
    fn maybe_compact(&mut self, ctx: &mut SimCtx) {
        if self.compaction.is_some()
            || self.deactivated
            || self.draining
            || self.compact_frac <= 0.0
        {
            return;
        }
        let disks: Vec<DiskId> = self.journals.keys().copied().collect();
        let Some((disk, segment)) = disks.iter().find_map(|&d| {
            self.journals[&d]
                .compaction_candidates(self.compact_frac)
                .first()
                .map(|&s| (d, s))
        }) else {
            return;
        };
        let extents = self.journals[&disk].live_extents_of(segment);
        let Some(&(_, _, widest)) = extents.iter().max_by_key(|e| e.2) else {
            return;
        };
        // Relocated copies go to the current on-duty logger(s); if space
        // is tight, skip — the pair's next destage reclaims the segment
        // anyway.
        let Some(slot) = self.pick_slot(ctx, widest) else {
            return;
        };
        let targets = self.pair_targets(ctx, slot);
        self.compaction_gen += 1;
        ctx.emit(|| SimEvent::CompactionStart { pair: None });
        let mut covered = targets.clone();
        covered.push(disk);
        ctx.span_compaction_begin(None, &covered);
        self.compaction = Some(CompactState {
            gen: self.compaction_gen,
            disk,
            segment,
            extents,
            current: None,
            writes_left: 0,
            targets,
            relocated: 0,
        });
        self.pump_compaction(ctx);
    }

    /// Issues the read leg of the next extent relocation, or finishes.
    fn pump_compaction(&mut self, ctx: &mut SimCtx) {
        let Some(st) = &mut self.compaction else {
            return;
        };
        let Some(ext) = st.extents.pop() else {
            self.finish_compaction(ctx);
            return;
        };
        st.current = Some(ext);
        let (gen, disk) = (st.gen, st.disk);
        let (pair, _, len) = ext;
        // Read from the pair's physical log blob on the source disk (the
        // store does not track per-record placement; the blob's offset
        // gives the seek model a representative position).
        let src_off = self.spaces[&disk]
            .segments()
            .iter()
            .find(|g| g.pair == pair)
            .map(|g| g.offset)
            .unwrap_or(self.logger_base);
        let id = ctx.submit(disk, IoKind::Read, src_off, len, Priority::Background);
        self.io_map.insert(id, Tag::CompactRead { gen });
    }

    /// The current extent's data is in memory: write it to the targets.
    fn on_compact_read(&mut self, ctx: &mut SimCtx, gen: u64) {
        let Some(st) = &self.compaction else {
            return;
        };
        if st.gen != gen {
            return;
        }
        let Some((pair, _, len)) = st.current else {
            return;
        };
        let targets = st.targets.clone();
        let period = self.period;
        let mut writes = 0u32;
        for target in targets {
            let segs = self
                .spaces
                .get_mut(&target)
                .and_then(|s| s.alloc(len, pair, period));
            if let Some(segs) = segs {
                for g in segs {
                    let id = ctx.submit(
                        target,
                        IoKind::Write,
                        g.offset,
                        g.bytes,
                        Priority::Background,
                    );
                    self.io_map.insert(id, Tag::CompactWrite { gen });
                    writes += 1;
                }
            }
        }
        if writes == 0 {
            // No physical space for the copies: drop this relocation and
            // move on — the extent simply stays in its old segment.
            if let Some(st) = &mut self.compaction {
                st.current = None;
            }
            self.pump_compaction(ctx);
        } else if let Some(st) = &mut self.compaction {
            st.writes_left = writes;
        }
    }

    /// A relocation write landed; on the last one, commit the relocated
    /// records and release the old extent.
    fn on_compact_write(&mut self, ctx: &mut SimCtx, gen: u64) {
        let Some(st) = &mut self.compaction else {
            return;
        };
        if st.gen != gen {
            return;
        }
        st.writes_left -= 1;
        if st.writes_left > 0 {
            return;
        }
        let Some((pair, lba, len)) = st.current.take() else {
            return;
        };
        let (disk, segment) = (st.disk, st.segment);
        let targets = st.targets.clone();
        let period = self.period;
        // Clip to what the old segment still owns: a clear or overwrite
        // that raced the relocation I/O must not be re-logged.
        let pieces = self.journals[&disk].live_intersection(segment, pair, lba, len);
        let mut moved = 0;
        for (plba, plen) in pieces {
            let lsn = self.alloc_lsn();
            for &t in &targets {
                let rid = journal_append(ctx, &mut self.journals, t, pair, period, plba, plen);
                self.journals
                    .get_mut(&t)
                    .expect("journal exists")
                    .commit(rid, lsn);
            }
            // Release the old copy from the source index — unless the
            // source is itself a target, where the commit above already
            // re-homed the extent.
            if !targets.contains(&disk) {
                self.journals
                    .get_mut(&disk)
                    .expect("journal exists")
                    .clear_extent(pair, plba, plen);
            }
            moved += plen;
        }
        if let Some(j) = self.journals.get_mut(&disk) {
            j.note_compacted(moved);
        }
        if let Some(st) = &mut self.compaction {
            st.relocated += moved;
        }
        self.pump_compaction(ctx);
    }

    fn finish_compaction(&mut self, ctx: &mut SimCtx) {
        let Some(st) = self.compaction.take() else {
            return;
        };
        let (disk, segment, relocated_bytes) = (st.disk, st.segment, st.relocated);
        ctx.emit(|| SimEvent::SegmentCompacted {
            disk,
            segment,
            relocated_bytes,
        });
        ctx.emit(|| SimEvent::CompactionEnd { pair: None });
        ctx.span_compaction_end(None);
        // The compacted segment is usually fully dead now.
        self.sweep_archives(ctx);
    }

    /// Cancels an in-flight compaction (logger failure): stray I/O
    /// completions are ignored via the generation guard.
    fn cancel_compaction(&mut self, ctx: &mut SimCtx) {
        if self.compaction.take().is_some() {
            ctx.emit(|| SimEvent::CompactionEnd { pair: None });
            ctx.span_compaction_end(None);
        }
    }

    /// Recovery-by-replay (DESIGN.md §10): scan the surviving journals,
    /// detect torn records, rebuild the dirty maps in LSN order, and
    /// cross-check them against the controller's in-memory state. Pairs
    /// whose only record copies rode the dead journal (possible in
    /// RoLo-P's single-log-copy layout) cannot be reconstructed from
    /// disks — the controller's NVRAM map stands in for them, exactly
    /// the §III-C fallback.
    fn replay_after_failure(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        if self.journals.is_empty() {
            return;
        }
        self.stats.log_replays += 1;
        ctx.emit(|| SimEvent::ReplayStarted { disk });
        let mut ids: Vec<DiskId> = self
            .journals
            .keys()
            .copied()
            .filter(|&d| d != disk)
            .collect();
        ids.sort_unstable();
        let survivors = ids.iter().map(|d| &self.journals[d]);
        let outcome = replay_journals(survivors, &self.manifest, self.pairs);
        self.stats.torn_records += outcome.torn_records;
        if outcome.torn_records > 0 {
            let count = outcome.torn_records;
            ctx.emit(|| SimEvent::TornRecordDetected { disk, count });
        }
        // A pair is lost to replay iff the dead journal held a committed,
        // unstable record whose LSN no survivor also holds.
        let mut survivor_lsns: HashSet<u64> = HashSet::new();
        for d in &ids {
            survivor_lsns.extend(self.journals[d].committed_records().iter().map(|&(l, _)| l));
        }
        let lost: HashSet<usize> = match self.journals.get(&disk) {
            Some(j) => j
                .committed_records()
                .into_iter()
                .filter(|&(lsn, pair)| {
                    lsn > self.manifest.pair_stable(pair) && !survivor_lsns.contains(&lsn)
                })
                .map(|(_, pair)| pair)
                .collect(),
            None => HashSet::new(),
        };
        let mut divergent_pairs = 0u64;
        for pair in 0..self.pairs {
            if lost.contains(&pair) {
                continue;
            }
            if outcome.maps[pair] == self.dirty[pair] {
                // Install the replayed map: load-bearing (the controller
                // proceeds on reconstructed state) yet behavior-identical,
                // so traced/untraced determinism is preserved.
                self.dirty[pair] = outcome.maps[pair].clone();
            } else {
                divergent_pairs += 1;
            }
        }
        self.stats.replay_divergence += divergent_pairs;
        let (records, torn) = (outcome.records_scanned, outcome.torn_records);
        ctx.emit(|| SimEvent::ReplayCompleted {
            disk,
            records,
            torn,
            divergent_pairs,
        });
    }

    /// Updates the observed append rate (bytes/s) over ~30 s windows.
    fn note_append(&mut self, now: rolo_sim::SimTime, bytes: u64) {
        self.rate_window_bytes += bytes;
        let elapsed = now.since(self.rate_window_start).as_secs_f64();
        if elapsed >= 30.0 {
            self.append_rate = self.rate_window_bytes as f64 / elapsed;
            self.rate_window_start = now;
            self.rate_window_bytes = 0;
        }
    }

    /// Headroom at which the next logger should already be spinning.
    fn spin_up_ahead_bytes(&self) -> u64 {
        let floor =
            (self.logger_size as f64 * (self.rotate_threshold + SPIN_UP_AHEAD_FRACTION)) as u64;
        let rate_based = (self.append_rate * self.spin_up_secs * SPIN_UP_AHEAD_FACTOR) as u64;
        floor.max(rate_based).min(self.logger_size)
    }

    /// The first on-duty logger pair (the only one unless
    /// [`set_on_duty_loggers`](Self::set_on_duty_loggers) widened the
    /// window).
    pub fn logger_pair(&self) -> usize {
        self.loggers[0]
    }

    /// All on-duty logger pairs.
    pub fn on_duty_loggers(&self) -> &[usize] {
        &self.loggers
    }

    /// Sets the number of simultaneously on-duty loggers (before the run
    /// starts). The initial window is pairs `0..k`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k < pairs`.
    pub fn set_on_duty_loggers(&mut self, k: usize) {
        assert!(k >= 1 && k < self.pairs, "on-duty window out of range");
        self.loggers = (0..k).collect();
        self.rotation_cursor = k % self.pairs;
    }

    /// True while logging is deactivated for lack of space (§III-E).
    pub fn is_deactivated(&self) -> bool {
        self.deactivated
    }

    /// Total live logged bytes across the logical logging space pool.
    pub fn log_used_bytes(&self) -> u64 {
        self.spaces.values().map(|s| s.used_bytes()).sum()
    }

    /// Total stale bytes awaiting destage.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.iter().map(|d| d.bytes()).sum()
    }

    /// The pairs whose logger spaces still hold un-reclaimed second
    /// copies of `pair`'s data — exactly the mirrors §III-C must awaken
    /// to recover a failure of `pair`'s primary (feed this to
    /// [`crate::recovery::recovery_plan`] as `recent_loggers`).
    pub fn pairs_holding_copies_of(&self, pair: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .spaces
            .iter()
            .filter(|(_, space)| space.segments().iter().any(|seg| seg.pair == pair))
            .map(|(&disk, _)| {
                if disk >= self.pairs {
                    disk - self.pairs
                } else {
                    disk
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn mirror(&self, ctx: &SimCtx, pair: usize) -> DiskId {
        ctx.geometry().mirror_disk(pair)
    }

    /// Disks receiving log appends for logger pair `j`.
    fn pair_targets(&self, ctx: &SimCtx, j: usize) -> Vec<DiskId> {
        match self.flavor {
            RoloFlavor::Performance => vec![ctx.geometry().mirror_disk(j)],
            RoloFlavor::Reliability => vec![
                ctx.geometry().primary_disk(j),
                ctx.geometry().mirror_disk(j),
            ],
        }
    }

    fn pair_has_space(&self, ctx: &SimCtx, j: usize, needed: u64) -> bool {
        let floor = (self.logger_size as f64 * self.rotate_threshold) as u64;
        self.pair_targets(ctx, j).iter().all(|d| {
            let s = &self.spaces[d];
            s.free_bytes() >= needed && s.free_bytes() > floor
        })
    }

    /// Picks the next on-duty pair with room, round-robin across slots.
    fn pick_slot(&mut self, ctx: &SimCtx, needed: u64) -> Option<usize> {
        let k = self.loggers.len();
        for i in 0..k {
            let j = self.loggers[(self.slot_cursor + i) % k];
            if self.pair_has_space(ctx, j, needed) {
                self.slot_cursor = (self.slot_cursor + i + 1) % k;
                return Some(j);
            }
        }
        None
    }

    fn activate_destage(&mut self, ctx: &mut SimCtx, pair: usize) {
        if self.destage_active[pair] {
            return;
        }
        self.destage_active[pair] = true;
        ctx.emit(|| SimEvent::DestageStart { pair: Some(pair) });
        // The destage chain reads the pair's primary and writes its
        // mirror; foreground legs stuck behind those transfers link here.
        let p = ctx.geometry().primary_disk(pair);
        ctx.span_destage_begin(Some(pair), &[p, self.mirror(ctx, pair)]);
        self.destage_tokens[pair] = Some(ctx.intervals.begin(Phase::Destaging, ctx.now));
        let m = self.mirror(ctx, pair);
        if ctx.disk(m).is_spun_up() {
            self.pump(ctx, pair);
        } else {
            ctx.spin_up(m);
        }
    }

    /// Pair that will next come on duty.
    fn next_on_duty(&self) -> usize {
        let mut cand = self.rotation_cursor;
        // Skip pairs already in the window.
        for _ in 0..self.pairs {
            if !self.loggers.contains(&cand) {
                return cand;
            }
            cand = (cand + 1) % self.pairs;
        }
        cand
    }

    fn rotate(&mut self, ctx: &mut SimCtx) {
        // Retire the fullest slot, bring the next pair on duty.
        let (slot, _) = self
            .loggers
            .iter()
            .enumerate()
            .min_by_key(|(_, &j)| {
                self.pair_targets(ctx, j)
                    .iter()
                    .map(|d| self.spaces[d].free_bytes())
                    .min()
                    .unwrap_or(0)
            })
            .expect("at least one slot");
        let incoming = self.next_on_duty();
        let old = std::mem::replace(&mut self.loggers[slot], incoming);
        self.rotation_cursor = (incoming + 1) % self.pairs;
        self.period += 1;
        self.stats.rotations += 1;
        ctx.emit(|| SimEvent::LoggerRotation {
            outgoing: old,
            incoming,
            period: self.period,
        });
        // Close the old logging period, open the next.
        let energy = ctx.total_energy();
        if let Some(tok) = self.logging_token.take() {
            ctx.intervals
                .end(tok, ctx.now, energy - self.phase_energy_mark);
        }
        self.phase_energy_mark = energy;
        self.logging_token = Some(ctx.intervals.begin(Phase::Logging, ctx.now));
        // The new on-duty mirror spins up and starts destaging its pair.
        let new_mirror = self.mirror(ctx, incoming);
        ctx.spin_up(new_mirror);
        self.activate_destage(ctx, incoming);
        // The old logger spins down unless its own destage is unfinished —
        // in which case its (possibly deferred) destage resumes now.
        if old != incoming && !self.destage_active[old] && !self.draining {
            let m = self.mirror(ctx, old);
            ctx.spin_down(m);
        } else if old != incoming && self.destage_active[old] {
            self.pump(ctx, old);
        }
    }

    fn deactivate(&mut self, ctx: &mut SimCtx) {
        if self.deactivated {
            return;
        }
        self.deactivated = true;
        self.stats.deactivations += 1;
        ctx.emit(|| SimEvent::LoggingDeactivated);
        for pair in 0..self.pairs {
            let m = self.mirror(ctx, pair);
            ctx.spin_up(m);
            if !self.dirty[pair].is_clean() {
                self.activate_destage(ctx, pair);
            }
        }
    }

    fn try_reactivate(&mut self, ctx: &mut SimCtx) {
        if !self.deactivated
            || self.destage_active.iter().any(|&a| a)
            || self.dirty.iter().any(|d| !d.is_clean())
            || self.log_used_bytes() > 0
        {
            return;
        }
        self.deactivated = false;
        ctx.emit(|| SimEvent::LoggingReactivated);
        self.rotate(ctx);
        // Park every mirror that is not an on-duty logger.
        for pair in 0..self.pairs {
            if !self.loggers.contains(&pair) && !self.destage_active[pair] && !self.draining {
                let m = self.mirror(ctx, pair);
                ctx.spin_down(m);
            }
        }
    }

    fn pump(&mut self, ctx: &mut SimCtx, pair: usize) {
        if !self.destage_active[pair] || self.chain_active[pair] {
            return;
        }
        // RoLo-R: the on-duty pair's primary carries every write's log
        // copy, so running its own destage reads against it would delay
        // all foreground writes. Defer the pair's destage until it leaves
        // the on-duty window (it stays marked active and resumes then).
        if self.flavor == RoloFlavor::Reliability
            && self.loggers.contains(&pair)
            && !self.draining
            && !self.deactivated
        {
            return;
        }
        if !ctx.disk(self.mirror(ctx, pair)).is_spun_up() {
            ctx.spin_up(self.mirror(ctx, pair));
            return;
        }
        match self.dirty[pair].take_next(self.chunk) {
            Some((off, len)) => {
                // The extraction clears the range from the dirty map, so
                // it is journaled as a manifest clear at this instant.
                self.journal_clear(pair, off, len);
                self.chain_active[pair] = true;
                let p = ctx.geometry().primary_disk(pair);
                let id = ctx.submit(p, IoKind::Read, off, len, Priority::Background);
                self.io_map.insert(id, Tag::DestageRead { pair, off, len });
            }
            None => self.complete_destage(ctx, pair),
        }
    }

    fn complete_destage(&mut self, ctx: &mut SimCtx, pair: usize) {
        if !self.destage_active[pair] || self.chain_active[pair] || !self.dirty[pair].is_clean() {
            return;
        }
        self.destage_active[pair] = false;
        self.stats.destage_cycles += 1;
        ctx.emit(|| SimEvent::DestageEnd { pair: Some(pair) });
        ctx.span_destage_end(Some(pair));
        // Proactive reclamation: every log copy of this pair, anywhere in
        // the pool, is now stale.
        for space in self.spaces.values_mut() {
            space.reclaim(|seg| seg.pair == pair);
        }
        // The pair's dirty map is empty, so its log is fully destaged:
        // advance the stable LSN (pruning the manifest's clears) and drop
        // the pair's live extents from every journal. Segments this
        // leaves fully dead archive below; low-live ones invite the
        // compactor into the idle slot the finished destage vacated.
        let lsn = self.alloc_lsn();
        self.manifest.reclaim(lsn, pair);
        for j in self.journals.values_mut() {
            j.reclaim_pair(pair);
        }
        self.sweep_archives(ctx);
        self.maybe_compact(ctx);
        ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
        if let Some(tok) = self.destage_tokens[pair].take() {
            ctx.intervals.end(tok, ctx.now, 0.0);
        }
        if !self.loggers.contains(&pair) && !self.deactivated && !self.draining {
            let m = self.mirror(ctx, pair);
            ctx.spin_down(m);
        }
        if self.deactivated {
            self.try_reactivate(ctx);
        }
    }

    fn after_dirty_change(&mut self, ctx: &mut SimCtx, pair: usize) {
        if self.destage_active[pair] {
            if self.chain_active[pair] {
                return;
            }
            if self.dirty[pair].is_clean() {
                self.complete_destage(ctx, pair);
            } else {
                self.pump(ctx, pair);
            }
        } else if (self.draining || self.deactivated) && !self.dirty[pair].is_clean() {
            self.activate_destage(ctx, pair);
        }
    }

    fn write_direct(
        &mut self,
        ctx: &mut SimCtx,
        user_id: u64,
        uslot: IoSlot,
        meta: &mut UserMeta,
        exts: &[rolo_raid::PhysExtent],
    ) -> u32 {
        self.stats.direct_writes += 1;
        let mut subs = 0;
        for ext in exts {
            let p = ctx.geometry().primary_disk(ext.pair);
            let m = ctx.geometry().mirror_disk(ext.pair);
            for d in [p, m] {
                let id = ctx.submit(
                    d,
                    IoKind::Write,
                    ext.offset,
                    ext.bytes,
                    Priority::Foreground,
                );
                self.io_map.insert(id, Tag::User(user_id, uslot));
                let flavor = if d == p {
                    LegFlavor::Transfer
                } else {
                    LegFlavor::MirrorCopy
                };
                ctx.tag_io(id, user_id, flavor);
                subs += 1;
            }
            meta.clears.push((ext.pair, ext.offset, ext.bytes));
        }
        subs
    }
}

impl Policy for RoloPolicy {
    fn name(&self) -> &'static str {
        match self.flavor {
            RoloFlavor::Performance => "RoLo-P",
            RoloFlavor::Reliability => "RoLo-R",
        }
    }

    fn initial_standby(&self, disk: DiskId) -> bool {
        // All mirrors except the initial on-duty loggers start spun down.
        disk >= self.pairs && disk < 2 * self.pairs && !self.loggers.contains(&(disk - self.pairs))
    }

    fn attach(&mut self, ctx: &mut SimCtx) {
        self.logging_token = Some(ctx.intervals.begin(Phase::Logging, ctx.now));
        self.phase_energy_mark = ctx.total_energy();
        self.spin_up_secs = ctx.disk(0).params().spin_up_time.as_secs_f64();
    }

    fn on_user_request(&mut self, ctx: &mut SimCtx, user_id: u64, rec: &TraceRecord) {
        let exts = ctx
            .geometry()
            .split(rec.offset, rec.bytes)
            .expect("driver keeps requests in range");
        let mut meta = UserMeta::default();
        let mut subs: u32 = 0;
        // Register up front (one admission hold) so the slab slot is in
        // hand while sub-requests are tagged; topped up to the real
        // count below. Nothing can complete inside this callback, so the
        // hold is never released early.
        let uslot = ctx.register_user(user_id, rec.kind, ctx.now, 1);
        match rec.kind {
            ReqKind::Read => {
                // Primaries are always ACTIVE/IDLE in RoLo-P/R: no
                // spin-up latency on reads (§III-B1). A degraded primary
                // slot hands its reads to the pair's mirror (§III-C).
                for ext in &exts {
                    let mut d = ctx.geometry().primary_disk(ext.pair);
                    let mut flavor = LegFlavor::Transfer;
                    if ctx.is_degraded(d) {
                        let from = d;
                        d = ctx.geometry().mirror_disk(ext.pair);
                        flavor = LegFlavor::DegradedRedirect;
                        ctx.note_redirect();
                        ctx.emit(|| SimEvent::ReadRedirected { from, to: d });
                    }
                    let id =
                        ctx.submit(d, IoKind::Read, ext.offset, ext.bytes, Priority::Foreground);
                    self.io_map.insert(id, Tag::User(user_id, uslot));
                    ctx.tag_io(id, user_id, flavor);
                    subs += 1;
                }
            }
            ReqKind::Write if self.deactivated => {
                subs += self.write_direct(ctx, user_id, uslot, &mut meta, &exts);
                // A deactivated-mode write may unblock reactivation later;
                // nothing to do now.
            }
            ReqKind::Write => {
                let mut slot = self.pick_slot(ctx, rec.bytes);
                if slot.is_none() && !self.deactivated {
                    self.rotate(ctx);
                    slot = self.pick_slot(ctx, rec.bytes);
                    if slot.is_none() {
                        self.deactivate(ctx);
                    }
                }
                let usable_slot = if self.deactivated { None } else { slot };
                if let Some(slot) = usable_slot {
                    // Primary copies in place.
                    for ext in &exts {
                        let p = ctx.geometry().primary_disk(ext.pair);
                        let id = ctx.submit(
                            p,
                            IoKind::Write,
                            ext.offset,
                            ext.bytes,
                            Priority::Foreground,
                        );
                        self.io_map.insert(id, Tag::User(user_id, uslot));
                        ctx.tag_io(id, user_id, LegFlavor::Transfer);
                        subs += 1;
                        meta.marks.push((ext.pair, ext.offset, ext.bytes));
                    }
                    // Log copies on the chosen on-duty logger disk(s).
                    // Each copy also enters the target's journal as an
                    // uncommitted record; the shared commit LSN is
                    // stamped when the request acknowledges.

                    for target in self.pair_targets(ctx, slot) {
                        for (i, ext) in exts.iter().enumerate() {
                            let segs = self
                                .spaces
                                .get_mut(&target)
                                .expect("logger space exists")
                                .alloc(ext.bytes, ext.pair, self.period)
                                .expect("rotation guaranteed space");
                            for seg in segs {
                                let id = ctx.submit(
                                    target,
                                    IoKind::Write,
                                    seg.offset,
                                    seg.bytes,
                                    Priority::Foreground,
                                );
                                self.io_map.insert(id, Tag::User(user_id, uslot));
                                ctx.tag_io(id, user_id, LegFlavor::LogAppend);
                                subs += 1;
                                self.stats.log_appended_bytes += seg.bytes;
                            }
                            let rid = journal_append(
                                ctx,
                                &mut self.journals,
                                target,
                                ext.pair,
                                self.period,
                                ext.offset,
                                ext.bytes,
                            );
                            meta.appends.push((i as u32, target, rid));
                        }
                    }
                    ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
                    self.note_append(ctx.now, rec.bytes);
                    // Spin the next on-duty logger up *before* rotation is
                    // due, so the hand-over is seamless (no write ever
                    // waits out a spin-up at the rotation point).
                    let ahead = self.spin_up_ahead_bytes();
                    let low_water = self.loggers.iter().any(|&j| {
                        self.pair_targets(ctx, j)
                            .iter()
                            .any(|d| self.spaces[d].free_bytes() < ahead)
                    });
                    if low_water && !self.deactivated && self.eager_spinup {
                        let next = self.next_on_duty();
                        let m = self.mirror(ctx, next);
                        ctx.spin_up(m);
                    }
                } else {
                    subs += self.write_direct(ctx, user_id, uslot, &mut meta, &exts);
                }
            }
        }
        debug_assert!(subs >= 1, "every admitted request issues at least one sub");
        if subs > 1 {
            ctx.add_user_subs(uslot, subs - 1);
        }
        self.user_meta.insert(user_id, meta);
    }

    fn on_io_complete(&mut self, ctx: &mut SimCtx, _disk: DiskId, req: DiskRequest) {
        match self.io_map.remove(&req.id).expect("unknown sub-request") {
            Tag::User(user, uslot) => {
                if ctx.user_sub_done(uslot).is_some() {
                    let meta = self.user_meta.remove(&user).unwrap_or_default();
                    for (i, (pair, off, len)) in meta.marks.iter().copied().enumerate() {
                        // Commit the mark's journal records at the same
                        // instant the dirty map mutates, sharing one LSN
                        // across the mirrored copies.
                        let lsn = self.alloc_lsn();
                        for &(mi, d, rid) in &meta.appends {
                            if mi as usize == i {
                                if let Some(j) = self.journals.get_mut(&d) {
                                    j.commit(rid, lsn);
                                }
                            }
                        }
                        self.dirty[pair].mark(off, len);
                        self.after_dirty_change(ctx, pair);
                    }
                    for (pair, off, len) in meta.clears {
                        self.journal_clear(pair, off, len);
                        self.dirty[pair].clear_range(off, len);
                        self.after_dirty_change(ctx, pair);
                    }
                }
            }
            Tag::DestageRead { pair, off, len } => {
                let m = ctx.geometry().mirror_disk(pair);
                let id = ctx.submit(m, IoKind::Write, off, len, Priority::Background);
                self.io_map.insert(id, Tag::DestageWrite { pair, len });
            }
            Tag::DestageWrite { pair, len } => {
                self.stats.destaged_bytes += len;
                self.chain_active[pair] = false;
                if self.dirty[pair].is_clean() {
                    self.complete_destage(ctx, pair);
                } else {
                    self.pump(ctx, pair);
                }
            }
            Tag::CompactRead { gen } => self.on_compact_read(ctx, gen),
            Tag::CompactWrite { gen } => self.on_compact_write(ctx, gen),
        }
    }

    fn on_io_error(
        &mut self,
        ctx: &mut SimCtx,
        disk: DiskId,
        req: DiskRequest,
        outcome: IoOutcome,
    ) {
        // User reads hitting a latent sector error or a degraded slot are
        // re-served by the surviving partner; every other failure closes
        // through the normal path (the rebuild restores the replacement's
        // copy).
        if req.kind == IoKind::Read && (outcome == IoOutcome::MediaError || ctx.is_degraded(disk)) {
            if let Some(Tag::User(user, uslot)) = self.io_map.get(&req.id).copied() {
                if let Some(p) =
                    surviving_partner(ctx.geometry(), disk).filter(|&p| !ctx.is_degraded(p))
                {
                    self.io_map.remove(&req.id);
                    ctx.note_redirect();
                    ctx.emit(|| SimEvent::ReadRedirected { from: disk, to: p });
                    let id =
                        ctx.submit(p, IoKind::Read, req.offset, req.bytes, Priority::Foreground);
                    self.io_map.insert(id, Tag::User(user, uslot));
                    ctx.tag_io(id, user, LegFlavor::DegradedRedirect);
                    return;
                }
            }
        }
        self.on_io_complete(ctx, disk, req);
    }

    fn on_disk_failure(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        let pair = if disk < self.pairs {
            disk
        } else {
            disk - self.pairs
        };
        let scheme = match self.flavor {
            RoloFlavor::Performance => crate::config::Scheme::RoloP,
            RoloFlavor::Reliability => crate::config::Scheme::RoloR,
        };
        // The recovery plan needs the *live* logger history: the pairs
        // whose unreclaimed log segments hold the failed disk's recent
        // second copies (§III-C).
        let recent = self.pairs_holding_copies_of(pair);
        let plan = recovery_plan(scheme, ctx.geometry(), disk, self.logger_pair(), &recent);

        // An in-flight compaction touching the dead disk is cancelled;
        // its stray I/O completions are ignored via the generation guard.
        if self
            .compaction
            .as_ref()
            .is_some_and(|st| st.disk == disk || st.targets.contains(&disk))
        {
            self.cancel_compaction(ctx);
        }

        // Recovery-by-replay: before the dead journal is forgotten, scan
        // the surviving chains, reconstruct the dirty maps, and verify
        // them against the in-memory state (DESIGN.md §10).
        if self.journals.contains_key(&disk) {
            self.replay_after_failure(ctx, disk);
        }

        // Everything logged on the dead disk is gone; its blank
        // replacement starts with an empty logging space. The in-place
        // primary copies still cover all of it, so only redundancy was
        // lost — the per-pair destages restore it below.
        if let Some(space) = self.spaces.get_mut(&disk) {
            *space = LoggerSpace::new(self.logger_base, self.logger_size);
            ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
        }
        if let Some(j) = self.journals.get_mut(&disk) {
            *j = SegmentStore::new(self.seg_bytes);
            // In-flight requests' append refs into the wiped journal are
            // stale; drop them so their commit cannot stamp an unrelated
            // record the fresh journal hands the same id.
            for meta in self.user_meta.values_mut() {
                meta.appends.retain(|&(_, d, _)| d != disk);
            }
        }

        // A dead on-duty logger vacates its window slot immediately:
        // the next pair rotates in so appends never target the blank
        // replacement. (For RoLo-P only the mirror serves the slot; for
        // RoLo-R both halves of the pair do.)
        let serves_slot = match self.flavor {
            RoloFlavor::Performance => disk >= self.pairs,
            RoloFlavor::Reliability => true,
        };
        if serves_slot && !self.deactivated {
            if let Some(slot) = self.loggers.iter().position(|&j| j == pair) {
                let incoming = self.next_on_duty();
                self.loggers[slot] = incoming;
                self.rotation_cursor = (incoming + 1) % self.pairs;
                self.period += 1;
                self.stats.rotations += 1;
                ctx.emit(|| SimEvent::LoggerRotation {
                    outgoing: pair,
                    incoming,
                    period: self.period,
                });
                let m = self.mirror(ctx, incoming);
                ctx.spin_up(m);
                self.activate_destage(ctx, incoming);
            }
        }

        ctx.begin_rebuild(&plan, ctx.geometry().data_region());

        // Restore the pair's redundancy promptly: destage its stale
        // blocks (this also reclaims every surviving log copy of the
        // pair once clean). The replacement is already spinning, and a
        // destage that was waiting on the dead disk's spin-up wake gets
        // re-kicked here.
        if !self.dirty[pair].is_clean() {
            self.activate_destage(ctx, pair);
        }
        if self.destage_active[pair] {
            self.pump(ctx, pair);
        }
    }

    fn on_rebuild_complete(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        // A rebuilt off-duty mirror returns to standby.
        if disk >= self.pairs && disk < 2 * self.pairs {
            let pair = disk - self.pairs;
            if !self.loggers.contains(&pair)
                && !self.destage_active[pair]
                && !self.deactivated
                && !self.draining
            {
                ctx.spin_down(disk);
            }
        }
    }

    fn on_spin_up(&mut self, ctx: &mut SimCtx, disk: DiskId) {
        if disk >= self.pairs && disk < 2 * self.pairs {
            let pair = disk - self.pairs;
            if self.destage_active[pair] {
                self.pump(ctx, pair);
            }
        }
    }

    fn on_spin_down(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}
    fn on_timer(&mut self, _ctx: &mut SimCtx, _token: u64) {}

    fn begin_drain(&mut self, ctx: &mut SimCtx) {
        self.draining = true;
        for pair in 0..self.pairs {
            if self.destage_active[pair] {
                // Includes destages deferred while the pair was on duty.
                self.pump(ctx, pair);
            } else if !self.dirty[pair].is_clean() {
                self.activate_destage(ctx, pair);
            } else if self
                .spaces
                .values()
                .any(|s| s.segments().iter().any(|g| g.pair == pair))
            {
                // Segments without dirtiness: every covered block is
                // already consistent; reclaim directly — journals and
                // manifest advance exactly as a completed destage would.
                for space in self.spaces.values_mut() {
                    space.reclaim(|seg| seg.pair == pair);
                }
                let lsn = self.alloc_lsn();
                self.manifest.reclaim(lsn, pair);
                for j in self.journals.values_mut() {
                    j.reclaim_pair(pair);
                }
                self.sweep_archives(ctx);
            }
        }
    }

    fn is_drained(&self, ctx: &SimCtx) -> bool {
        ctx.outstanding_users() == 0
            && self.io_map.is_empty()
            && self.dirty.iter().all(|d| d.is_clean())
            && self.log_used_bytes() == 0
            && !self.chain_active.iter().any(|&c| c)
    }

    fn stats(&self) -> PolicyStats {
        let mut s = self.stats;
        for j in self.journals.values() {
            let js = j.stats();
            s.segments_sealed += js.sealed_segments;
            s.segments_archived += js.archived_segments;
            s.frames_retired += js.retired_frames;
            s.compacted_bytes += js.compacted_bytes;
        }
        s
    }

    fn check_consistency(&self, ctx: &SimCtx) -> Result<(), String> {
        for space in self.spaces.values() {
            space.check_invariants()?;
        }
        for (disk, j) in &self.journals {
            j.check_invariants()
                .map_err(|e| format!("journal {disk}: {e}"))?;
            if j.live_bytes() != 0 {
                return Err(format!(
                    "journal {disk}: {} live bytes after drain",
                    j.live_bytes()
                ));
            }
        }
        for (pair, d) in self.dirty.iter().enumerate() {
            d.check_invariants()?;
            if !d.is_clean() {
                return Err(format!("pair {pair} still has {} stale bytes", d.bytes()));
            }
        }
        if self.log_used_bytes() != 0 {
            return Err(format!("{} log bytes unreclaimed", self.log_used_bytes()));
        }
        if ctx.outstanding_users() != 0 {
            return Err(format!(
                "{} user requests unfinished",
                ctx.outstanding_users()
            ));
        }
        if !self.io_map.is_empty() {
            return Err(format!("{} orphaned sub-requests", self.io_map.len()));
        }
        let _ = self.logger_base;
        Ok(())
    }
}
