//! Generational slab for in-flight request state.
//!
//! The hot path completes every user request through
//! `SimCtx::user_sub_done`, which previously cost a `HashMap<u64, _>`
//! probe per sub-request completion. [`IoSlab`] replaces that with a
//! plain `Vec` indexed by a generational [`IoSlot`]: allocation pops a
//! free-list entry (or grows the vec), lookup is one bounds-checked index
//! plus a generation compare, and freeing pushes the index back with its
//! generation bumped so stale handles can never alias a recycled slot.
//!
//! Slots are handles, not ids: the externally-visible `u64` user-request
//! ids (which appear in traces, spans and checksummed baselines) are
//! stored *inside* the slab entries and are completely unaffected by slot
//! reuse. Controllers carry the slot alongside the id in their own
//! per-request metadata.

/// Generational handle into an [`IoSlab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoSlot {
    index: u32,
    gen: u32,
}

impl IoSlot {
    /// A handle that no live slab entry can ever match; useful as a
    /// pre-registration placeholder.
    pub const DANGLING: IoSlot = IoSlot {
        index: u32::MAX,
        gen: u32::MAX,
    };

    /// The raw slot index (diagnostics only — not stable across reuse).
    pub fn index(self) -> u32 {
        self.index
    }
}

#[derive(Debug)]
struct Entry<T> {
    gen: u32,
    /// `Some` while the slot is live, `None` while on the free list.
    value: Option<T>,
}

/// A vec-backed slab with generational slot reuse.
#[derive(Debug)]
pub struct IoSlab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for IoSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IoSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        IoSlab {
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Creates an empty slab with room for `cap` live entries.
    pub fn with_capacity(cap: usize) -> Self {
        IoSlab {
            entries: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Inserts `value`, returning its slot.
    pub fn insert(&mut self, value: T) -> IoSlot {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let e = &mut self.entries[index as usize];
            debug_assert!(e.value.is_none());
            e.value = Some(value);
            IoSlot { index, gen: e.gen }
        } else {
            let index = u32::try_from(self.entries.len()).expect("slab index overflow");
            self.entries.push(Entry {
                gen: 0,
                value: Some(value),
            });
            IoSlot { index, gen: 0 }
        }
    }

    /// Shared access to a live entry; `None` if the slot is stale or free.
    #[inline]
    pub fn get(&self, slot: IoSlot) -> Option<&T> {
        self.entries
            .get(slot.index as usize)
            .filter(|e| e.gen == slot.gen)
            .and_then(|e| e.value.as_ref())
    }

    /// Mutable access to a live entry; `None` if the slot is stale or free.
    #[inline]
    pub fn get_mut(&mut self, slot: IoSlot) -> Option<&mut T> {
        self.entries
            .get_mut(slot.index as usize)
            .filter(|e| e.gen == slot.gen)
            .and_then(|e| e.value.as_mut())
    }

    /// Removes and returns a live entry, bumping the slot generation so
    /// the handle (and any copies of it) go stale. `None` if already
    /// stale or free.
    pub fn remove(&mut self, slot: IoSlot) -> Option<T> {
        let e = self
            .entries
            .get_mut(slot.index as usize)
            .filter(|e| e.gen == slot.gen)?;
        let value = e.value.take()?;
        e.gen = e.gen.wrapping_add(1);
        self.free.push(slot.index);
        self.live -= 1;
        Some(value)
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over live entries (slot order, not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (IoSlot, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.value.as_ref().map(|v| {
                (
                    IoSlot {
                        index: i as u32,
                        gen: e.gen,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = IoSlab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
    }

    #[test]
    fn stale_handles_never_alias_reused_slots() {
        let mut s = IoSlab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // Same index, new generation: the old handle stays dead.
        assert_eq!(a.index(), b.index());
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn dangling_never_resolves() {
        let mut s: IoSlab<u8> = IoSlab::new();
        s.insert(9);
        assert_eq!(s.get(IoSlot::DANGLING), None);
        assert_eq!(s.remove(IoSlot::DANGLING), None);
    }

    #[test]
    fn free_list_recycles_lifo() {
        let mut s = IoSlab::new();
        let slots: Vec<_> = (0..8).map(|i| s.insert(i)).collect();
        for &sl in &slots {
            s.remove(sl);
        }
        assert!(s.is_empty());
        // LIFO reuse: last freed comes back first.
        let r = s.insert(100);
        assert_eq!(r.index(), slots[7].index());
    }

    #[test]
    fn iter_visits_only_live() {
        let mut s = IoSlab::new();
        let a = s.insert(1);
        let _b = s.insert(2);
        s.remove(a);
        let vals: Vec<_> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![2]);
    }
}
