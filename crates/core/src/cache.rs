//! LRU block cache used by RoLo-E's popular-read caching (§III-B3).
//!
//! RoLo-E keeps popular read blocks in the on-duty logging space "to
//! avoid the passive and expensive disk spin up/down caused by read
//! misses". The cache is block-granular (one stripe unit per block) and
//! strictly LRU; capacity is a fixed share of the logging space.

use std::collections::{BTreeMap, HashMap};

/// Fixed-capacity LRU set of block numbers.
///
/// # Example
///
/// ```
/// use rolo_core::cache::BlockCache;
///
/// let mut c = BlockCache::new(2);
/// c.insert(1);
/// c.insert(2);
/// assert!(c.contains(1));
/// c.touch(1);       // 1 is now most recent
/// c.insert(3);      // evicts 2
/// assert!(c.contains(1) && c.contains(3) && !c.contains(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    capacity: usize,
    by_block: HashMap<u64, u64>,
    by_seq: BTreeMap<u64, u64>,
    next_seq: u64,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` blocks (zero disables
    /// caching).
    pub fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            ..Default::default()
        }
    }

    /// Maximum number of blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks currently resident.
    pub fn len(&self) -> usize {
        self.by_block.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.by_block.is_empty()
    }

    /// True if `block` is resident (does not affect recency).
    pub fn contains(&self, block: u64) -> bool {
        self.by_block.contains_key(&block)
    }

    /// Marks `block` most-recently-used if resident.
    pub fn touch(&mut self, block: u64) {
        if let Some(seq) = self.by_block.get(&block).copied() {
            self.by_seq.remove(&seq);
            let s = self.next_seq;
            self.next_seq += 1;
            self.by_seq.insert(s, block);
            self.by_block.insert(block, s);
        }
    }

    /// Inserts `block` (as most-recent), evicting the LRU block if full.
    /// Returns the evicted block, if any.
    pub fn insert(&mut self, block: u64) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        if self.contains(block) {
            self.touch(block);
            return None;
        }
        let mut evicted = None;
        if self.by_block.len() >= self.capacity {
            if let Some((&seq, &victim)) = self.by_seq.iter().next() {
                self.by_seq.remove(&seq);
                self.by_block.remove(&victim);
                evicted = Some(victim);
            }
        }
        let s = self.next_seq;
        self.next_seq += 1;
        self.by_seq.insert(s, block);
        self.by_block.insert(block, s);
        evicted
    }

    /// Drops everything (logging space was reclaimed/rotated).
    pub fn clear(&mut self) {
        self.by_block.clear();
        self.by_seq.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_capacity_never_caches() {
        let mut c = BlockCache::new(0);
        assert!(c.insert(1).is_none());
        assert!(!c.contains(1));
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BlockCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        assert_eq!(c.insert(4), Some(1));
        c.touch(2);
        assert_eq!(c.insert(5), Some(3));
        assert!(c.contains(2) && c.contains(4) && c.contains(5));
    }

    #[test]
    fn reinsert_refreshes() {
        let mut c = BlockCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.insert(1).is_none()); // refresh, no eviction
        assert_eq!(c.insert(3), Some(2)); // 2 was LRU after refresh
    }

    #[test]
    fn clear_empties() {
        let mut c = BlockCache::new(4);
        c.insert(1);
        c.insert(2);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(1));
    }

    proptest! {
        #[test]
        fn prop_never_exceeds_capacity(ops in proptest::collection::vec(0u64..100, 1..300), cap in 1usize..16) {
            let mut c = BlockCache::new(cap);
            for b in ops {
                c.insert(b);
                prop_assert!(c.len() <= cap);
            }
        }

        #[test]
        fn prop_insert_makes_resident(blocks in proptest::collection::vec(0u64..50, 1..100)) {
            let mut c = BlockCache::new(8);
            for b in blocks {
                c.insert(b);
                prop_assert!(c.contains(b));
            }
        }
    }
}
