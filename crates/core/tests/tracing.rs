//! Observability-layer integration tests: the trace sink sees the
//! lifecycle events DESIGN.md §9 promises, in time order, without ever
//! perturbing the simulation itself.

use rolo_core::{run_scheme_with_sink, Scheme, SimConfig};
use rolo_obs::{NullSink, RingSink, SimEvent, TracedEvent};
use rolo_sim::Duration;
use rolo_trace::SyntheticConfig;

fn small_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, 4);
    cfg.disk.capacity_bytes = 256 << 20;
    cfg.logger_region = 32 << 20;
    cfg.graid_log_capacity = 64 << 20;
    cfg
}

fn traced_run(cfg: &SimConfig, iops: f64, secs: u64, capacity: usize) -> Vec<TracedEvent> {
    let dur = Duration::from_secs(secs);
    let wl = SyntheticConfig::motivation_write_only(iops);
    let (report, mut sink) = run_scheme_with_sink(
        cfg,
        wl.generator(dur, 3),
        dur,
        Box::new(RingSink::new(capacity)),
    );
    report.consistency.as_ref().expect("consistent");
    sink.drain()
}

fn kinds(events: &[TracedEvent]) -> Vec<&'static str> {
    events.iter().map(|e| e.event.kind_name()).collect()
}

#[test]
fn null_and_ring_sinks_produce_identical_reports() {
    let dur = Duration::from_secs(600);
    let wl = SyntheticConfig::motivation_write_only(40.0);
    for scheme in Scheme::all() {
        let cfg = small_cfg(scheme);
        let (null_report, _) =
            run_scheme_with_sink(&cfg, wl.generator(dur, 9), dur, Box::new(NullSink));
        let (ring_report, sink) = run_scheme_with_sink(
            &cfg,
            wl.generator(dur, 9),
            dur,
            Box::new(RingSink::new(1 << 20)),
        );
        assert!(sink.recorded() > 0, "{scheme}: nothing recorded");
        assert_eq!(
            null_report.deterministic_json(),
            ring_report.deterministic_json(),
            "{scheme}: tracing changed the outcome"
        );
    }
}

#[test]
fn rolo_p_lifecycle_events_are_present_and_time_ordered() {
    // Small logger + sustained writes force rotations and destages.
    let events = traced_run(&small_cfg(Scheme::RoloP), 40.0, 600, 1 << 20);
    let seen = kinds(&events);
    for expected in [
        "RequestArrive",
        "RequestDispatch",
        "RequestComplete",
        "DiskInit",
        "DiskState",
        "LoggerRotation",
        "DestageStart",
        "DestageEnd",
        "TraceEnded",
    ] {
        assert!(seen.contains(&expected), "missing {expected} in {:?}", {
            let mut u = seen.clone();
            u.sort_unstable();
            u.dedup();
            u
        });
    }
    assert!(
        events.windows(2).all(|w| w[0].at <= w[1].at),
        "events out of time order"
    );
}

#[test]
fn ring_sink_bounds_memory_and_counts_drops() {
    let capacity = 512;
    let events = traced_run(&small_cfg(Scheme::RoloP), 40.0, 600, capacity);
    assert_eq!(events.len(), capacity, "ring must fill to capacity");
    // The oldest events were overwritten: the retained window starts
    // late in the run, not at time zero.
    assert!(events[0].at.as_micros() > 0, "oldest events not dropped");
}

#[test]
fn fault_run_emits_failure_and_rebuild_milestones() {
    let mut cfg = small_cfg(Scheme::RoloP);
    cfg.faults.disk_failures = vec![(1, Duration::from_secs(120))];
    let events = traced_run(&cfg, 40.0, 600, 1 << 20);
    let seen = kinds(&events);
    for expected in [
        "FaultScheduled",
        "DiskFailed",
        "RebuildStarted",
        "RebuildCompleted",
    ] {
        assert!(seen.contains(&expected), "missing {expected}");
    }
    let failed = events
        .iter()
        .find_map(|e| match &e.event {
            SimEvent::DiskFailed { disk, .. } => Some(*disk),
            _ => None,
        })
        .expect("disk_failed present");
    assert_eq!(failed, 1);
}
