//! Behavioural tests of the five controllers over the shared driver.
//!
//! Each test runs a small calibrated workload end-to-end and checks the
//! properties the paper's design hinges on: consistency after drain,
//! spin-count patterns (Table I), rotation arithmetic, copy counts, and
//! cache behaviour.

use rolo_core::{driver, RoloFlavor, RoloPolicy, Scheme, SimConfig, SimReport};
use rolo_sim::Duration;
use rolo_trace::{Burstiness, SizeDist, SyntheticConfig};

/// A small-logger configuration so tests rotate/destage quickly.
fn small_cfg(scheme: Scheme, pairs: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, pairs);
    cfg.logger_region = 64 << 20; // 64 MiB logger per disk
    cfg.graid_log_capacity = 128 << 20; // 128 MiB dedicated log
    cfg
}

fn write_workload(iops: f64) -> SyntheticConfig {
    SyntheticConfig {
        iops,
        write_ratio: 1.0,
        read_size: SizeDist::Fixed(64 * 1024),
        write_size: SizeDist::Fixed(64 * 1024),
        sequential_fraction: 0.3,
        write_footprint: 2 << 30,
        read_footprint: 2 << 30,
        read_hot_fraction: 0.5,
        hot_set_bytes: 64 << 20,
        burstiness: Burstiness::Smooth,
        batch_mean: 1.0,
        align: 4096,
    }
}

fn mixed_workload(iops: f64, write_ratio: f64, hot: f64) -> SyntheticConfig {
    SyntheticConfig {
        write_ratio,
        read_hot_fraction: hot,
        read_size: SizeDist::Fixed(32 * 1024),
        hot_set_bytes: 16 << 20,
        ..write_workload(iops)
    }
}

fn run(cfg: &SimConfig, workload: &SyntheticConfig, secs: u64, seed: u64) -> SimReport {
    let dur = Duration::from_secs(secs);
    driver::run_scheme(cfg, workload.generator(dur, seed), dur)
}

#[test]
fn raid10_runs_consistently_and_never_spins() {
    let cfg = small_cfg(Scheme::Raid10, 4);
    let r = run(&cfg, &write_workload(50.0), 120, 1);
    r.consistency.as_ref().expect("consistent");
    assert!(r.user_requests > 4000);
    assert_eq!(
        r.spin_cycles, 0,
        "RAID10 keeps every disk spinning (Table I)"
    );
    assert!(r.mean_response_ms() > 0.0);
}

#[test]
fn graid_destages_at_threshold_and_reclaims() {
    let cfg = small_cfg(Scheme::Graid, 4);
    // 50 IOPS × 64 KiB ≈ 3.2 MB/s → 128 MiB log × 80 % fills in ~32 s.
    let r = run(&cfg, &write_workload(50.0), 300, 2);
    r.consistency.as_ref().expect("consistent");
    assert!(
        r.policy.destage_cycles >= 2,
        "expected several destage cycles, got {}",
        r.policy.destage_cycles
    );
    assert!(r.policy.destaged_bytes > 0);
    // Spin cycles come in bursts of one per mirror per cycle.
    assert!(
        r.spin_cycles >= r.policy.destage_cycles * cfg.pairs as u64 / 2,
        "mirrors spin per destage cycle: {} cycles, {} spins",
        r.policy.destage_cycles,
        r.spin_cycles
    );
    // The destaging phase exists and consumed wall time.
    assert!(r.destaging_interval_ratio > 0.0);
}

#[test]
fn rolo_p_rotates_proportionally_to_volume() {
    let cfg = small_cfg(Scheme::RoloP, 4);
    let wl = write_workload(50.0);
    let secs = 300;
    let r = run(&cfg, &wl, secs, 3);
    r.consistency.as_ref().expect("consistent");
    // Volume ≈ 3.2 MB/s × 300 s ≈ 960 MiB; logger 64 MiB → ~15 rotations.
    let volume = 50.0 * 64.0 * 1024.0 * secs as f64;
    let expected = volume / (64u64 << 20) as f64;
    let got = r.policy.rotations as f64;
    assert!(
        got > expected * 0.6 && got < expected * 1.6,
        "rotations {got} vs expected ~{expected}"
    );
    assert!(r.policy.log_appended_bytes > 0);
    assert!(r.policy.destaged_bytes > 0);
}

#[test]
fn rolo_p_spins_an_order_of_magnitude_less_than_graid() {
    // Table I's key contrast: per logging cycle GRAID spins *all* mirrors
    // while RoLo-P spins only the next on-duty logger.
    let wl = write_workload(40.0);
    let g = run(&small_cfg(Scheme::Graid, 5), &wl, 400, 4);
    let p = run(&small_cfg(Scheme::RoloP, 5), &wl, 400, 4);
    g.consistency.as_ref().expect("graid consistent");
    p.consistency.as_ref().expect("rolo consistent");
    assert!(g.spin_cycles > 0 && p.spin_cycles > 0);
    // Normalise by work done (cycles vs rotations are both per-volume).
    let graid_spins_per_cycle = g.spin_cycles as f64 / g.policy.destage_cycles.max(1) as f64;
    let rolo_spins_per_rotation = p.spin_cycles as f64 / p.policy.rotations.max(1) as f64;
    assert!(
        graid_spins_per_cycle > 3.0 * rolo_spins_per_rotation,
        "GRAID {graid_spins_per_cycle} spins/cycle vs RoLo {rolo_spins_per_rotation} per rotation"
    );
}

#[test]
fn rolo_r_writes_three_copies() {
    let cfg_r = small_cfg(Scheme::RoloR, 4);
    let cfg_p = small_cfg(Scheme::RoloP, 4);
    let wl = write_workload(30.0);
    let r = run(&cfg_r, &wl, 120, 5);
    let p = run(&cfg_p, &wl, 120, 5);
    r.consistency.as_ref().expect("consistent");
    // RoLo-R logs each write twice: about 2× the appended bytes.
    let ratio = r.policy.log_appended_bytes as f64 / p.policy.log_appended_bytes as f64;
    assert!(
        (ratio - 2.0).abs() < 0.4,
        "RoLo-R/RoLo-P appended ratio {ratio}"
    );
    // And its mean response time is no better.
    assert!(r.mean_response_ms() >= p.mean_response_ms() * 0.95);
}

#[test]
fn rolo_e_cache_hit_rate_tracks_read_locality() {
    let mut cfg = small_cfg(Scheme::RoloE, 4);
    cfg.logger_region = 512 << 20; // rotations wipe the cache; keep them rare
    let wl = mixed_workload(20.0, 0.4, 0.9);
    let r = run(&cfg, &wl, 400, 6);
    r.consistency.as_ref().expect("consistent");
    let hit = r.policy.cache_hit_rate();
    assert!(
        hit > 0.6,
        "hot-set reads should mostly hit after warmup, hit rate {hit}"
    );
    assert!(r.policy.cache_misses > 0);
}

#[test]
fn rolo_e_spins_far_more_than_rolo_p_under_read_misses() {
    // Table I: RoLo-E's spin count dwarfs RoLo-P's when read misses force
    // spun-down primaries awake.
    let wl = mixed_workload(20.0, 0.9, 0.2); // many cold reads
    let e = run(&small_cfg(Scheme::RoloE, 4), &wl, 300, 7);
    let p = run(&small_cfg(Scheme::RoloP, 4), &wl, 300, 7);
    e.consistency.as_ref().expect("consistent");
    assert!(e.policy.read_miss_spinups > 0);
    assert!(
        e.spin_cycles > 3 * p.spin_cycles.max(1),
        "RoLo-E {} vs RoLo-P {}",
        e.spin_cycles,
        p.spin_cycles
    );
}

#[test]
fn energy_ordering_matches_fig10_on_bursty_writes() {
    // Bursty, write-dominated workload (the src2_2 shape).
    let wl = SyntheticConfig {
        burstiness: Burstiness::Bursty {
            on_fraction: 0.1,
            mean_on_secs: 20.0,
        },
        ..write_workload(20.0)
    };
    let secs = 600;
    let raid10 = run(&small_cfg(Scheme::Raid10, 4), &wl, secs, 8);
    let graid = run(&small_cfg(Scheme::Graid, 4), &wl, secs, 8);
    let rolo_p = run(&small_cfg(Scheme::RoloP, 4), &wl, secs, 8);
    let rolo_e = run(&small_cfg(Scheme::RoloE, 4), &wl, secs, 8);
    for r in [&raid10, &graid, &rolo_p, &rolo_e] {
        r.consistency.as_ref().expect("consistent");
    }
    assert!(
        rolo_e.total_energy_j < rolo_p.total_energy_j,
        "RoLo-E {} !< RoLo-P {}",
        rolo_e.total_energy_j,
        rolo_p.total_energy_j
    );
    assert!(
        rolo_p.total_energy_j < raid10.total_energy_j * 0.9,
        "RoLo-P {} should clearly beat RAID10 {}",
        rolo_p.total_energy_j,
        raid10.total_energy_j
    );
    assert!(
        graid.total_energy_j < raid10.total_energy_j,
        "GRAID {} !< RAID10 {}",
        graid.total_energy_j,
        raid10.total_energy_j
    );
}

#[test]
fn runs_are_deterministic() {
    let cfg = small_cfg(Scheme::RoloP, 3);
    let wl = write_workload(25.0);
    let a = run(&cfg, &wl, 90, 42);
    let b = run(&cfg, &wl, 90, 42);
    assert_eq!(a.total_energy_j, b.total_energy_j);
    assert_eq!(a.spin_cycles, b.spin_cycles);
    assert_eq!(a.user_requests, b.user_requests);
    assert_eq!(a.responses.mean(), b.responses.mean());
    let c = run(&cfg, &wl, 90, 43);
    assert_ne!(a.total_energy_j, c.total_energy_j);
}

#[test]
fn overload_deactivates_and_recovers() {
    // Writes arrive faster than destaging can reclaim: RoLo must
    // deactivate (§III-E) instead of wedging, and still drain clean.
    let mut cfg = small_cfg(Scheme::RoloP, 2);
    cfg.logger_region = 16 << 20;
    let wl = write_workload(400.0);
    let r = run(&cfg, &wl, 60, 9);
    r.consistency.as_ref().expect("consistent after overload");
    assert!(
        r.policy.deactivations > 0 || r.policy.rotations > 10,
        "heavy load should rotate hard or deactivate: {:?}",
        r.policy
    );
}

#[test]
fn graid_handles_read_mix() {
    let cfg = small_cfg(Scheme::Graid, 4);
    let wl = mixed_workload(30.0, 0.5, 0.5);
    let r = run(&cfg, &wl, 120, 10);
    r.consistency.as_ref().expect("consistent");
    assert!(r.read_responses.count() > 0);
    assert!(r.write_responses.count() > 0);
    // Reads are served by always-on primaries: no spin-up latency, so
    // the p99 read stays well under a spin-up.
    let p99 = r.read_responses.percentile(99.0).unwrap();
    assert!(p99.as_secs_f64() < 5.0, "read p99 {p99}");
}

#[test]
fn rolo_policy_direct_construction() {
    // The policy types are usable without the scheme dispatcher.
    let cfg = small_cfg(Scheme::RoloP, 2);
    let geo = cfg.geometry().unwrap();
    let policy = RoloPolicy::new(
        RoloFlavor::Performance,
        cfg.pairs,
        geo.logger_base(),
        geo.logger_region(),
        cfg.rotate_free_threshold,
        cfg.destage_chunk,
    );
    let dur = Duration::from_secs(30);
    let wl = write_workload(20.0);
    let r = driver::run_trace(&cfg, wl.generator(dur, 11), policy, dur);
    r.consistency.as_ref().expect("consistent");
    assert_eq!(r.scheme, "RoLo-P");
}

#[test]
fn rolo_p_multi_logger_window() {
    // §III-D: widening the on-duty window spreads append load; the run
    // stays consistent and keeps one extra mirror spinning.
    let mut cfg = small_cfg(Scheme::RoloP, 5);
    cfg.rolo_on_duty = 2;
    let r = run(&cfg, &write_workload(80.0), 180, 21);
    r.consistency.as_ref().expect("consistent");
    let single = {
        let mut c = small_cfg(Scheme::RoloP, 5);
        c.rolo_on_duty = 1;
        run(&c, &write_workload(80.0), 180, 21)
    };
    single.consistency.as_ref().expect("consistent");
    // Two on-duty mirrors idle more energy than one.
    assert!(
        r.total_energy_j > single.total_energy_j,
        "K=2 {} !> K=1 {}",
        r.total_energy_j,
        single.total_energy_j
    );
    assert!(r.user_requests == single.user_requests);
}

#[test]
fn paraid_shifts_gears_and_stays_consistent() {
    use rolo_core::ParaidPolicy;
    // Bursty load: quiet baseline with heavy ON phases that cross the
    // gear-up threshold.
    let cfg = small_cfg(Scheme::Raid10, 4);
    let geo = cfg.geometry().unwrap();
    let wl = SyntheticConfig {
        burstiness: Burstiness::Bursty {
            on_fraction: 0.25,
            mean_on_secs: 60.0,
        },
        ..write_workload(20.0)
    };
    let policy = ParaidPolicy::new(
        cfg.pairs,
        geo.logger_base(),
        geo.logger_region(),
        40.0, // gear up when the burst rate (~80 IOPS) arrives
        10.0,
        Duration::from_secs(30),
        cfg.destage_chunk,
    );
    let dur = Duration::from_secs(1200);
    let r = driver::run_trace(&cfg, wl.generator(dur, 77), policy, dur);
    r.consistency.as_ref().expect("consistent");
    assert!(
        r.policy.rotations >= 2,
        "expected gear shifts, got {}",
        r.policy.rotations
    );
    assert!(r.policy.log_appended_bytes > 0, "low gear must shadow-log");
    assert!(r.policy.destaged_bytes > 0, "gear-up must sync mirrors");
}

#[test]
fn paraid_spins_all_mirrors_per_shift_unlike_rolo() {
    use rolo_core::ParaidPolicy;
    let cfg = small_cfg(Scheme::RoloP, 4);
    let geo = cfg.geometry().unwrap();
    let wl = SyntheticConfig {
        burstiness: Burstiness::Bursty {
            on_fraction: 0.2,
            mean_on_secs: 45.0,
        },
        ..write_workload(25.0)
    };
    let dur = Duration::from_secs(1500);
    let paraid = driver::run_trace(
        &cfg,
        wl.generator(dur, 88),
        ParaidPolicy::new(
            cfg.pairs,
            geo.logger_base(),
            geo.logger_region(),
            50.0,
            8.0,
            Duration::from_secs(20),
            cfg.destage_chunk,
        ),
        dur,
    );
    let rolo = run(&cfg, &wl, 1500, 88);
    paraid.consistency.as_ref().expect("paraid consistent");
    rolo.consistency.as_ref().expect("rolo consistent");
    // The §VI contrast: when PARAID shifts at all, it spins the whole
    // mirror set; RoLo touches one logger per rotation.
    if paraid.policy.rotations > 0 {
        let per_shift = paraid.spin_cycles as f64 / paraid.policy.rotations as f64;
        let rolo_per_rotation = rolo.spin_cycles as f64 / rolo.policy.rotations.max(1) as f64;
        assert!(
            per_shift > rolo_per_rotation,
            "PARAID {per_shift}/shift !> RoLo {rolo_per_rotation}/rotation"
        );
    }
}

#[test]
fn rolo_e_multi_pair_window() {
    // §III-B3's "one or several mirrored disk pairs": a two-pair window
    // splits the append load across four disks and stays consistent.
    let mut cfg = small_cfg(Scheme::RoloE, 5);
    cfg.rolo_on_duty = 2;
    let wl = write_workload(60.0);
    let two = run(&cfg, &wl, 300, 33);
    two.consistency.as_ref().expect("consistent");
    let mut cfg1 = small_cfg(Scheme::RoloE, 5);
    cfg1.rolo_on_duty = 1;
    let one = run(&cfg1, &wl, 300, 33);
    one.consistency.as_ref().expect("consistent");
    assert_eq!(one.user_requests, two.user_requests);
    // Four spinning disks cost more than two.
    assert!(
        two.total_energy_j > one.total_energy_j,
        "K=2 {} !> K=1 {}",
        two.total_energy_j,
        one.total_energy_j
    );
}

#[test]
fn sstf_scheduling_consistent_and_not_slower() {
    // SSTF reorders the foreground queues; everything still drains
    // consistently and a deep-queue workload does not get slower.
    let wl = write_workload(120.0);
    let mut fifo_cfg = small_cfg(Scheme::RoloP, 4);
    fifo_cfg.logger_region = 256 << 20;
    let mut sstf_cfg = fifo_cfg.clone();
    sstf_cfg.scheduler = rolo_disk::SchedulerKind::Sstf;
    let fifo = run(&fifo_cfg, &wl, 240, 91);
    let sstf = run(&sstf_cfg, &wl, 240, 91);
    fifo.consistency.as_ref().expect("fifo consistent");
    sstf.consistency.as_ref().expect("sstf consistent");
    assert_eq!(fifo.user_requests, sstf.user_requests);
    assert!(
        sstf.mean_response_ms() <= fifo.mean_response_ms() * 1.05,
        "SSTF {} vs FIFO {}",
        sstf.mean_response_ms(),
        fifo.mean_response_ms()
    );
}
