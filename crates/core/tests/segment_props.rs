//! Property suite for the log-structured segment layer (DESIGN.md §10):
//! a pair of mirrored journals plus the controller manifest is driven
//! through random append / commit / abandon / clear / reclaim / compact
//! / archive / retire sequences while a reference dirty map tracks what
//! the controller would hold in NVRAM. After every operation the
//! segment-state invariants must hold and recovery-by-replay — from
//! both journals *and* from either single survivor — must reconstruct
//! the reference maps exactly.

use proptest::prelude::*;
use rolo_core::dirty::DirtyMap;
use rolo_core::segment::{replay_journals, LogManifest, SegmentStore};

const PAIRS: usize = 3;
const SEG_BYTES: u64 = 4096 + 256;
const BLOCK: u64 = 1024;
const ARCHIVE_TTL_US: u64 = 5_000;

/// The model: two journals receiving identical mirrored appends under
/// shared LSNs (the RoLo invariant), the controller manifest, and the
/// reference dirty maps mutated at each commit/clear instant.
struct Model {
    a: SegmentStore,
    b: SegmentStore,
    manifest: LogManifest,
    dirty: Vec<DirtyMap>,
    /// In-flight appends: `(rid_a, rid_b, pair, lba, len)`.
    pending: Vec<(u64, u64, usize, u64, u64)>,
    /// Mirrored rid pairs committed under a shared LSN, in commit order
    /// (the corruption property flips checksums of these).
    committed: Vec<(u64, u64)>,
    next_lsn: u64,
    now_us: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            a: SegmentStore::new(SEG_BYTES),
            b: SegmentStore::new(SEG_BYTES),
            manifest: LogManifest::new(),
            dirty: (0..PAIRS).map(|_| DirtyMap::new()).collect(),
            pending: Vec::new(),
            committed: Vec::new(),
            next_lsn: 0,
            now_us: 0,
        }
    }

    fn lsn(&mut self) -> u64 {
        self.next_lsn += 1;
        self.next_lsn
    }

    fn step(&mut self, op: u8, pair: usize, lba: u64, len: u64) {
        self.now_us += 1_000;
        match op {
            // Append one mirrored record (uncommitted: torn on a crash).
            0 | 1 => {
                let ra = self.a.append(pair, 0, lba, len).rid;
                let rb = self.b.append(pair, 0, lba, len).rid;
                self.pending.push((ra, rb, pair, lba, len));
            }
            // Ack the oldest in-flight request: commit both copies under
            // one shared LSN and mark the dirty map at the same instant.
            2 => {
                if self.pending.is_empty() {
                    return;
                }
                let (ra, rb, pair, lba, len) = self.pending.remove(0);
                let lsn = self.lsn();
                self.a.commit(ra, lsn);
                self.b.commit(rb, lsn);
                self.committed.push((ra, rb));
                self.dirty[pair].mark(lba, len);
            }
            // Lose the oldest in-flight request: permanently torn.
            3 => {
                if self.pending.is_empty() {
                    return;
                }
                let (ra, rb, _, _, _) = self.pending.remove(0);
                self.a.abandon(ra);
                self.b.abandon(rb);
            }
            // Dirty-map clear (destage extraction / direct overwrite):
            // manifest op plus live-extent removal on every journal.
            4 => {
                let lsn = self.lsn();
                self.manifest.clear(lsn, pair, lba, len);
                self.a.clear_extent(pair, lba, len);
                self.b.clear_extent(pair, lba, len);
                self.dirty[pair].clear_range(lba, len);
            }
            // Destage completion: only legal once the pair is clean.
            5 => {
                if !self.dirty[pair].is_clean() {
                    return;
                }
                let lsn = self.lsn();
                self.manifest.reclaim(lsn, pair);
                self.a.reclaim_pair(pair);
                self.b.reclaim_pair(pair);
            }
            // Compaction: relocate the live extents of one mostly-dead
            // sealed segment into the active segments of both journals.
            // Each piece re-commits under a fresh shared LSN; the source
            // extents are superseded by the commit itself, and the
            // dirty map is untouched (those bytes are already marked).
            6 => {
                let Some(&seg) = self.a.compaction_candidates(0.5).first() else {
                    return;
                };
                for (pair, lba, len) in self.a.live_extents_of(seg) {
                    for (off, piece) in self.a.live_intersection(seg, pair, lba, len) {
                        let lsn = self.lsn();
                        let ra = self.a.append(pair, 0, off, piece).rid;
                        self.a.commit(ra, lsn);
                        let rb = self.b.append(pair, 0, off, piece).rid;
                        self.b.commit(rb, lsn);
                        self.committed.push((ra, rb));
                        self.a.note_compacted(piece);
                        self.b.note_compacted(piece);
                    }
                }
            }
            // Archive sweep plus TTL retirement.
            _ => {
                for j in [&mut self.a, &mut self.b] {
                    for seg in j.archive_ready() {
                        j.archive(seg, self.now_us);
                    }
                    j.retire_expired(self.now_us, ARCHIVE_TTL_US);
                }
            }
        }
    }

    /// Replays the given survivors and compares every pair's map to the
    /// reference. Mirrored commits share LSNs, so even a single
    /// survivor covers every pair.
    fn assert_replay(&self, survivors: &[&SegmentStore]) -> Result<(), TestCaseError> {
        let outcome = replay_journals(survivors.iter().copied(), &self.manifest, PAIRS);
        for (pair, map) in outcome.maps.iter().enumerate() {
            prop_assert_eq!(
                map,
                &self.dirty[pair],
                "pair {} diverged (survivors: {})",
                pair,
                survivors.len()
            );
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants hold and replay reconstructs the reference dirty maps
    /// after every single operation, for the full journal set and for
    /// either single survivor (one logger death).
    #[test]
    fn prop_lifecycle_invariants_and_replay(
        ops in proptest::collection::vec(
            (0u8..8, 0usize..PAIRS, 0u64..24, 1u64..6),
            1..120,
        )
    ) {
        let mut m = Model::new();
        for (op, pair, block, blocks) in ops {
            m.step(op, pair, block * BLOCK, blocks * BLOCK);
            prop_assert!(m.a.check_invariants().is_ok(), "{:?}", m.a.check_invariants());
            prop_assert!(m.b.check_invariants().is_ok(), "{:?}", m.b.check_invariants());
            m.assert_replay(&[&m.a, &m.b])?;
            m.assert_replay(&[&m.a])?;
            m.assert_replay(&[&m.b])?;
        }
        // Every in-flight record left at the end scans as torn.
        let torn = replay_journals([&m.a], &m.manifest, PAIRS).torn_records;
        let pending_in_a = m.pending.len() as u64;
        prop_assert!(torn >= pending_in_a);
    }

    /// End-to-end checksum round trip: flipping checksums of committed
    /// records in sealed or active segments is always *detected* (never
    /// silently replayed as clean data), every corrupt copy is
    /// classified exactly once as repaired-or-lost, and as long as each
    /// record keeps one clean mirrored copy, replay from both journals
    /// still reconstructs the reference maps exactly.
    #[test]
    fn prop_corrupt_records_detected_and_classified(
        ops in proptest::collection::vec(
            (0u8..8, 0usize..PAIRS, 0u64..24, 1u64..6),
            1..80,
        ),
        flips in proptest::collection::vec(0u8..4, 64..65),
    ) {
        let mut m = Model::new();
        for (op, pair, block, blocks) in ops {
            m.step(op, pair, block * BLOCK, blocks * BLOCK);
        }
        let mut flipped = 0u64;
        let mut both_sided = false;
        let committed = m.committed.clone();
        for (i, &(ra, rb)) in committed.iter().enumerate() {
            // 0 = clean, 1 = corrupt journal a, 2 = journal b, 3 = both.
            match flips.get(i).copied().unwrap_or(0) {
                1 => flipped += u64::from(m.a.corrupt_record(ra)),
                2 => flipped += u64::from(m.b.corrupt_record(rb)),
                3 => {
                    let fa = m.a.corrupt_record(ra);
                    let fb = m.b.corrupt_record(rb);
                    flipped += u64::from(fa) + u64::from(fb);
                    both_sided |= fa && fb;
                }
                _ => {}
            }
        }
        let out = replay_journals([&m.a, &m.b], &m.manifest, PAIRS);
        // Detection is exhaustive: every flipped copy scans as corrupt
        // (never as clean or torn), and every corrupt copy is classified.
        prop_assert_eq!(out.corrupt_records, flipped);
        prop_assert_eq!(out.corrupt_records, out.corrupt_repaired + out.corrupt_lost);
        if !both_sided {
            // One clean mirrored copy per record: nothing may be lost
            // and the reconstruction must stay exact.
            prop_assert_eq!(out.corrupt_lost, 0);
            m.assert_replay(&[&m.a, &m.b])?;
        }
    }

    /// Archival never drops replay coverage: archiving every eligible
    /// segment after each step and retiring every frame immediately
    /// still leaves single-survivor replay exact.
    #[test]
    fn prop_aggressive_archival_preserves_replay(
        ops in proptest::collection::vec(
            (0u8..6, 0usize..PAIRS, 0u64..24, 1u64..6),
            1..80,
        )
    ) {
        let mut m = Model::new();
        for (op, pair, block, blocks) in ops {
            m.step(op, pair, block * BLOCK, blocks * BLOCK);
            // Immediately archive and retire everything eligible.
            m.step(7, 0, 0, BLOCK);
            for j in [&mut m.a, &mut m.b] {
                j.retire_expired(u64::MAX, 0);
            }
            m.assert_replay(&[&m.a, &m.b])?;
            m.assert_replay(&[&m.b])?;
        }
    }
}
