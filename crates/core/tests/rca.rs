//! Tail-forensics acceptance tests (DESIGN.md §14): with RCA on, the
//! RoLo-E × hm_1 breach must be automatically attributed to spin-up
//! stalls with an exactly-conserved blame table, while RoLo-P on the
//! identical workload yields an empty report — and turning forensics
//! on must never change the simulation itself.

use rolo_core::{run_scheme_observed, Scheme, SimConfig};
use rolo_obs::{NullSink, SloSignal};
use rolo_sim::Duration;
use rolo_trace::profiles;

const SEED: u64 = 0x7e1e;

fn hm1_records(dur: Duration) -> Vec<rolo_trace::TraceRecord> {
    profiles::hm_1().generator(dur, 42).collect()
}

fn run_forensic(
    scheme: Scheme,
    dur: Duration,
) -> (rolo_core::SimReport, rolo_core::RunObservations) {
    let mut cfg = SimConfig::paper_default(scheme, 10);
    cfg.seed = SEED;
    cfg.rca_enabled = true;
    run_scheme_observed(&cfg, hm1_records(dur), dur, Box::new(NullSink), false)
}

/// The tentpole acceptance: RoLo-E's online p95 breach is traced to
/// SpinUpStall with the spin-up origin event, the blame table
/// partitions the attributed tail time exactly, and the culprit names
/// real disks.
#[test]
fn roloe_breach_is_attributed_to_spinup() {
    let dur = Duration::from_secs(3 * 3600);
    let (_, obs) = run_forensic(Scheme::RoloE, dur);
    let rca = obs.rca.expect("rca_enabled populates the report");
    rca.check().expect("conservation holds for every window");
    assert!(rca.breaches > 0, "RoLo-E on hm_1 must breach");

    let first = rca.first_breach().expect("a breach window exists");
    assert_eq!(first.signal, SloSignal::Breach);
    assert_eq!(first.slo, "latency_p95");
    assert_eq!(
        first.dominant_phase,
        Some("SpinUpStall"),
        "the hm_1 tail is spin-up stalls, got {:?}",
        first.dominant_phase
    );
    // The dominant blame row leads the table and carries (by far) the
    // largest share: a 10.9 s stall against ms-scale media phases.
    let lead = first.blame.first().expect("non-empty blame table");
    assert_eq!(lead.phase, "SpinUpStall");
    assert!(
        lead.share > 0.9,
        "spin-up share {} should dominate",
        lead.share
    );

    let culprit = first
        .culprit
        .as_ref()
        .expect("dominant phase names a culprit");
    assert_eq!(culprit.activity, "spin-up");
    assert_eq!(culprit.origin_event, "ReadMissSpinUp");
    assert!(
        culprit.bg_kind.is_none(),
        "spin-up is self-inflicted, not a background activity"
    );
    assert!(!culprit.disks.is_empty(), "stalled legs name their disks");
    assert!(
        !culprit.power_states.is_empty(),
        "implicated disks carry power-state stamps"
    );

    // Exemplars rode along out-of-band.
    let exemplars = obs.exemplars.expect("rca implies exemplar capture");
    assert!(exemplars.total() > 0);
    assert!(exemplars
        .windows
        .iter()
        .all(|w| w.spans.len() <= exemplars.per_window));
}

/// A clean run produces an empty report: no alerts, no windows, no
/// blame — and `is_clean` says so.
#[test]
fn rolop_run_yields_an_empty_report() {
    let dur = Duration::from_secs(3 * 3600);
    let (_, obs) = run_forensic(Scheme::RoloP, dur);
    let rca = obs.rca.expect("rca_enabled populates the report");
    assert!(rca.is_clean(), "RoLo-P must not alert, got {rca:?}");
    assert_eq!(rca.warnings, 0);
    assert_eq!(rca.breaches, 0);
    assert!(rca.first_breach().is_none());
    rca.check()
        .expect("the empty report is trivially conserved");
}

/// Every alert the run raised gets exactly one attribution entry, in
/// emission order, each tied to the alert's window and values.
#[test]
fn every_alert_window_is_attributed() {
    let dur = Duration::from_secs(2 * 3600);
    let (_, obs) = run_forensic(Scheme::RoloE, dur);
    let rca = obs.rca.expect("rca on");
    assert_eq!(
        rca.windows.len(),
        obs.slo_alerts.len(),
        "one attribution per alert"
    );
    for (w, a) in rca.windows.iter().zip(&obs.slo_alerts) {
        assert_eq!(w.window, a.window);
        assert_eq!(w.slo, a.slo);
        assert_eq!(w.signal, a.signal);
        assert_eq!(w.observed, a.observed);
        assert_eq!(w.target, a.target);
    }
}
