//! Online telemetry acceptance tests (DESIGN.md §12): the SLO monitor
//! must flag RoLo-E's spin-up latency tail *during* the run while
//! RoLo-P on the same trace stays clean, and the telemetry snapshot
//! must carry coherent windowed rollups.

use rolo_core::{run_scheme_observed, Scheme, SimConfig};
use rolo_obs::{RingSink, RollupValue, SimEvent, SloSignal};
use rolo_sim::Duration;
use rolo_trace::profiles;

const SEED: u64 = 0x7e1e;

fn hm1_records(dur: Duration) -> Vec<rolo_trace::TraceRecord> {
    profiles::hm_1().generator(dur, 42).collect()
}

fn run(scheme: Scheme, dur: Duration) -> (rolo_core::SimReport, rolo_core::RunObservations) {
    let mut cfg = SimConfig::paper_default(scheme, 10);
    cfg.seed = SEED;
    run_scheme_observed(
        &cfg,
        hm1_records(dur),
        dur,
        Box::new(RingSink::new(1 << 16)),
        false,
    )
}

/// The paper's headline trade-off, caught online: RoLo-E serves hm_1
/// behind 10.9 s spin-up stalls, so its p95 SLO must breach *before*
/// the trace ends; RoLo-P keeps every disk's primary spun up and must
/// raise no alert at all on the identical workload.
#[test]
fn roloe_spinup_tail_breaches_online_while_rolop_stays_clean() {
    let dur = Duration::from_secs(3 * 3600);
    let (_, obs_e) = run(Scheme::RoloE, dur);
    let breach = obs_e
        .slo_alerts
        .iter()
        .find(|a| a.signal == SloSignal::Breach && a.slo == "latency_p95")
        .expect("RoLo-E on hm_1 must breach the latency SLO");
    // "Online" means the alert fired at a window that closed strictly
    // inside the simulated trace, not in a post-run sweep.
    let window_us = 60_000_000u64;
    assert!(
        (breach.window + 1) * window_us < dur.as_micros(),
        "breach at window {} should precede end of trace",
        breach.window
    );
    assert!(
        breach.observed > breach.target,
        "breach carries the violating observation"
    );

    let (_, obs_p) = run(Scheme::RoloP, dur);
    assert!(
        obs_p.slo_alerts.is_empty(),
        "RoLo-P on the same trace must stay clean, got {:?}",
        obs_p.slo_alerts
    );
}

/// Within one window a breach always follows a warning for the same
/// SLO — both in the alert list and in the emitted event stream.
#[test]
fn warning_precedes_breach_in_alerts_and_event_stream() {
    let dur = Duration::from_secs(2 * 3600);
    let (_, mut obs) = run(Scheme::RoloE, dur);
    for (i, a) in obs.slo_alerts.iter().enumerate() {
        if a.signal == SloSignal::Breach {
            let warned = obs.slo_alerts[..i]
                .iter()
                .any(|w| w.signal == SloSignal::Warning && w.slo == a.slo && w.window == a.window);
            assert!(
                warned,
                "breach of {} at window {} unwarned",
                a.slo, a.window
            );
        }
    }
    assert!(
        obs.slo_alerts.iter().any(|a| a.signal == SloSignal::Breach),
        "RoLo-E run should reach a breach"
    );

    let events = obs.sink.drain();
    let mut seen_warn: Vec<(String, u64)> = Vec::new();
    let mut saw_breach_event = false;
    for t in &events {
        match &t.event {
            SimEvent::SloBurnWarning { slo, window, .. } => {
                seen_warn.push((slo.clone(), *window));
            }
            SimEvent::SloBreach { slo, window, .. } => {
                saw_breach_event = true;
                assert!(
                    seen_warn.contains(&(slo.clone(), *window)),
                    "SloBreach({slo}, w{window}) emitted before its warning"
                );
            }
            _ => {}
        }
    }
    assert!(saw_breach_event, "breach must reach the trace sink");
}

/// The exported snapshot's windows are coherent: window indices are
/// contiguous, the completion counter's deltas sum to the report's
/// request count (retention permitting), and the response quantile
/// series carries non-empty digests for active windows.
#[test]
fn telemetry_snapshot_rolls_up_the_run() {
    let dur = Duration::from_secs(1800);
    let (report, obs) = run(Scheme::RoloP, dur);
    let snap = obs.telemetry.expect("telemetry on by default");
    assert_eq!(snap.window_us, 60_000_000);
    let completions = snap.get("sim.user_completions").expect("series exists");
    assert!(!completions.windows.is_empty());
    let mut prev = None;
    let mut total = 0.0;
    for w in &completions.windows {
        if let Some(p) = prev {
            assert_eq!(w.window, p + 1, "window indices are contiguous");
        }
        prev = Some(w.window);
        match &w.value {
            RollupValue::Counter { delta } => total += delta,
            v => panic!("completions is a counter, got {v:?}"),
        }
    }
    // Retention kept every window of this short run, so the deltas
    // must account for every request completed before the last close.
    assert!(total > 0.0 && total <= report.user_requests as f64);
    let resp = snap.get("sim.response_us").expect("series exists");
    let active = resp.windows.iter().any(|w| match &w.value {
        RollupValue::Quantile(d) => d.count > 0 && d.p95.is_some(),
        _ => false,
    });
    assert!(active, "at least one window saw responses");
    let power = snap.get("sim.power_w").expect("series exists");
    let powered = power.windows.iter().any(|w| match &w.value {
        RollupValue::Gauge { mean, .. } => *mean > 0.0,
        _ => false,
    });
    assert!(powered, "power gauge sampled");
    // Per-disk series registered for every slot.
    assert!(snap.get("disk.00.state_transitions").is_some());
}
