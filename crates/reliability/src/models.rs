//! Explicit CTMC state diagrams for each scheme's four-disk model.
//!
//! The paper presents its state-transition diagrams in Figures 6–8 and
//! the resulting closed forms in Eqs. (1)–(5). The RoLo-E diagram (Fig. 8)
//! is fully specified in the text and reproduced here exactly. For the
//! other schemes we reconstruct the diagrams from the failure semantics
//! described in §III-C/§IV, under one documented modelling convention:
//!
//! > **Standby-mirror convention.** The failure of an *off-duty standby*
//! > mirror is treated as benign (a degraded state with repair but no
//! > direct loss transition): while both its primary and the current log
//! > copies survive, the disk can be rebuilt without a data-loss window.
//!
//! With this convention every reconstruction agrees with the paper's
//! closed form in the dominant `µ/λ²` term (verified by tests to < 2 %
//! in the paper's parameter regime λ = 10⁻⁵/h, MTTR 1–7 days), and the
//! RoLo-E chain agrees exactly.
//!
//! All models take per-hour rates and return chains whose
//! [`absorption_time`](crate::MarkovChain::absorption_time) from state 0
//! is the MTTDL in hours.

use crate::ctmc::{CtmcError, MarkovChain};

const LOSS: usize = MarkovChain::ABSORBING;

/// RAID10 with two mirrored pairs (four disks), all active.
///
/// States: 0 = healthy; 1 = one disk failed (its partner is critical);
/// 2 = two disks failed in *different* pairs (both partners critical).
pub fn raid10_4(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(3);
    c.add(0, 1, 4.0 * lambda)?; // any of 4 disks
    c.add(1, LOSS, lambda)?; // the failed disk's partner
    c.add(1, 2, 2.0 * lambda)?; // a disk of the other pair
    c.add(1, 0, mu)?;
    c.add(2, LOSS, 2.0 * lambda)?; // either surviving partner
    c.add(2, 1, mu)?;
    Ok(c)
}

/// GRAID with two mirrored pairs plus the dedicated log disk (five
/// disks). Mirrors are standby; their failures are benign per the
/// standby-mirror convention.
///
/// States: 0 = healthy; 1 = a primary failed (its standby mirror is stale,
/// so recovery needs the mirror *and* the log disk — two critical disks);
/// 2 = the log disk failed (each primary is then the sole holder of its
/// pair's recent writes — two critical disks); 3 = a standby mirror
/// failed (benign).
pub fn graid_5(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(4);
    c.add(0, 1, 2.0 * lambda)?; // either primary
    c.add(0, 2, lambda)?; // the log disk
    c.add(0, 3, 2.0 * lambda)?; // either standby mirror
    c.add(1, LOSS, 2.0 * lambda)?; // its mirror or the log disk
    c.add(1, 0, mu)?;
    c.add(2, LOSS, 2.0 * lambda)?; // either primary
    c.add(2, 0, mu)?;
    c.add(3, 0, mu)?; // benign
    Ok(c)
}

/// RoLo-P with two pairs: `M0` is the on-duty logger, `M1` a standby
/// mirror (benign per the convention).
///
/// States: 0 = healthy; 1 = `P0` failed (fully recoverable from `M0`'s
/// stale image + log; `M0` critical); 2 = `P1` failed (recovery needs
/// `M1`'s stale image *and* the log on `M0` — two critical disks);
/// 3 = logger `M0` failed (both primaries become sole holders of their
/// recent writes — two critical disks); 4 = `M1` failed (benign).
pub fn rolo_p_4(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(5);
    c.add(0, 1, lambda)?; // F(P0)
    c.add(0, 2, lambda)?; // F(P1)
    c.add(0, 3, lambda)?; // F(M0) — on-duty logger
    c.add(0, 4, lambda)?; // F(M1) — standby mirror
    c.add(1, LOSS, lambda)?; // F(M0)
    c.add(1, 0, mu)?;
    c.add(2, LOSS, 2.0 * lambda)?; // F(M0) or F(M1)
    c.add(2, 0, mu)?;
    c.add(3, LOSS, 2.0 * lambda)?; // F(P0) or F(P1)
    c.add(3, 0, mu)?;
    c.add(4, 0, mu)?; // benign
    Ok(c)
}

/// RoLo-R with two pairs: the pair `(P0, M0)` serves as the on-duty
/// logger, so each write has three copies (target primary + both logger
/// disks). `M1` is a standby mirror (benign).
///
/// States: 0 = healthy; 1 = `P1` failed (old pair-1 data only on `M1` —
/// one critical disk, since recent writes still have two log copies);
/// 2 = `P0` failed (its image is on `M0` — one critical disk); 3 = `M0`
/// failed (symmetric to 2 — `P0` critical); 4 = `M1` failed (benign).
pub fn rolo_r_4(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(5);
    c.add(0, 1, lambda)?; // F(P1)
    c.add(0, 2, lambda)?; // F(P0)
    c.add(0, 3, lambda)?; // F(M0)
    c.add(0, 4, lambda)?; // F(M1)
    c.add(1, LOSS, lambda)?; // F(M1)
    c.add(1, 0, mu)?;
    c.add(2, LOSS, lambda)?; // F(M0)
    c.add(2, 0, mu)?;
    c.add(3, LOSS, lambda)?; // F(P0)
    c.add(3, 0, mu)?;
    c.add(4, 0, mu)?; // benign
    Ok(c)
}

/// RoLo-E, exactly as in Fig. 8: only the logger pair `(P0, M0)` is
/// active; the other pair is spun down and, per the paper's diagram, not
/// part of the failure model.
///
/// States: 0 = healthy (`F(P0, M0)` at 2λ → 1); 1 = one logger disk
/// failed (the survivor is critical: λ → loss; repair µ → 0).
/// Solving this chain gives Eq. (5) `(3λ+µ)/2λ²` exactly.
pub fn rolo_e_4(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(2);
    c.add(0, 1, 2.0 * lambda)?;
    c.add(1, LOSS, lambda)?;
    c.add(1, 0, mu)?;
    Ok(c)
}

/// Appends a latent-sector-error state to `base`, making the chain
/// scrub-aware (DESIGN.md §11):
///
/// * `healthy → latent` at `exposed_disks · lse` — a silent corrupt
///   extent develops on one of the disks exposed to LSEs;
/// * `latent → healthy` at `scrub` — a scrub pass verifies the extent
///   and repairs it from its mirror copy before anything else happens
///   (omitted when `scrub` is zero: the scrub-off model);
/// * `latent → loss` at `lambda` — the disk holding the extent's only
///   clean copy fails first: the classic LSE-plus-disk-failure double
///   fault, an extent-level data loss.
///
/// The convention mirrors the simulator's accounting: a latent extent is
/// harmless until its partner disk dies, and a scrub pass races that
/// failure. With `lse = 0` the base chain is returned unchanged.
///
/// # Errors
///
/// Propagates [`CtmcError::BadRate`] for non-finite or negative rates.
pub fn with_latent_errors(
    base: MarkovChain,
    exposed_disks: f64,
    lambda: f64,
    lse: f64,
    scrub: f64,
) -> Result<MarkovChain, CtmcError> {
    if lse <= 0.0 {
        return Ok(base);
    }
    let latent = base.states();
    let mut c = MarkovChain::new(latent + 1);
    for &(from, to, rate) in base.transitions() {
        c.add(from, to, rate)?;
    }
    c.add(0, latent, exposed_disks * lse)?;
    c.add(latent, LOSS, lambda)?;
    if scrub > 0.0 {
        c.add(latent, 0, scrub)?;
    }
    Ok(c)
}

/// [`rolo_p_4`] extended with a latent-error state: all four disks spin
/// (or log) regularly, so all four are exposed to LSEs.
pub fn rolo_p_4_lse(lambda: f64, mu: f64, lse: f64, scrub: f64) -> Result<MarkovChain, CtmcError> {
    with_latent_errors(rolo_p_4(lambda, mu)?, 4.0, lambda, lse, scrub)
}

/// [`rolo_r_4`] extended with a latent-error state (four exposed disks).
pub fn rolo_r_4_lse(lambda: f64, mu: f64, lse: f64, scrub: f64) -> Result<MarkovChain, CtmcError> {
    with_latent_errors(rolo_r_4(lambda, mu)?, 4.0, lambda, lse, scrub)
}

/// [`rolo_e_4`] extended with a latent-error state. Fig. 8 models only
/// the active logger pair, so two disks are exposed — and because the
/// scrub engine is power-aware (it never wakes the spun-down pair), the
/// scrub rate passed here is exactly the rate the active pair enjoys.
pub fn rolo_e_4_lse(lambda: f64, mu: f64, lse: f64, scrub: f64) -> Result<MarkovChain, CtmcError> {
    with_latent_errors(rolo_e_4(lambda, mu)?, 2.0, lambda, lse, scrub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form;

    const L: f64 = closed_form::PAPER_LAMBDA_PER_HOUR;

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / b
    }

    #[test]
    fn rolo_e_matches_eq5_exactly() {
        for days in [1.0, 3.0, 7.0] {
            let mu = closed_form::mttr_days_to_mu(days);
            let model = rolo_e_4(L, mu).unwrap().absorption_time(0).unwrap();
            let eq = closed_form::rolo_e_4(L, mu);
            assert!(rel_err(model, eq) < 1e-9, "days {days}: {model} vs {eq}");
        }
    }

    #[test]
    fn reconstructions_match_closed_forms_in_dominant_term() {
        for days in [1.0, 4.0, 7.0] {
            let mu = closed_form::mttr_days_to_mu(days);
            let cases: [(f64, f64, &str); 4] = [
                (
                    raid10_4(L, mu).unwrap().absorption_time(0).unwrap(),
                    closed_form::raid10_4(L, mu),
                    "raid10",
                ),
                (
                    graid_5(L, mu).unwrap().absorption_time(0).unwrap(),
                    closed_form::graid_5(L, mu),
                    "graid",
                ),
                (
                    rolo_p_4(L, mu).unwrap().absorption_time(0).unwrap(),
                    closed_form::rolo_p_4(L, mu),
                    "rolo-p",
                ),
                (
                    rolo_r_4(L, mu).unwrap().absorption_time(0).unwrap(),
                    closed_form::rolo_r_4(L, mu),
                    "rolo-r",
                ),
            ];
            for (model, eq, name) in cases {
                assert!(
                    rel_err(model, eq) < 0.02,
                    "{name} at MTTR {days}d: model {model:.3e} vs closed form {eq:.3e}"
                );
            }
        }
    }

    #[test]
    fn model_ordering_matches_fig9() {
        let mu = closed_form::mttr_days_to_mu(3.0);
        let rr = rolo_r_4(L, mu).unwrap().absorption_time(0).unwrap();
        let r10 = raid10_4(L, mu).unwrap().absorption_time(0).unwrap();
        let rp = rolo_p_4(L, mu).unwrap().absorption_time(0).unwrap();
        let g = graid_5(L, mu).unwrap().absorption_time(0).unwrap();
        assert!(rr > r10 && r10 > rp && rp > g, "{rr} {r10} {rp} {g}");
    }

    #[test]
    fn latent_errors_shorten_mttdl_and_scrub_recovers_it() {
        let mu = closed_form::mttr_days_to_mu(3.0);
        let lse = 1e-4; // per disk-hour, deliberately aggressive
        let scrub = 1.0 / 12.0; // a full pass every 12 hours
        type Flavor = fn(f64, f64, f64, f64) -> Result<MarkovChain, CtmcError>;
        type Base = fn(f64, f64) -> Result<MarkovChain, CtmcError>;
        let flavors: [(Flavor, Base, &str); 3] = [
            (rolo_p_4_lse, rolo_p_4, "rolo-p"),
            (rolo_r_4_lse, rolo_r_4, "rolo-r"),
            (rolo_e_4_lse, rolo_e_4, "rolo-e"),
        ];
        for (with_lse, base, name) in flavors {
            let clean = base(L, mu).unwrap().absorption_time(0).unwrap();
            let off = with_lse(L, mu, lse, 0.0)
                .unwrap()
                .absorption_time(0)
                .unwrap();
            let on = with_lse(L, mu, lse, scrub)
                .unwrap()
                .absorption_time(0)
                .unwrap();
            assert!(off < clean, "{name}: latent errors must cost MTTDL");
            assert!(
                on >= off,
                "{name}: scrubbing must never hurt ({on:.3e} < {off:.3e})"
            );
            assert!(
                on > 2.0 * off,
                "{name}: a 12h scrub pass should dominate the LSE danger window"
            );
            assert!(on < clean, "{name}: scrubbing cannot beat a clean array");
        }
    }

    #[test]
    fn scrub_ordering_cross_validated_by_monte_carlo() {
        use crate::monte_carlo::absorption_time_mc;
        // Rates scaled up so trajectories absorb quickly; the *ordering*
        // (scrub-on ≥ scrub-off) is what the simulator's scrub_study
        // relies on, so it must hold under both solvers.
        let (l, m, lse, scrub) = (1e-3, 0.05, 1e-2, 0.5);
        type Flavor = fn(f64, f64, f64, f64) -> Result<MarkovChain, CtmcError>;
        let flavors: [(Flavor, &str); 3] = [
            (rolo_p_4_lse, "rolo-p"),
            (rolo_r_4_lse, "rolo-r"),
            (rolo_e_4_lse, "rolo-e"),
        ];
        for (with_lse, name) in flavors {
            let off = with_lse(l, m, lse, 0.0).unwrap();
            let on = with_lse(l, m, lse, scrub).unwrap();
            let exact_off = off.absorption_time(0).unwrap();
            let exact_on = on.absorption_time(0).unwrap();
            assert!(exact_on > exact_off, "{name}: exact ordering");
            let mc_off = absorption_time_mc(&off, 0, 4_000, 11).unwrap();
            let mc_on = absorption_time_mc(&on, 0, 4_000, 13).unwrap();
            assert!(
                mc_on.mean > mc_off.mean,
                "{name}: MC ordering ({} vs {})",
                mc_on.mean,
                mc_off.mean
            );
            // And each estimate brackets its exact value.
            let (lo, hi) = mc_off.confidence_95();
            assert!(
                lo * 0.9 < exact_off && exact_off < hi * 1.1,
                "{name}: MC off {lo:.3e}..{hi:.3e} vs exact {exact_off:.3e}"
            );
        }
    }

    #[test]
    fn zero_lse_rate_leaves_base_chain_untouched() {
        let mu = closed_form::mttr_days_to_mu(3.0);
        let base = rolo_p_4(L, mu).unwrap().absorption_time(0).unwrap();
        let gated = rolo_p_4_lse(L, mu, 0.0, 1.0)
            .unwrap()
            .absorption_time(0)
            .unwrap();
        assert_eq!(base, gated);
    }

    #[test]
    fn mttdl_monotone_in_repair_rate() {
        let fast = rolo_p_4(L, closed_form::mttr_days_to_mu(1.0))
            .unwrap()
            .absorption_time(0)
            .unwrap();
        let slow = rolo_p_4(L, closed_form::mttr_days_to_mu(7.0))
            .unwrap()
            .absorption_time(0)
            .unwrap();
        assert!(fast > slow);
    }
}
