//! Explicit CTMC state diagrams for each scheme's four-disk model.
//!
//! The paper presents its state-transition diagrams in Figures 6–8 and
//! the resulting closed forms in Eqs. (1)–(5). The RoLo-E diagram (Fig. 8)
//! is fully specified in the text and reproduced here exactly. For the
//! other schemes we reconstruct the diagrams from the failure semantics
//! described in §III-C/§IV, under one documented modelling convention:
//!
//! > **Standby-mirror convention.** The failure of an *off-duty standby*
//! > mirror is treated as benign (a degraded state with repair but no
//! > direct loss transition): while both its primary and the current log
//! > copies survive, the disk can be rebuilt without a data-loss window.
//!
//! With this convention every reconstruction agrees with the paper's
//! closed form in the dominant `µ/λ²` term (verified by tests to < 2 %
//! in the paper's parameter regime λ = 10⁻⁵/h, MTTR 1–7 days), and the
//! RoLo-E chain agrees exactly.
//!
//! All models take per-hour rates and return chains whose
//! [`absorption_time`](crate::MarkovChain::absorption_time) from state 0
//! is the MTTDL in hours.

use crate::ctmc::{CtmcError, MarkovChain};

const LOSS: usize = MarkovChain::ABSORBING;

/// RAID10 with two mirrored pairs (four disks), all active.
///
/// States: 0 = healthy; 1 = one disk failed (its partner is critical);
/// 2 = two disks failed in *different* pairs (both partners critical).
pub fn raid10_4(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(3);
    c.add(0, 1, 4.0 * lambda)?; // any of 4 disks
    c.add(1, LOSS, lambda)?; // the failed disk's partner
    c.add(1, 2, 2.0 * lambda)?; // a disk of the other pair
    c.add(1, 0, mu)?;
    c.add(2, LOSS, 2.0 * lambda)?; // either surviving partner
    c.add(2, 1, mu)?;
    Ok(c)
}

/// GRAID with two mirrored pairs plus the dedicated log disk (five
/// disks). Mirrors are standby; their failures are benign per the
/// standby-mirror convention.
///
/// States: 0 = healthy; 1 = a primary failed (its standby mirror is stale,
/// so recovery needs the mirror *and* the log disk — two critical disks);
/// 2 = the log disk failed (each primary is then the sole holder of its
/// pair's recent writes — two critical disks); 3 = a standby mirror
/// failed (benign).
pub fn graid_5(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(4);
    c.add(0, 1, 2.0 * lambda)?; // either primary
    c.add(0, 2, lambda)?; // the log disk
    c.add(0, 3, 2.0 * lambda)?; // either standby mirror
    c.add(1, LOSS, 2.0 * lambda)?; // its mirror or the log disk
    c.add(1, 0, mu)?;
    c.add(2, LOSS, 2.0 * lambda)?; // either primary
    c.add(2, 0, mu)?;
    c.add(3, 0, mu)?; // benign
    Ok(c)
}

/// RoLo-P with two pairs: `M0` is the on-duty logger, `M1` a standby
/// mirror (benign per the convention).
///
/// States: 0 = healthy; 1 = `P0` failed (fully recoverable from `M0`'s
/// stale image + log; `M0` critical); 2 = `P1` failed (recovery needs
/// `M1`'s stale image *and* the log on `M0` — two critical disks);
/// 3 = logger `M0` failed (both primaries become sole holders of their
/// recent writes — two critical disks); 4 = `M1` failed (benign).
pub fn rolo_p_4(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(5);
    c.add(0, 1, lambda)?; // F(P0)
    c.add(0, 2, lambda)?; // F(P1)
    c.add(0, 3, lambda)?; // F(M0) — on-duty logger
    c.add(0, 4, lambda)?; // F(M1) — standby mirror
    c.add(1, LOSS, lambda)?; // F(M0)
    c.add(1, 0, mu)?;
    c.add(2, LOSS, 2.0 * lambda)?; // F(M0) or F(M1)
    c.add(2, 0, mu)?;
    c.add(3, LOSS, 2.0 * lambda)?; // F(P0) or F(P1)
    c.add(3, 0, mu)?;
    c.add(4, 0, mu)?; // benign
    Ok(c)
}

/// RoLo-R with two pairs: the pair `(P0, M0)` serves as the on-duty
/// logger, so each write has three copies (target primary + both logger
/// disks). `M1` is a standby mirror (benign).
///
/// States: 0 = healthy; 1 = `P1` failed (old pair-1 data only on `M1` —
/// one critical disk, since recent writes still have two log copies);
/// 2 = `P0` failed (its image is on `M0` — one critical disk); 3 = `M0`
/// failed (symmetric to 2 — `P0` critical); 4 = `M1` failed (benign).
pub fn rolo_r_4(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(5);
    c.add(0, 1, lambda)?; // F(P1)
    c.add(0, 2, lambda)?; // F(P0)
    c.add(0, 3, lambda)?; // F(M0)
    c.add(0, 4, lambda)?; // F(M1)
    c.add(1, LOSS, lambda)?; // F(M1)
    c.add(1, 0, mu)?;
    c.add(2, LOSS, lambda)?; // F(M0)
    c.add(2, 0, mu)?;
    c.add(3, LOSS, lambda)?; // F(P0)
    c.add(3, 0, mu)?;
    c.add(4, 0, mu)?; // benign
    Ok(c)
}

/// RoLo-E, exactly as in Fig. 8: only the logger pair `(P0, M0)` is
/// active; the other pair is spun down and, per the paper's diagram, not
/// part of the failure model.
///
/// States: 0 = healthy (`F(P0, M0)` at 2λ → 1); 1 = one logger disk
/// failed (the survivor is critical: λ → loss; repair µ → 0).
/// Solving this chain gives Eq. (5) `(3λ+µ)/2λ²` exactly.
pub fn rolo_e_4(lambda: f64, mu: f64) -> Result<MarkovChain, CtmcError> {
    let mut c = MarkovChain::new(2);
    c.add(0, 1, 2.0 * lambda)?;
    c.add(1, LOSS, lambda)?;
    c.add(1, 0, mu)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form;

    const L: f64 = closed_form::PAPER_LAMBDA_PER_HOUR;

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / b
    }

    #[test]
    fn rolo_e_matches_eq5_exactly() {
        for days in [1.0, 3.0, 7.0] {
            let mu = closed_form::mttr_days_to_mu(days);
            let model = rolo_e_4(L, mu).unwrap().absorption_time(0).unwrap();
            let eq = closed_form::rolo_e_4(L, mu);
            assert!(rel_err(model, eq) < 1e-9, "days {days}: {model} vs {eq}");
        }
    }

    #[test]
    fn reconstructions_match_closed_forms_in_dominant_term() {
        for days in [1.0, 4.0, 7.0] {
            let mu = closed_form::mttr_days_to_mu(days);
            let cases: [(f64, f64, &str); 4] = [
                (
                    raid10_4(L, mu).unwrap().absorption_time(0).unwrap(),
                    closed_form::raid10_4(L, mu),
                    "raid10",
                ),
                (
                    graid_5(L, mu).unwrap().absorption_time(0).unwrap(),
                    closed_form::graid_5(L, mu),
                    "graid",
                ),
                (
                    rolo_p_4(L, mu).unwrap().absorption_time(0).unwrap(),
                    closed_form::rolo_p_4(L, mu),
                    "rolo-p",
                ),
                (
                    rolo_r_4(L, mu).unwrap().absorption_time(0).unwrap(),
                    closed_form::rolo_r_4(L, mu),
                    "rolo-r",
                ),
            ];
            for (model, eq, name) in cases {
                assert!(
                    rel_err(model, eq) < 0.02,
                    "{name} at MTTR {days}d: model {model:.3e} vs closed form {eq:.3e}"
                );
            }
        }
    }

    #[test]
    fn model_ordering_matches_fig9() {
        let mu = closed_form::mttr_days_to_mu(3.0);
        let rr = rolo_r_4(L, mu).unwrap().absorption_time(0).unwrap();
        let r10 = raid10_4(L, mu).unwrap().absorption_time(0).unwrap();
        let rp = rolo_p_4(L, mu).unwrap().absorption_time(0).unwrap();
        let g = graid_5(L, mu).unwrap().absorption_time(0).unwrap();
        assert!(rr > r10 && r10 > rp && rp > g, "{rr} {r10} {rp} {g}");
    }

    #[test]
    fn mttdl_monotone_in_repair_rate() {
        let fast = rolo_p_4(L, closed_form::mttr_days_to_mu(1.0))
            .unwrap()
            .absorption_time(0)
            .unwrap();
        let slow = rolo_p_4(L, closed_form::mttr_days_to_mu(7.0))
            .unwrap()
            .absorption_time(0)
            .unwrap();
        assert!(fast > slow);
    }
}
