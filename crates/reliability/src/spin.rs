//! Spin-cycle derating of the disk failure rate.
//!
//! §IV argues that MTTDL alone is misleading because "the frequency at
//! which a disk spins up/down plays a critical role in the lifetime of
//! the disk and its failure rate λ" (citing the IDEMA reliability
//! specification), and Table I therefore reports spin counts alongside
//! MTTDL. The paper deliberately does not quantify the relationship; to
//! let the combined measure be *computed* at all, we adopt the standard
//! linear start-stop derating used in industry reliability budgeting:
//!
//! ```text
//! λ_eff = λ_base × (1 + annual_spin_cycles / rated_annual_cycles)
//! ```
//!
//! i.e. a disk consuming its full rated start-stop budget per year doubles
//! its effective failure rate. This is a modelling choice of this
//! reproduction (documented in DESIGN.md), not a paper formula.

/// Default rated start/stop cycles per year for an enterprise drive.
///
/// Enterprise drives of the era were rated around 50 000 start/stop
/// cycles over a 5-year service life — 10 000 per year.
pub const DEFAULT_RATED_CYCLES_PER_YEAR: f64 = 10_000.0;

/// Derates a base failure rate by annual spin-cycle consumption.
///
/// # Panics
///
/// Panics if any argument is negative or non-finite, or the rated budget
/// is zero.
///
/// # Example
///
/// ```
/// use rolo_reliability::spin_adjusted_lambda;
/// let base = 1.0 / 100_000.0;
/// // A disk spun up/down 10 times a day ≈ 3652 cycles/year.
/// let eff = spin_adjusted_lambda(base, 3652.0, 10_000.0);
/// assert!(eff > base && eff < 2.0 * base);
/// ```
pub fn spin_adjusted_lambda(
    base_lambda: f64,
    annual_spin_cycles: f64,
    rated_cycles_per_year: f64,
) -> f64 {
    assert!(
        base_lambda.is_finite() && base_lambda >= 0.0,
        "invalid base lambda {base_lambda}"
    );
    assert!(
        annual_spin_cycles.is_finite() && annual_spin_cycles >= 0.0,
        "invalid spin cycle count {annual_spin_cycles}"
    );
    assert!(
        rated_cycles_per_year.is_finite() && rated_cycles_per_year > 0.0,
        "invalid rated cycle budget {rated_cycles_per_year}"
    );
    base_lambda * (1.0 + annual_spin_cycles / rated_cycles_per_year)
}

/// Extrapolates spin cycles observed over a simulated window to a year.
///
/// # Panics
///
/// Panics if `window_hours` is not positive.
pub fn annualize_spin_cycles(observed: u64, window_hours: f64) -> f64 {
    assert!(
        window_hours.is_finite() && window_hours > 0.0,
        "invalid window {window_hours}"
    );
    observed as f64 * (crate::HOURS_PER_YEAR / window_hours)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form;

    #[test]
    fn zero_spins_leave_lambda_unchanged() {
        let l = 1e-5;
        assert_eq!(spin_adjusted_lambda(l, 0.0, 10_000.0), l);
    }

    #[test]
    fn full_budget_doubles_lambda() {
        let l = 1e-5;
        let eff = spin_adjusted_lambda(l, 10_000.0, 10_000.0);
        assert!((eff - 2e-5).abs() < 1e-12);
    }

    #[test]
    fn annualize_scales_linearly() {
        // 10 cycles in ~one week → ~521 per year.
        let annual = annualize_spin_cycles(10, 168.0);
        assert!((annual - 10.0 * crate::HOURS_PER_YEAR / 168.0).abs() < 1e-9);
    }

    #[test]
    fn table_i_conclusion_spin_adjusted_rolo_p_beats_graid_further() {
        // Table I: under src2_2, GRAID spins 40 times vs RoLo-P's 4 per
        // (presumably) the trace week. Derating widens RoLo-P's MTTDL
        // advantage over GRAID.
        let base = closed_form::PAPER_LAMBDA_PER_HOUR;
        let mu = closed_form::mttr_days_to_mu(1.0);
        let graid_l = spin_adjusted_lambda(base, annualize_spin_cycles(40, 168.0), 10_000.0);
        let rolo_l = spin_adjusted_lambda(base, annualize_spin_cycles(4, 168.0), 10_000.0);
        let graid = closed_form::graid_5(graid_l, mu);
        let rolo_p = closed_form::rolo_p_4(rolo_l, mu);
        let plain_ratio = closed_form::rolo_p_4(base, mu) / closed_form::graid_5(base, mu);
        assert!(rolo_p / graid > plain_ratio);
    }

    #[test]
    #[should_panic(expected = "invalid rated cycle budget")]
    fn rejects_zero_budget() {
        spin_adjusted_lambda(1e-5, 1.0, 0.0);
    }
}
