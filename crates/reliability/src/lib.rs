#![warn(missing_docs)]
//! MTTDL reliability models for RAID10, GRAID and the RoLo flavors.
//!
//! The paper (§IV) analyses Mean Time To Data Loss with absorbing
//! continuous-time Markov chains: disk failures are exponential with rate
//! λ, repairs exponential with rate µ, and MTTDL is the expected time to
//! reach the *data loss* state. This crate provides:
//!
//! * [`ctmc`] — a general absorbing-CTMC builder and dense linear solver
//!   computing the expected absorption time from any state;
//! * [`closed_form`] — the paper's published equations (1)–(5) for
//!   four-disk arrays, which drive the Fig. 9 reproduction;
//! * [`models`] — explicit state-diagram constructions for each scheme
//!   (RoLo-E's reproduces Eq. 5 exactly; the others are documented
//!   first-principles reconstructions cross-checked for ordering);
//! * [`spin`] — the spin-cycle failure-rate derating used to discuss the
//!   "combined measure of MTTDL and disk-spin frequency" (§IV, Table I).
//!
//! # Example
//!
//! ```
//! use rolo_reliability::closed_form;
//!
//! let lambda = 1.0 / 100_000.0; // one failure per 10^5 hours (paper's value)
//! let mu = 1.0 / 24.0;          // one-day MTTR
//! let r10 = closed_form::raid10_4(lambda, mu);
//! let rr = closed_form::rolo_r_4(lambda, mu);
//! assert!(rr > r10, "RoLo-R keeps three copies and beats RAID10");
//! ```

pub mod closed_form;
pub mod ctmc;
pub mod models;
pub mod monte_carlo;
pub mod spin;

pub use ctmc::{CtmcError, MarkovChain};
pub use spin::spin_adjusted_lambda;

/// Hours in a (Julian) year, for converting MTTDL to years as Fig. 9 does.
pub const HOURS_PER_YEAR: f64 = 24.0 * 365.25;

/// Converts an MTTDL in hours to years.
pub fn hours_to_years(hours: f64) -> f64 {
    hours / HOURS_PER_YEAR
}
