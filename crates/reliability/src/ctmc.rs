//! Absorbing continuous-time Markov chains and expected absorption times.
//!
//! For a CTMC with transient states `T` and generator `Q`, the vector of
//! expected times to absorption `t` satisfies `Q_T · t = −1` where `Q_T`
//! is the generator restricted to `T`. The chains here are tiny (≤ a few
//! dozen states), so a dense Gaussian elimination with partial pivoting is
//! plenty.

use std::error::Error;
use std::fmt;

/// Errors from building or solving a chain.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// A state index was out of range.
    BadState(usize),
    /// A transition rate was not finite and positive.
    BadRate(f64),
    /// A self-loop was specified.
    SelfLoop(usize),
    /// The linear system is singular — some transient state cannot reach
    /// the absorbing state, so its absorption time is infinite.
    NotAbsorbing,
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::BadState(s) => write!(f, "state index {s} out of range"),
            CtmcError::BadRate(r) => write!(f, "transition rate {r} must be finite and positive"),
            CtmcError::SelfLoop(s) => write!(f, "self-loop on state {s}"),
            CtmcError::NotAbsorbing => {
                write!(f, "chain has transient states that cannot reach absorption")
            }
        }
    }
}

impl Error for CtmcError {}

/// An absorbing CTMC over states `0..states` plus one implicit absorbing
/// state addressed as [`MarkovChain::ABSORBING`].
///
/// # Example
///
/// Two-state chain `0 →(2λ) 1 →(λ) loss`, with repair `1 →(µ) 0` — the
/// paper's RoLo-E model (Fig. 8), whose MTTDL is `(3λ+µ)/(2λ²)` (Eq. 5):
///
/// ```
/// use rolo_reliability::MarkovChain;
///
/// let (l, m) = (1e-5, 0.04);
/// let mut c = MarkovChain::new(2);
/// c.add(0, 1, 2.0 * l)?;
/// c.add(1, MarkovChain::ABSORBING, l)?;
/// c.add(1, 0, m)?;
/// let mttdl = c.absorption_time(0)?;
/// let eq5 = (3.0 * l + m) / (2.0 * l * l);
/// assert!((mttdl - eq5).abs() / eq5 < 1e-9);
/// # Ok::<(), rolo_reliability::CtmcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MarkovChain {
    states: usize,
    /// (from, to, rate); `to == usize::MAX` targets the absorbing state.
    transitions: Vec<(usize, usize, f64)>,
}

impl MarkovChain {
    /// Address of the implicit absorbing ("data loss") state.
    pub const ABSORBING: usize = usize::MAX;

    /// Creates a chain with `states` transient states.
    ///
    /// # Panics
    ///
    /// Panics if `states` is zero.
    pub fn new(states: usize) -> Self {
        assert!(states > 0, "chain needs at least one transient state");
        MarkovChain {
            states,
            transitions: Vec::new(),
        }
    }

    /// Number of transient states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// The transitions added so far, as `(from, to, rate)` triples
    /// (`to == `[`Self::ABSORBING`] targets the absorbing state).
    pub fn transitions(&self) -> &[(usize, usize, f64)] {
        &self.transitions
    }

    /// Adds a transition `from → to` at `rate`. Parallel transitions
    /// between the same pair accumulate.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range states, non-positive/non-finite rates, and
    /// self-loops.
    pub fn add(&mut self, from: usize, to: usize, rate: f64) -> Result<(), CtmcError> {
        if from >= self.states {
            return Err(CtmcError::BadState(from));
        }
        if to != Self::ABSORBING && to >= self.states {
            return Err(CtmcError::BadState(to));
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(CtmcError::BadRate(rate));
        }
        if from == to {
            return Err(CtmcError::SelfLoop(from));
        }
        self.transitions.push((from, to, rate));
        Ok(())
    }

    /// Expected time to absorption starting from `from`.
    ///
    /// # Errors
    ///
    /// [`CtmcError::BadState`] for an out-of-range start,
    /// [`CtmcError::NotAbsorbing`] if absorption is unreachable from some
    /// transient state (singular system).
    pub fn absorption_time(&self, from: usize) -> Result<f64, CtmcError> {
        if from >= self.states {
            return Err(CtmcError::BadState(from));
        }
        let n = self.states;
        // Build A = Q_T (row-major), b = -1.
        let mut a = vec![0.0f64; n * n];
        let mut b = vec![-1.0f64; n];
        for &(s, t, r) in &self.transitions {
            a[s * n + s] -= r;
            if t != Self::ABSORBING {
                a[s * n + t] += r;
            }
        }
        // Gaussian elimination with partial pivoting.
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            let (pivot_row, pivot_val) =
                (col..n)
                    .map(|r| (r, a[perm[r] * n + col].abs()))
                    .fold(
                        (col, 0.0),
                        |best, cur| if cur.1 > best.1 { cur } else { best },
                    );
            if pivot_val < 1e-300 {
                return Err(CtmcError::NotAbsorbing);
            }
            perm.swap(col, pivot_row);
            let p = perm[col];
            #[allow(clippy::needless_range_loop)] // row indices shift under `perm`
            for r in (col + 1)..n {
                let row = perm[r];
                let factor = a[row * n + col] / a[p * n + col];
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[row * n + c] -= factor * a[p * n + c];
                }
                b[row] -= factor * b[p];
            }
        }
        // Back substitution.
        let mut x = vec![0.0f64; n];
        for col in (0..n).rev() {
            let row = perm[col];
            let mut acc = b[row];
            for c in (col + 1)..n {
                acc -= a[row * n + c] * x[c];
            }
            x[col] = acc / a[row * n + col];
        }
        let t = x[from];
        if !t.is_finite() || t < 0.0 {
            return Err(CtmcError::NotAbsorbing);
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_state_exponential() {
        // 0 → loss at rate r: expected absorption 1/r.
        let mut c = MarkovChain::new(1);
        c.add(0, MarkovChain::ABSORBING, 0.25).unwrap();
        let t = c.absorption_time(0).unwrap();
        assert!((t - 4.0).abs() < 1e-12);
    }

    #[test]
    fn two_state_with_repair_formula() {
        // 0 →(a) 1, 1 →(c) loss, 1 →(m) 0: t0 = (a + c + m)/(a c).
        let (a, cc, m) = (0.3, 0.07, 2.0);
        let mut c = MarkovChain::new(2);
        c.add(0, 1, a).unwrap();
        c.add(1, MarkovChain::ABSORBING, cc).unwrap();
        c.add(1, 0, m).unwrap();
        let t = c.absorption_time(0).unwrap();
        let expect = (a + cc + m) / (a * cc);
        assert!((t - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn tandem_chain() {
        // 0 →(r) 1 →(r) 2 →(r) loss: expected 3/r.
        let r = 0.5;
        let mut c = MarkovChain::new(3);
        c.add(0, 1, r).unwrap();
        c.add(1, 2, r).unwrap();
        c.add(2, MarkovChain::ABSORBING, r).unwrap();
        let t = c.absorption_time(0).unwrap();
        assert!((t - 6.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_transitions_accumulate() {
        let mut c = MarkovChain::new(1);
        c.add(0, MarkovChain::ABSORBING, 0.5).unwrap();
        c.add(0, MarkovChain::ABSORBING, 0.5).unwrap();
        assert!((c.absorption_time(0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_absorption_detected() {
        // Two states cycling with no path to absorption.
        let mut c = MarkovChain::new(2);
        c.add(0, 1, 1.0).unwrap();
        c.add(1, 0, 1.0).unwrap();
        assert_eq!(c.absorption_time(0), Err(CtmcError::NotAbsorbing));
    }

    #[test]
    fn partially_absorbing_chain_detected() {
        // State 1 can only cycle to 2 and back; 0 can be absorbed.
        let mut c = MarkovChain::new(3);
        c.add(0, MarkovChain::ABSORBING, 1.0).unwrap();
        c.add(1, 2, 1.0).unwrap();
        c.add(2, 1, 1.0).unwrap();
        assert!(c.absorption_time(1).is_err());
    }

    #[test]
    fn input_validation() {
        let mut c = MarkovChain::new(2);
        assert_eq!(c.add(2, 0, 1.0), Err(CtmcError::BadState(2)));
        assert_eq!(c.add(0, 5, 1.0), Err(CtmcError::BadState(5)));
        assert_eq!(c.add(0, 0, 1.0), Err(CtmcError::SelfLoop(0)));
        assert_eq!(c.add(0, 1, 0.0), Err(CtmcError::BadRate(0.0)));
        assert!(matches!(c.add(0, 1, f64::NAN), Err(CtmcError::BadRate(r)) if r.is_nan()));
        assert_eq!(c.absorption_time(9), Err(CtmcError::BadState(9)));
    }

    #[test]
    fn repair_increases_survival() {
        let (l, m) = (0.01, 1.0);
        let mut no_repair = MarkovChain::new(2);
        no_repair.add(0, 1, 2.0 * l).unwrap();
        no_repair.add(1, MarkovChain::ABSORBING, l).unwrap();
        let mut with_repair = no_repair.clone();
        with_repair.add(1, 0, m).unwrap();
        assert!(
            with_repair.absorption_time(0).unwrap() > 10.0 * no_repair.absorption_time(0).unwrap()
        );
    }

    proptest! {
        #[test]
        fn prop_two_state_matches_formula(
            a in 0.001f64..10.0,
            c_rate in 0.001f64..10.0,
            m in 0.0f64..100.0,
        ) {
            let mut c = MarkovChain::new(2);
            c.add(0, 1, a).unwrap();
            c.add(1, MarkovChain::ABSORBING, c_rate).unwrap();
            if m > 0.0 {
                c.add(1, 0, m).unwrap();
            }
            let t = c.absorption_time(0).unwrap();
            let expect = (a + c_rate + m) / (a * c_rate);
            prop_assert!((t - expect).abs() / expect < 1e-9);
        }

        #[test]
        fn prop_faster_failure_shorter_life(scale in 1.1f64..10.0) {
            let mut slow = MarkovChain::new(2);
            slow.add(0, 1, 0.1).unwrap();
            slow.add(1, MarkovChain::ABSORBING, 0.1).unwrap();
            slow.add(1, 0, 1.0).unwrap();
            let mut fast = MarkovChain::new(2);
            fast.add(0, 1, 0.1 * scale).unwrap();
            fast.add(1, MarkovChain::ABSORBING, 0.1 * scale).unwrap();
            fast.add(1, 0, 1.0).unwrap();
            prop_assert!(fast.absorption_time(0).unwrap() < slow.absorption_time(0).unwrap());
        }
    }
}
