//! The paper's published MTTDL equations (§IV, Eqs. 1–5).
//!
//! All equations are for the four-disk system model (two mirrored pairs;
//! GRAID adds its dedicated log disk for five total). `lambda` is the
//! per-disk failure rate and `mu` the repair rate, both per hour; the
//! result is in hours.

/// Validates rate arguments shared by all equations.
///
/// # Panics
///
/// Panics unless `0 < lambda` and `0 < mu`, both finite.
fn check(lambda: f64, mu: f64) {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "lambda must be finite and positive, got {lambda}"
    );
    assert!(
        mu.is_finite() && mu > 0.0,
        "mu must be finite and positive, got {mu}"
    );
}

/// Eq. (1): `MTTDL_RAID10-4 ≈ (3λ + µ) / 4λ²`.
pub fn raid10_4(lambda: f64, mu: f64) -> f64 {
    check(lambda, mu);
    (3.0 * lambda + mu) / (4.0 * lambda * lambda)
}

/// Eq. (2): `MTTDL_GRAID-5 ≈ (17λ + 2µ) / 12λ²` (four data disks plus the
/// dedicated log disk).
pub fn graid_5(lambda: f64, mu: f64) -> f64 {
    check(lambda, mu);
    (17.0 * lambda + 2.0 * mu) / (12.0 * lambda * lambda)
}

/// Eq. (3): `MTTDL_RoLo-P-4 ≈ (10λ + µ) / 5λ²`.
pub fn rolo_p_4(lambda: f64, mu: f64) -> f64 {
    check(lambda, mu);
    (10.0 * lambda + mu) / (5.0 * lambda * lambda)
}

/// Eq. (4): `MTTDL_RoLo-R-4 ≈ (15λ + 2µ) / 6λ²`.
pub fn rolo_r_4(lambda: f64, mu: f64) -> f64 {
    check(lambda, mu);
    (15.0 * lambda + 2.0 * mu) / (6.0 * lambda * lambda)
}

/// Eq. (5): `MTTDL_RoLo-E-4 ≈ (3λ + µ) / 2λ²`.
pub fn rolo_e_4(lambda: f64, mu: f64) -> f64 {
    check(lambda, mu);
    (3.0 * lambda + mu) / (2.0 * lambda * lambda)
}

/// The paper's λ: one failure every 10⁵ hours (§IV, Fig. 9).
pub const PAPER_LAMBDA_PER_HOUR: f64 = 1.0 / 100_000.0;

/// Converts an MTTR in days to the repair rate µ (per hour).
///
/// # Panics
///
/// Panics if `days` is not finite and positive.
pub fn mttr_days_to_mu(days: f64) -> f64 {
    assert!(days.is_finite() && days > 0.0, "MTTR must be positive");
    1.0 / (days * 24.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hours_to_years;

    const L: f64 = PAPER_LAMBDA_PER_HOUR;

    #[test]
    fn fig9_ordering_holds_across_mttr_range() {
        // Fig. 9: RoLo-R > RAID10 > RoLo-P > GRAID for MTTR of 1–7 days.
        for days in 1..=7 {
            let mu = mttr_days_to_mu(days as f64);
            let rr = rolo_r_4(L, mu);
            let r10 = raid10_4(L, mu);
            let rp = rolo_p_4(L, mu);
            let g = graid_5(L, mu);
            assert!(rr > r10, "day {days}");
            assert!(r10 > rp, "day {days}");
            assert!(rp > g, "day {days}");
        }
    }

    #[test]
    fn rolo_r_beats_raid10_by_up_to_a_third() {
        // Paper: "it outperforms RAID10 in terms of MTTDL by up to 33%".
        let mu = mttr_days_to_mu(1.0);
        let ratio = rolo_r_4(L, mu) / raid10_4(L, mu);
        assert!((ratio - 4.0 / 3.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn raid10_beats_rolo_p_by_up_to_20_percent() {
        // Paper: RAID10 > RoLo-P "by up to 20%": (µ/4)/(µ/5) = 1.25 — the
        // paper's 20% reads as RoLo-P being 20% below RAID10.
        let mu = mttr_days_to_mu(1.0);
        let ratio = rolo_p_4(L, mu) / raid10_4(L, mu);
        assert!((ratio - 0.8).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn rolo_e_is_double_raid10() {
        // §IV: "MTTDL of RoLo-E is n times that of RAID10 ... (2 for this
        // case)".
        let mu = mttr_days_to_mu(3.0);
        let ratio = rolo_e_4(L, mu) / raid10_4(L, mu);
        assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn magnitudes_match_fig9_axis() {
        // Fig. 9's y-axis spans 0–16000 years for MTTR 1–7 days.
        let mu = mttr_days_to_mu(1.0);
        let years = hours_to_years(rolo_r_4(L, mu));
        assert!(years > 1000.0 && years < 20_000.0, "{years}");
        let mu7 = mttr_days_to_mu(7.0);
        let worst = hours_to_years(graid_5(L, mu7));
        assert!(worst > 50.0 && worst < 2000.0, "{worst}");
    }

    #[test]
    fn mttdl_decreases_with_longer_repair() {
        let a = raid10_4(L, mttr_days_to_mu(1.0));
        let b = raid10_4(L, mttr_days_to_mu(7.0));
        assert!(a > b);
    }

    #[test]
    #[should_panic(expected = "lambda must be finite and positive")]
    fn rejects_bad_lambda() {
        raid10_4(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "MTTR must be positive")]
    fn rejects_bad_mttr() {
        mttr_days_to_mu(-1.0);
    }
}
