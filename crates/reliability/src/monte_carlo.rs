//! Monte-Carlo estimation of absorption times.
//!
//! An independent cross-check of the dense linear solver in
//! [`ctmc`](crate::ctmc): simulate the chain's trajectories with
//! exponential sojourns and average the time to absorption. Used in tests
//! to validate the solver and available to users for chains too large or
//! too awkward to solve exactly (e.g. when adding state-dependent hooks).

use crate::ctmc::{CtmcError, MarkovChain};
use rand::Rng;
use rand::SeedableRng;

/// Result of a Monte-Carlo absorption-time estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Sample mean of the absorption time.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of simulated trajectories.
    pub samples: u64,
}

impl McEstimate {
    /// A symmetric ~95 % confidence interval around the mean.
    pub fn confidence_95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error;
        (self.mean - half, self.mean + half)
    }
}

/// Estimates the expected absorption time from `from` over `samples`
/// simulated trajectories.
///
/// # Errors
///
/// Returns [`CtmcError::BadState`] for an out-of-range start and
/// [`CtmcError::NotAbsorbing`] if a trajectory reaches a state with no
/// outgoing transitions (absorption would be unreachable).
///
/// # Example
///
/// ```
/// use rolo_reliability::{MarkovChain, monte_carlo};
///
/// let mut c = MarkovChain::new(1);
/// c.add(0, MarkovChain::ABSORBING, 0.5)?;
/// let est = monte_carlo::absorption_time_mc(&c, 0, 20_000, 7)?;
/// // True mean is 2.0.
/// let (lo, hi) = est.confidence_95();
/// assert!(lo < 2.0 && 2.0 < hi);
/// # Ok::<(), rolo_reliability::CtmcError>(())
/// ```
pub fn absorption_time_mc(
    chain: &MarkovChain,
    from: usize,
    samples: u64,
    seed: u64,
) -> Result<McEstimate, CtmcError> {
    if from >= chain.states() {
        return Err(CtmcError::BadState(from));
    }
    assert!(samples > 0, "need at least one sample");
    // Pre-index transitions per state.
    let mut per_state: Vec<Vec<(usize, f64)>> = vec![Vec::new(); chain.states()];
    for &(s, t, r) in chain.transitions() {
        per_state[s].push((t, r));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..samples {
        let mut state = from;
        let mut t = 0.0f64;
        loop {
            let outs = &per_state[state];
            if outs.is_empty() {
                return Err(CtmcError::NotAbsorbing);
            }
            let total: f64 = outs.iter().map(|(_, r)| r).sum();
            // Exponential sojourn.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / total;
            // Pick the transition proportionally to its rate.
            let mut pick = rng.gen_range(0.0..total);
            let mut next = outs[outs.len() - 1].0;
            for &(to, r) in outs {
                if pick < r {
                    next = to;
                    break;
                }
                pick -= r;
            }
            if next == MarkovChain::ABSORBING {
                break;
            }
            state = next;
        }
        sum += t;
        sum_sq += t * t;
    }
    let n = samples as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    Ok(McEstimate {
        mean,
        std_error: (var / n).sqrt(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{closed_form, models};

    #[test]
    fn matches_exponential_mean() {
        let mut c = MarkovChain::new(1);
        c.add(0, MarkovChain::ABSORBING, 2.0).unwrap();
        let est = absorption_time_mc(&c, 0, 50_000, 1).unwrap();
        assert!((est.mean - 0.5).abs() < 0.02, "{est:?}");
        assert!(est.std_error < 0.01);
    }

    #[test]
    fn validates_solver_on_rolo_e() {
        // Scale rates so trajectories stay short: with λ = 0.01, µ = 0.5
        // the repair loop is visited ~µ/λ times.
        let (l, m) = (0.01, 0.5);
        let chain = models::rolo_e_4(l, m).unwrap();
        let exact = chain.absorption_time(0).unwrap();
        let est = absorption_time_mc(&chain, 0, 20_000, 42).unwrap();
        let (lo, hi) = est.confidence_95();
        assert!(
            lo < exact && exact < hi,
            "exact {exact} outside MC CI [{lo}, {hi}]"
        );
        // And both agree with Eq. (5).
        let eq5 = closed_form::rolo_e_4(l, m);
        assert!((exact - eq5).abs() / eq5 < 1e-9);
    }

    #[test]
    fn validates_solver_on_raid10_model() {
        let (l, m) = (0.02, 0.4);
        let chain = models::raid10_4(l, m).unwrap();
        let exact = chain.absorption_time(0).unwrap();
        let est = absorption_time_mc(&chain, 0, 20_000, 43).unwrap();
        let (lo, hi) = est.confidence_95();
        assert!(lo < exact && exact < hi, "exact {exact} CI [{lo}, {hi}]");
    }

    #[test]
    fn error_on_dead_end() {
        let mut c = MarkovChain::new(2);
        c.add(0, 1, 1.0).unwrap();
        // State 1 has no outgoing transitions.
        assert_eq!(
            absorption_time_mc(&c, 0, 10, 1),
            Err(CtmcError::NotAbsorbing)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut c = MarkovChain::new(1);
        c.add(0, MarkovChain::ABSORBING, 1.0).unwrap();
        let a = absorption_time_mc(&c, 0, 1000, 9).unwrap();
        let b = absorption_time_mc(&c, 0, 1000, 9).unwrap();
        assert_eq!(a, b);
    }
}
