//! Disk power states and energy accounting (Dempsey-style).
//!
//! The meter integrates energy as `power(state) × residency` plus the fixed
//! per-transition energies from the datasheet. State residencies are also
//! kept separately because several of the paper's figures (Fig. 3, Fig. 2b)
//! report time-in-state proportions rather than joules.

use crate::params::DiskParams;
use rolo_sim::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Power state of a disk.
///
/// `Active` means the disk is servicing a request; `Idle` means spun up
/// with an empty queue; `Standby` means spun down. The two transition
/// states consume their datasheet transition energy rather than a
/// state power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Servicing a request.
    Active,
    /// Spun up, queue empty.
    Idle,
    /// Spun down.
    Standby,
    /// In the spin-up transition.
    SpinningUp,
    /// In the spin-down transition.
    SpinningDown,
}

impl PowerState {
    /// True if the platters are (or are becoming) spun up enough to accept
    /// service without a fresh spin-up.
    pub fn is_spun_up(self) -> bool {
        matches!(self, PowerState::Active | PowerState::Idle)
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerState::Active => "ACTIVE",
            PowerState::Idle => "IDLE",
            PowerState::Standby => "STANDBY",
            PowerState::SpinningUp => "SPIN-UP",
            PowerState::SpinningDown => "SPIN-DOWN",
        };
        f.write_str(s)
    }
}

/// Per-disk energy and state-residency accounting.
///
/// # Example
///
/// ```
/// use rolo_disk::{DiskParams, EnergyMeter, PowerState};
/// use rolo_sim::{Duration, SimTime};
///
/// let params = DiskParams::ultrastar_36z15();
/// let mut m = EnergyMeter::new(&params, PowerState::Idle, SimTime::ZERO);
/// m.transition(PowerState::Active, SimTime::from_secs(10));
/// let report = m.report(SimTime::from_secs(20), &params);
/// // 10 s idle at 10.2 W + 10 s active at 13.5 W
/// assert!((report.total_joules - (102.0 + 135.0)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    state: PowerState,
    state_since: SimTime,
    /// Accumulated residency per state, indexed by [`state_index`].
    residency: [Duration; 5],
    /// Joules from completed residencies and transitions.
    joules: f64,
    spin_ups: u64,
    spin_downs: u64,
    power: [f64; 5],
}

fn state_index(s: PowerState) -> usize {
    match s {
        PowerState::Active => 0,
        PowerState::Idle => 1,
        PowerState::Standby => 2,
        PowerState::SpinningUp => 3,
        PowerState::SpinningDown => 4,
    }
}

impl EnergyMeter {
    /// Creates a meter for a disk whose initial state is `initial` at time
    /// `now`.
    pub fn new(params: &DiskParams, initial: PowerState, now: SimTime) -> Self {
        // Transition states draw their fixed energy (added on entry), so
        // their state power is zero.
        let power = [
            params.power_active_w,
            params.power_idle_w,
            params.power_standby_w,
            0.0,
            0.0,
        ];
        EnergyMeter {
            state: initial,
            state_since: now,
            residency: [Duration::ZERO; 5],
            joules: 0.0,
            spin_ups: 0,
            spin_downs: 0,
            power,
        }
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Instant the current state was entered.
    pub fn state_since(&self) -> SimTime {
        self.state_since
    }

    /// Moves the meter to `next` at time `now`, closing the books on the
    /// previous state. Entering a transition state charges its fixed
    /// energy and bumps the corresponding spin counter.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the current state's entry
    /// time.
    pub fn transition(&mut self, next: PowerState, now: SimTime) {
        debug_assert!(
            now >= self.state_since,
            "time went backwards in EnergyMeter"
        );
        let held = now.since(self.state_since);
        let idx = state_index(self.state);
        self.residency[idx] += held;
        self.joules += self.power[idx] * held.as_secs_f64();
        match next {
            PowerState::SpinningUp => {
                self.spin_ups += 1;
            }
            PowerState::SpinningDown => {
                self.spin_downs += 1;
            }
            _ => {}
        }
        self.state = next;
        self.state_since = now;
    }

    /// Charges the fixed transition energy for the transition state being
    /// *left*. Called by the disk when a spin-up/-down completes.
    pub(crate) fn charge_transition_energy(&mut self, joules: f64) {
        self.joules += joules;
    }

    /// Number of completed spin-up transitions so far.
    pub fn spin_ups(&self) -> u64 {
        self.spin_ups
    }

    /// Number of completed spin-down transitions so far.
    pub fn spin_downs(&self) -> u64 {
        self.spin_downs
    }

    /// Snapshot of energy and residency up to `now` (the current state's
    /// partial residency is included; the meter itself is not modified).
    pub fn report(&self, now: SimTime, params: &DiskParams) -> DiskEnergyReport {
        let _ = params; // power already captured at construction
        debug_assert!(now >= self.state_since);
        let mut residency = self.residency;
        let idx = state_index(self.state);
        let held = now.since(self.state_since);
        residency[idx] += held;
        let total_joules = self.joules + self.power[idx] * held.as_secs_f64();
        DiskEnergyReport {
            total_joules,
            active: residency[0],
            idle: residency[1],
            standby: residency[2],
            spinning_up: residency[3],
            spinning_down: residency[4],
            spin_ups: self.spin_ups,
            spin_downs: self.spin_downs,
        }
    }
}

/// Energy/residency snapshot for one disk.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DiskEnergyReport {
    /// Total energy consumed (J), including transition energies.
    pub total_joules: f64,
    /// Time spent servicing requests.
    pub active: Duration,
    /// Time spent spun up but idle.
    pub idle: Duration,
    /// Time spent spun down.
    pub standby: Duration,
    /// Time spent in spin-up transitions.
    pub spinning_up: Duration,
    /// Time spent in spin-down transitions.
    pub spinning_down: Duration,
    /// Completed spin-up transitions.
    pub spin_ups: u64,
    /// Completed spin-down transitions.
    pub spin_downs: u64,
}

impl DiskEnergyReport {
    /// Sum of all residencies — must equal wall time (energy-conservation
    /// invariant, property-tested).
    pub fn total_time(&self) -> Duration {
        self.active + self.idle + self.standby + self.spinning_up + self.spinning_down
    }

    /// Fraction of non-standby wall time spent idle — the quantity plotted
    /// in Fig. 3.
    pub fn idle_fraction(&self) -> f64 {
        let total = self.total_time().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.idle.as_secs_f64() / total
    }

    /// Combines two reports (e.g. across disks of an array).
    pub fn merged(&self, other: &DiskEnergyReport) -> DiskEnergyReport {
        DiskEnergyReport {
            total_joules: self.total_joules + other.total_joules,
            active: self.active + other.active,
            idle: self.idle + other.idle,
            standby: self.standby + other.standby,
            spinning_up: self.spinning_up + other.spinning_up,
            spinning_down: self.spinning_down + other.spinning_down,
            spin_ups: self.spin_ups + other.spin_ups,
            spin_downs: self.spin_downs + other.spin_downs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DiskParams {
        DiskParams::ultrastar_36z15()
    }

    #[test]
    fn integrates_state_power() {
        let p = params();
        let mut m = EnergyMeter::new(&p, PowerState::Idle, SimTime::ZERO);
        m.transition(PowerState::Active, SimTime::from_secs(100));
        let r = m.report(SimTime::from_secs(160), &p);
        let expect = 100.0 * 10.2 + 60.0 * 13.5;
        assert!((r.total_joules - expect).abs() < 1e-6, "{r:?}");
        assert_eq!(r.idle, Duration::from_secs(100));
        assert_eq!(r.active, Duration::from_secs(60));
    }

    #[test]
    fn transition_energy_and_counters() {
        let p = params();
        let mut m = EnergyMeter::new(&p, PowerState::Idle, SimTime::ZERO);
        m.transition(PowerState::SpinningDown, SimTime::from_secs(10));
        m.charge_transition_energy(p.spin_down_energy_j);
        m.transition(PowerState::Standby, SimTime::from_millis(11_500));
        m.transition(PowerState::SpinningUp, SimTime::from_secs(50));
        m.charge_transition_energy(p.spin_up_energy_j);
        m.transition(PowerState::Idle, SimTime::from_millis(60_900));
        let r = m.report(SimTime::from_millis(60_900), &p);
        assert_eq!(r.spin_downs, 1);
        assert_eq!(r.spin_ups, 1);
        let expect = 10.0 * 10.2 + 13.0 + (50.0 - 11.5) * 2.5 + 135.0;
        assert!((r.total_joules - expect).abs() < 1e-6, "{}", r.total_joules);
        assert_eq!(r.spinning_up, Duration::from_millis(10_900));
        assert_eq!(r.spinning_down, Duration::from_millis(1_500));
    }

    #[test]
    fn residencies_cover_wall_time() {
        let p = params();
        let mut m = EnergyMeter::new(&p, PowerState::Idle, SimTime::ZERO);
        let steps = [
            (PowerState::Active, 3u64),
            (PowerState::Idle, 9),
            (PowerState::SpinningDown, 11),
            (PowerState::Standby, 13),
            (PowerState::SpinningUp, 40),
            (PowerState::Idle, 52),
        ];
        for (s, t) in steps {
            m.transition(s, SimTime::from_secs(t));
        }
        let r = m.report(SimTime::from_secs(60), &p);
        assert_eq!(r.total_time(), Duration::from_secs(60));
    }

    #[test]
    fn report_is_idempotent() {
        let p = params();
        let m = EnergyMeter::new(&p, PowerState::Active, SimTime::ZERO);
        let r1 = m.report(SimTime::from_secs(5), &p);
        let r2 = m.report(SimTime::from_secs(5), &p);
        assert_eq!(r1, r2);
    }

    #[test]
    fn merged_adds_fields() {
        let p = params();
        let m = EnergyMeter::new(&p, PowerState::Active, SimTime::ZERO);
        let r = m.report(SimTime::from_secs(10), &p);
        let d = r.merged(&r);
        assert!((d.total_joules - 2.0 * r.total_joules).abs() < 1e-9);
        assert_eq!(d.active, r.active * 2);
    }

    #[test]
    fn idle_fraction_bounds() {
        let p = params();
        let mut m = EnergyMeter::new(&p, PowerState::Idle, SimTime::ZERO);
        m.transition(PowerState::Active, SimTime::from_secs(3));
        let r = m.report(SimTime::from_secs(4), &p);
        assert!((r.idle_fraction() - 0.75).abs() < 1e-9);
    }
}
