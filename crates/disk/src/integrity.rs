//! Extent-granular integrity tracking for silent-corruption modeling.
//!
//! The simulator does not move payload bytes, so "corruption" is modeled
//! as metadata: an [`IntegrityMap`] records which byte extents of a disk
//! currently hold data whose end-to-end checksum would fail verification.
//! The fault injector inserts extents when a latent sector error (LSE)
//! lands; reads and the scrub engine query and clear them. An extent is
//! *latent* while it sits in the map — the danger window the scrub engine
//! exists to shrink (DESIGN.md §11).
//!
//! Extents are kept disjoint: an injection that overlaps an existing
//! latent extent is skipped by the caller (the sector is already bad),
//! which keeps every injected extent individually accountable in the
//! repaired-by-scrub / repaired-on-read / lost classification.

use std::collections::BTreeMap;

/// The byte extents of one disk that currently fail checksum
/// verification, keyed by start offset and disjoint by construction.
#[derive(Debug, Clone, Default)]
pub struct IntegrityMap {
    /// start → length, non-overlapping.
    extents: BTreeMap<u64, u64>,
}

impl IntegrityMap {
    /// Creates an empty map (no latent corruption).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if no extent is latent.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Number of latent extents.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// Total latent bytes.
    pub fn bytes(&self) -> u64 {
        self.extents.values().sum()
    }

    /// True if `[start, start + len)` touches any latent extent.
    pub fn overlaps(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let end = start.saturating_add(len);
        // The only candidates are the last extent starting at or before
        // `start` and any extent starting inside the range.
        if let Some((&s, &l)) = self.extents.range(..=start).next_back() {
            if s.saturating_add(l) > start {
                return true;
            }
        }
        self.extents.range(start..end).next().is_some()
    }

    /// Marks `[start, start + len)` latent. Returns `false` (and leaves
    /// the map unchanged) if the extent overlaps an existing one or is
    /// empty — the caller skips the injection so each recorded extent
    /// stays individually classifiable.
    pub fn insert(&mut self, start: u64, len: u64) -> bool {
        if len == 0 || self.overlaps(start, len) {
            return false;
        }
        self.extents.insert(start, len);
        true
    }

    /// Removes and returns every latent extent touching
    /// `[start, start + len)`, in offset order. Extents are taken
    /// wholesale: any I/O or scrub chunk that touches a latent extent is
    /// deemed to detect (and repair or lose) all of it.
    pub fn take_overlapping(&mut self, start: u64, len: u64) -> Vec<(u64, u64)> {
        if len == 0 || self.extents.is_empty() {
            return Vec::new();
        }
        let end = start.saturating_add(len);
        let mut doomed: Vec<u64> = Vec::new();
        if let Some((&s, &l)) = self.extents.range(..=start).next_back() {
            if s.saturating_add(l) > start {
                doomed.push(s);
            }
        }
        doomed.extend(self.extents.range(start..end).map(|(&s, _)| s));
        doomed.dedup();
        doomed
            .into_iter()
            .map(|s| (s, self.extents.remove(&s).expect("candidate present")))
            .collect()
    }

    /// Clears every latent extent touching `[start, start + len)` and
    /// returns how many whole extents were removed.
    pub fn clear_overlapping(&mut self, start: u64, len: u64) -> usize {
        self.take_overlapping(start, len).len()
    }

    /// Removes every extent and returns how many there were (used when a
    /// disk is replaced: the spare starts clean).
    pub fn reset(&mut self) -> usize {
        let n = self.extents.len();
        self.extents.clear();
        n
    }

    /// Iterates `(start, len)` over the latent extents in offset order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.extents.iter().map(|(&s, &l)| (s, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_overlap() {
        let mut m = IntegrityMap::new();
        assert!(m.insert(100, 50));
        assert!(m.overlaps(100, 1));
        assert!(m.overlaps(149, 1));
        assert!(!m.overlaps(150, 1));
        assert!(!m.overlaps(0, 100));
        assert!(m.overlaps(0, 101));
        assert!(m.overlaps(140, 1000));
        assert_eq!(m.len(), 1);
        assert_eq!(m.bytes(), 50);
    }

    #[test]
    fn overlapping_insert_rejected() {
        let mut m = IntegrityMap::new();
        assert!(m.insert(100, 50));
        assert!(!m.insert(149, 10));
        assert!(!m.insert(90, 20));
        assert!(!m.insert(100, 50));
        assert!(!m.insert(0, 0));
        assert!(m.insert(150, 10));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn clear_overlapping_removes_whole_extents() {
        let mut m = IntegrityMap::new();
        m.insert(0, 10);
        m.insert(100, 50);
        m.insert(200, 10);
        assert_eq!(m.clear_overlapping(140, 70), 2);
        assert_eq!(m.len(), 1);
        assert!(m.overlaps(0, 10));
        assert!(!m.overlaps(100, 200));
        assert_eq!(m.clear_overlapping(500, 10), 0);
        assert_eq!(m.reset(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn take_overlapping_returns_extents_in_order() {
        let mut m = IntegrityMap::new();
        m.insert(100, 50);
        m.insert(200, 10);
        m.insert(400, 10);
        assert_eq!(m.take_overlapping(120, 100), vec![(100, 50), (200, 10)]);
        assert_eq!(m.len(), 1);
        assert!(m.take_overlapping(0, 50).is_empty());
    }
}
