//! A single simulated disk: request queues, spindle state machine, stats.
//!
//! The disk is driven by its owner (the array controller): methods that
//! start an activity return a [`DiskWake`] telling the owner what event to
//! schedule and when. The owner feeds completions back via the
//! `on_*_complete` methods. At most one wake is outstanding per disk at any
//! time, which keeps scheduling logic trivial and prevents double-fires.
//!
//! Two queue priorities implement the paper's destaging rule: *"the
//! priority of the background destaging I/O activities is always lower
//! than that of the foreground user I/O activities, and only free disk
//! bandwidth is utilized"* (§III-A). A background request is admitted only
//! when no foreground work is queued; foreground arrivals never preempt an
//! in-service transfer but always jump ahead of queued background work.

use crate::params::DiskParams;
use crate::power::{EnergyMeter, PowerState};
use crate::service::{ServiceModel, ServiceParts};
use crate::DiskId;
use rolo_sim::{Duration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Data flows from the disk.
    Read,
    /// Data flows to the disk.
    Write,
}

/// Scheduling priority of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// User I/O: always serviced first.
    Foreground,
    /// Destage I/O: admitted only when no foreground work is pending.
    Background,
}

/// A request addressed to one physical disk (byte offset + length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskRequest {
    /// Caller-assigned identifier, returned unchanged on completion.
    pub id: u64,
    /// Read or write.
    pub kind: IoKind,
    /// Byte offset on this disk.
    pub offset: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Foreground (user) or background (destage).
    pub priority: Priority,
}

impl DiskRequest {
    /// Convenience constructor.
    pub fn new(id: u64, kind: IoKind, offset: u64, bytes: u64, priority: Priority) -> Self {
        DiskRequest {
            id,
            kind,
            offset,
            bytes,
            priority,
        }
    }
}

/// What the owner must schedule after calling into the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskWake {
    /// Deliver [`Disk::on_io_complete`] at this instant.
    Io(SimTime),
    /// Deliver [`Disk::on_spin_up_complete`] at this instant.
    SpinUp(SimTime),
    /// Deliver [`Disk::on_spin_down_complete`] at this instant.
    SpinDown(SimTime),
    /// Deliver [`Disk::on_bg_retry`] at this instant: a background
    /// request was deferred waiting for an idle slot.
    BgRetry(SimTime),
}

impl DiskWake {
    /// The instant at which the wake is due.
    pub fn due(&self) -> SimTime {
        match self {
            DiskWake::Io(t)
            | DiskWake::SpinUp(t)
            | DiskWake::SpinDown(t)
            | DiskWake::BgRetry(t) => *t,
        }
    }
}

/// Where the time of one completed request went, as seen by the disk.
///
/// Only produced when breakdown recording is switched on
/// ([`Disk::set_record_breakdown`]); the span layer in `rolo-obs` turns
/// these into typed request phases. All intervals are exact:
/// `spinup_stall + bg_interference ≤ start − submit` (the two windows
/// are disjoint — a background transfer needs spinning platters) and
/// `seek + rotation + transfer = end − start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceBreakdown {
    /// Caller-assigned request id.
    pub id: u64,
    /// True for background (destage/rebuild) requests.
    pub background: bool,
    /// When the request was submitted to the disk.
    pub submit: SimTime,
    /// When its media transfer began.
    pub start: SimTime,
    /// When it completed.
    pub end: SimTime,
    /// Arm movement portion of the service time.
    pub seek: Duration,
    /// Rotational-latency portion of the service time.
    pub rotation: Duration,
    /// Media-transfer portion of the service time.
    pub transfer: Duration,
    /// Portion of the wait the platters were not spinning (the request
    /// arrived at a standby / spinning-down disk and waited out the
    /// spin-up).
    pub spinup_stall: Duration,
    /// Portion of the wait spent behind a background (destage/rebuild)
    /// transfer that was already on the media when this request arrived.
    pub bg_interference: Duration,
}

impl ServiceBreakdown {
    /// Wait time not explained by spin-up or background interference:
    /// time spent behind other foreground requests.
    pub fn queue_wait(&self) -> Duration {
        self.start
            .since(self.submit)
            .saturating_sub(self.spinup_stall)
            .saturating_sub(self.bg_interference)
    }

    /// End-to-end time on this disk (`end − submit`).
    pub fn total(&self) -> Duration {
        self.end.since(self.submit)
    }
}

/// Result of an I/O completion: the finished request plus any follow-up
/// wake (the next queued request entering service).
#[derive(Debug, Clone, Copy)]
pub struct CompletionOutcome {
    /// The request that just finished.
    pub completed: DiskRequest,
    /// Wake for the next request now in service, if the queue was non-empty.
    pub next: Option<DiskWake>,
}

/// How a sub-request finished. `Ok` is the only outcome the disk itself
/// produces; the fault-injection layer (see `rolo-core`'s `faults`
/// module) reclassifies completions to model media errors, transient
/// timeouts and whole-disk failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOutcome {
    /// The transfer completed normally.
    Ok,
    /// A latent sector error surfaced (unreadable sector): the data is
    /// lost on this disk, but a redundant copy may exist elsewhere.
    MediaError,
    /// The request timed out in the controller (transient path error);
    /// the request may be retried.
    Timeout,
    /// The whole disk failed; every queued and in-flight request on it
    /// is aborted.
    DiskDead,
}

#[derive(Debug, Clone)]
enum Spindle {
    /// Spun up; `in_service` says whether a transfer is underway.
    Ready,
    /// Spun down, queues empty or awaiting a spin-up trigger.
    Standby,
    SpinningUp,
    /// `then_up` is set if work arrived mid-spin-down.
    SpinningDown {
        then_up: bool,
    },
}

/// Queue-scheduling discipline for foreground requests.
///
/// Background requests always stay FIFO (they are bandwidth fillers, not
/// latency-sensitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// First-in first-out (the default; matches a simple controller).
    #[default]
    Fifo,
    /// Shortest-seek-time-first: pick the queued request whose start is
    /// closest to the current head position.
    Sstf,
}

/// Histogram of idle-slot lengths (time spent spun-up-idle between
/// servicing periods). Bucket boundaries: <1 ms, <10 ms, <100 ms, <1 s,
/// <10 s, <100 s, ≥100 s. The paper's §II observation — most idle slots
/// are far shorter than the spin-down break-even — is measured with
/// this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IdleGapHistogram {
    /// Counts per bucket (see type docs for boundaries).
    pub buckets: [u64; 7],
    /// Number of recorded idle slots.
    pub count: u64,
    /// Sum of all idle-slot lengths.
    pub total: Duration,
}

impl IdleGapHistogram {
    fn record(&mut self, gap: Duration) {
        let us = gap.as_micros();
        let idx = match us {
            0..=999 => 0,
            1_000..=9_999 => 1,
            10_000..=99_999 => 2,
            100_000..=999_999 => 3,
            1_000_000..=9_999_999 => 4,
            10_000_000..=99_999_999 => 5,
            _ => 6,
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += gap;
    }

    /// Fraction of idle slots shorter than `threshold` (e.g. the
    /// break-even time).
    pub fn fraction_shorter_than(&self, threshold: Duration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Bucket upper bounds in µs.
        const UPPER: [u64; 7] = [
            1_000,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
            u64::MAX,
        ];
        let t = threshold.as_micros();
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if UPPER[i] <= t {
                below += c;
            }
        }
        below as f64 / self.count as f64
    }

    /// Mean idle-slot length.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count
        }
    }
}

/// Cumulative per-disk transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DiskIoStats {
    /// Completed foreground requests.
    pub foreground_requests: u64,
    /// Completed background requests.
    pub background_requests: u64,
    /// Bytes moved by foreground requests.
    pub foreground_bytes: u64,
    /// Bytes moved by background requests.
    pub background_bytes: u64,
    /// Media time consumed by foreground requests.
    pub foreground_busy: Duration,
    /// Media time consumed by background requests.
    pub background_busy: Duration,
    /// Requests that found the disk spun down and forced a spin-up.
    pub spin_up_faults: u64,
    /// Deepest queue (pending + in-service) observed.
    pub max_queue_depth: usize,
    /// Distribution of spun-up idle-slot lengths.
    pub idle_gaps: IdleGapHistogram,
}

/// The transfer currently on the media.
#[derive(Debug, Clone, Copy)]
struct InService {
    req: DiskRequest,
    started: SimTime,
    parts: ServiceParts,
}

/// A single simulated disk.
///
/// See the [crate docs](crate) for the driving protocol and an example.
#[derive(Debug, Clone)]
pub struct Disk {
    id: DiskId,
    params: DiskParams,
    service: ServiceModel,
    meter: EnergyMeter,
    spindle: Spindle,
    foreground: VecDeque<DiskRequest>,
    background: VecDeque<DiskRequest>,
    in_service: Option<InService>,
    /// Spin down as soon as the disk drains (see [`Disk::park_when_idle`]).
    pending_park: bool,
    /// Background I/O is dispatched only after the disk has seen no
    /// foreground activity for this long — the "idle time slot"
    /// detection of the paper's decentralized destaging.
    bg_idle_guard: Duration,
    /// Last foreground submission or completion.
    last_fg_activity: SimTime,
    scheduler: SchedulerKind,
    stats: DiskIoStats,
    /// Set by [`Disk::fail_now`]: the disk no longer accepts work.
    dead: bool,
    /// When true, each completion leaves a [`ServiceBreakdown`] behind
    /// (see [`Disk::last_breakdown`]). Off by default: the untraced hot
    /// path pays nothing beyond this flag check.
    record_breakdown: bool,
    /// Submit instants of queued/in-flight requests, kept only while
    /// breakdown recording is on.
    submit_times: HashMap<u64, SimTime>,
    /// Instant the spindle last reached `Ready` (construction time if it
    /// started ready). Requests submitted before this waited on spin-up.
    ready_since: SimTime,
    /// Media interval `[start, end]` of the most recent background
    /// transfer: foreground requests submitted inside it were delayed by
    /// background work (at most one — background is admitted only when
    /// no foreground is queued).
    bg_window: (SimTime, SimTime),
    /// Breakdown of the most recently completed request.
    last_breakdown: Option<ServiceBreakdown>,
}

impl Disk {
    /// Creates a spun-up, idle disk.
    pub fn new(id: DiskId, params: DiskParams, rng: SimRng) -> Self {
        Self::with_initial_state(id, params, rng, PowerState::Idle)
    }

    /// Creates a disk whose spindle starts in `initial` (must be `Idle` or
    /// `Standby`).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is a transient state.
    pub fn with_initial_state(
        id: DiskId,
        params: DiskParams,
        rng: SimRng,
        initial: PowerState,
    ) -> Self {
        Self::with_initial_state_at(id, params, rng, initial, SimTime::ZERO)
    }

    /// Like [`with_initial_state`](Self::with_initial_state) but the
    /// energy meter starts counting at `now` — for hot-spare replacements
    /// installed mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is a transient state.
    pub fn with_initial_state_at(
        id: DiskId,
        params: DiskParams,
        rng: SimRng,
        initial: PowerState,
        now: SimTime,
    ) -> Self {
        let spindle = match initial {
            PowerState::Idle => Spindle::Ready,
            PowerState::Standby => Spindle::Standby,
            other => panic!("disks cannot start in transient state {other}"),
        };
        Disk {
            id,
            meter: EnergyMeter::new(&params, initial, now),
            service: ServiceModel::new(params.clone(), rng),
            params,
            spindle,
            foreground: VecDeque::new(),
            background: VecDeque::new(),
            in_service: None,
            pending_park: false,
            bg_idle_guard: Duration::from_millis(50),
            last_fg_activity: now,
            scheduler: SchedulerKind::default(),
            stats: DiskIoStats::default(),
            dead: false,
            record_breakdown: false,
            submit_times: HashMap::new(),
            ready_since: now,
            bg_window: (now, now),
            last_breakdown: None,
        }
    }

    /// This disk's identifier.
    pub fn id(&self) -> DiskId {
        self.id
    }

    /// The disk's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Current power state.
    pub fn power_state(&self) -> PowerState {
        self.meter.state()
    }

    /// True if spun up (or spinning up) — i.e. no fresh spin-up needed.
    pub fn is_spun_up(&self) -> bool {
        matches!(self.spindle, Spindle::Ready | Spindle::SpinningUp)
    }

    /// True if spun up with nothing queued or in service.
    pub fn is_idle(&self) -> bool {
        matches!(self.spindle, Spindle::Ready)
            && self.in_service.is_none()
            && self.foreground.is_empty()
            && self.background.is_empty()
    }

    /// Queued (not yet in-service) request count, both priorities.
    pub fn queue_len(&self) -> usize {
        self.foreground.len() + self.background.len()
    }

    /// Pending foreground requests (queued, not in service).
    pub fn foreground_pending(&self) -> usize {
        self.foreground.len()
    }

    /// Pending background requests (queued, not in service).
    pub fn background_pending(&self) -> usize {
        self.background.len()
    }

    /// True if a request is currently being transferred.
    pub fn is_busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Cumulative transfer statistics.
    pub fn io_stats(&self) -> DiskIoStats {
        self.stats
    }

    /// Energy/residency snapshot as of `now`.
    pub fn energy_report(&self, now: SimTime) -> crate::power::DiskEnergyReport {
        self.meter.report(now, &self.params)
    }

    /// Instantaneous power draw of the current state (W). Transition
    /// states report their average power (transition energy over
    /// transition time).
    pub fn current_power_w(&self) -> f64 {
        match self.meter.state() {
            PowerState::Active => self.params.power_active_w,
            PowerState::Idle => self.params.power_idle_w,
            PowerState::Standby => self.params.power_standby_w,
            PowerState::SpinningUp => {
                self.params.spin_up_energy_j / self.params.spin_up_time.as_secs_f64()
            }
            PowerState::SpinningDown => {
                self.params.spin_down_energy_j / self.params.spin_down_time.as_secs_f64()
            }
        }
    }

    /// Submits a request. Returns a wake if this call started an activity
    /// (service began, or a spin-up was triggered); returns `None` when an
    /// already-scheduled wake will pick the request up.
    pub fn submit(&mut self, req: DiskRequest, now: SimTime) -> Option<DiskWake> {
        assert!(!self.dead, "submit to dead disk {}", self.id);
        if self.record_breakdown {
            self.submit_times.insert(req.id, now);
        }
        // Fresh work cancels any pending park request.
        self.pending_park = false;
        match req.priority {
            Priority::Foreground => {
                self.last_fg_activity = now;
                self.foreground.push_back(req);
            }
            Priority::Background => self.background.push_back(req),
        }
        let depth = self.queue_len() + usize::from(self.in_service.is_some());
        if depth > self.stats.max_queue_depth {
            self.stats.max_queue_depth = depth;
        }
        match self.spindle {
            Spindle::Ready => {
                if self.in_service.is_none() {
                    self.start_next(now)
                } else {
                    None
                }
            }
            Spindle::Standby => {
                self.stats.spin_up_faults += 1;
                Some(self.begin_spin_up(now))
            }
            Spindle::SpinningUp => None,
            Spindle::SpinningDown { .. } => {
                self.spindle = Spindle::SpinningDown { then_up: true };
                None
            }
        }
    }

    /// Requests a spin-down. Succeeds only when the disk is fully idle;
    /// returns the wake for the spin-down completion.
    pub fn spin_down(&mut self, now: SimTime) -> Option<DiskWake> {
        if !self.is_idle() {
            return None;
        }
        self.pending_park = false;
        self.meter.transition(PowerState::SpinningDown, now);
        self.spindle = Spindle::SpinningDown { then_up: false };
        Some(DiskWake::SpinDown(now + self.params.spin_down_time))
    }

    /// Requests a spin-down that takes effect as soon as the disk drains:
    /// immediately if idle (returning the wake), otherwise when the last
    /// queued request completes (the wake then comes from
    /// [`on_io_complete`](Self::on_io_complete)). Any new submission
    /// cancels the request.
    pub fn park_when_idle(&mut self, now: SimTime) -> Option<DiskWake> {
        if self.is_idle() {
            self.spin_down(now)
        } else {
            if matches!(self.spindle, Spindle::Ready) {
                self.pending_park = true;
            }
            None
        }
    }

    /// True if a park request is pending (spin-down on drain).
    pub fn is_park_pending(&self) -> bool {
        self.pending_park
    }

    /// Explicitly spins the disk up (e.g. destage target wakes before I/O
    /// arrives). No-op unless the disk is in `Standby`.
    pub fn spin_up(&mut self, now: SimTime) -> Option<DiskWake> {
        self.pending_park = false;
        match self.spindle {
            Spindle::Standby => Some(self.begin_spin_up(now)),
            Spindle::SpinningDown { .. } => {
                self.spindle = Spindle::SpinningDown { then_up: true };
                None
            }
            _ => None,
        }
    }

    /// Delivers a spin-up completion. Returns the wake for the first queued
    /// request entering service, if any.
    pub fn on_spin_up_complete(&mut self, now: SimTime) -> Option<DiskWake> {
        debug_assert!(matches!(self.spindle, Spindle::SpinningUp));
        self.meter
            .charge_transition_energy(self.params.spin_up_energy_j);
        self.meter.transition(PowerState::Idle, now);
        self.spindle = Spindle::Ready;
        self.ready_since = now;
        self.start_next(now)
    }

    /// Delivers a spin-down completion. If work arrived during the
    /// transition the disk immediately begins spinning back up and the
    /// corresponding wake is returned.
    pub fn on_spin_down_complete(&mut self, now: SimTime) -> Option<DiskWake> {
        let then_up = match self.spindle {
            Spindle::SpinningDown { then_up } => then_up,
            _ => panic!(
                "spin-down completion delivered to disk {} not spinning down",
                self.id
            ),
        };
        self.meter
            .charge_transition_energy(self.params.spin_down_energy_j);
        self.meter.transition(PowerState::Standby, now);
        self.spindle = Spindle::Standby;
        if then_up || self.queue_len() > 0 {
            Some(self.begin_spin_up(now))
        } else {
            None
        }
    }

    /// Delivers an I/O completion.
    ///
    /// # Panics
    ///
    /// Panics if no request is in service (owner bug).
    pub fn on_io_complete(&mut self, now: SimTime) -> CompletionOutcome {
        let InService {
            req,
            started,
            parts,
        } = self
            .in_service
            .take()
            .unwrap_or_else(|| panic!("io completion delivered to idle disk {}", self.id));
        let busy = now.since(started);
        match req.priority {
            Priority::Foreground => {
                self.last_fg_activity = now;
                self.stats.foreground_requests += 1;
                self.stats.foreground_bytes += req.bytes;
                self.stats.foreground_busy += busy;
            }
            Priority::Background => {
                self.stats.background_requests += 1;
                self.stats.background_bytes += req.bytes;
                self.stats.background_busy += busy;
            }
        }
        if self.record_breakdown {
            if req.priority == Priority::Background {
                self.bg_window = (started, now);
            }
            self.last_breakdown = Some(self.build_breakdown(&req, started, now, parts));
        }
        let mut next = self.start_next(now);
        match next {
            Some(DiskWake::Io(_)) => {}
            Some(DiskWake::BgRetry(_)) => {
                // Waiting out the idle guard: the platters idle meanwhile.
                self.meter.transition(PowerState::Idle, now);
            }
            _ => {
                if self.pending_park {
                    self.pending_park = false;
                    self.meter.transition(PowerState::SpinningDown, now);
                    self.spindle = Spindle::SpinningDown { then_up: false };
                    next = Some(DiskWake::SpinDown(now + self.params.spin_down_time));
                } else {
                    self.meter.transition(PowerState::Idle, now);
                }
            }
        }
        CompletionOutcome {
            completed: req,
            next,
        }
    }

    fn begin_spin_up(&mut self, now: SimTime) -> DiskWake {
        debug_assert!(matches!(self.spindle, Spindle::Standby));
        self.meter.transition(PowerState::SpinningUp, now);
        self.spindle = Spindle::SpinningUp;
        DiskWake::SpinUp(now + self.params.spin_up_time)
    }

    /// Pops the next request by priority and puts it in service.
    ///
    /// Background requests are dispatched only once the disk has been
    /// free of foreground activity for [`bg_idle_guard`](Self::set_bg_idle_guard);
    /// otherwise a [`DiskWake::BgRetry`] is produced for the instant the
    /// guard expires.
    fn start_next(&mut self, now: SimTime) -> Option<DiskWake> {
        debug_assert!(self.in_service.is_none());
        let req = if !self.foreground.is_empty() {
            match self.scheduler {
                SchedulerKind::Fifo => self.foreground.pop_front().expect("checked non-empty"),
                SchedulerKind::Sstf => {
                    let head = self.service.head_position().unwrap_or(0);
                    let bpc = self.params.bytes_per_cylinder();
                    let head_cyl = head / bpc;
                    let (idx, _) = self
                        .foreground
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, r)| (r.offset / bpc).abs_diff(head_cyl))
                        .expect("checked non-empty");
                    self.foreground.remove(idx).expect("index valid")
                }
            }
        } else if !self.background.is_empty() {
            let quiet_at = self.last_fg_activity + self.bg_idle_guard;
            if now < quiet_at {
                return Some(DiskWake::BgRetry(quiet_at));
            }
            self.background.pop_front().expect("checked non-empty")
        } else {
            return None;
        };
        let parts = self.service.service_parts(req.offset, req.bytes);
        if self.meter.state() != PowerState::Active {
            if self.meter.state() == PowerState::Idle {
                let gap = now.since(self.meter.state_since());
                self.stats.idle_gaps.record(gap);
            }
            self.meter.transition(PowerState::Active, now);
        }
        let done = now + parts.total();
        self.in_service = Some(InService {
            req,
            started: now,
            parts,
        });
        Some(DiskWake::Io(done))
    }

    /// Builds the phase breakdown of a completed request. `spinup_stall`
    /// and `bg_interference` are clamped so their sum never exceeds the
    /// wait (`start − submit`); they cannot overlap in time anyway — a
    /// background transfer needs spinning platters.
    fn build_breakdown(
        &mut self,
        req: &DiskRequest,
        started: SimTime,
        now: SimTime,
        parts: ServiceParts,
    ) -> ServiceBreakdown {
        let submit = self.submit_times.remove(&req.id).unwrap_or(started);
        let wait = started.since(submit);
        let spinup_stall = submit.until(self.ready_since).min(wait);
        let bg_interference = if req.priority == Priority::Foreground {
            let (bg_start, bg_end) = self.bg_window;
            submit
                .max(bg_start)
                .until(started.min(bg_end))
                .min(wait.saturating_sub(spinup_stall))
        } else {
            Duration::ZERO
        };
        ServiceBreakdown {
            id: req.id,
            background: req.priority == Priority::Background,
            submit,
            start: started,
            end: now,
            seek: parts.seek,
            rotation: parts.rotation,
            transfer: parts.transfer,
            spinup_stall,
            bg_interference,
        }
    }

    /// Sets the idle guard before background dispatch (default 50 ms).
    pub fn set_bg_idle_guard(&mut self, guard: Duration) {
        self.bg_idle_guard = guard;
    }

    /// Switches per-completion [`ServiceBreakdown`] recording on or off
    /// (default off). Recording never perturbs service times or the
    /// random stream — only bookkeeping is added.
    pub fn set_record_breakdown(&mut self, on: bool) {
        self.record_breakdown = on;
        if !on {
            self.submit_times.clear();
            self.last_breakdown = None;
        }
    }

    /// Takes the breakdown of the most recently completed request, if
    /// recording is on. Call immediately after
    /// [`on_io_complete`](Self::on_io_complete).
    pub fn take_breakdown(&mut self) -> Option<ServiceBreakdown> {
        self.last_breakdown.take()
    }

    /// Sets the foreground queue-scheduling discipline (default FIFO).
    pub fn set_scheduler(&mut self, scheduler: SchedulerKind) {
        self.scheduler = scheduler;
    }

    /// True after [`fail_now`](Self::fail_now): the disk accepts no work.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Kills the disk at `now`: the spindle stops, the energy meter
    /// freezes (a failed drive is powered off), and every queued and
    /// in-flight request is aborted and returned so the owner can fail
    /// them upward with [`IoOutcome::DiskDead`]. Any wake already
    /// scheduled for this disk must be discarded by the owner.
    pub fn fail_now(&mut self, now: SimTime) -> Vec<DiskRequest> {
        self.dead = true;
        self.pending_park = false;
        // Freeze residency accounting in Standby: a dead disk spins no
        // platters. (Owners normally retire the meter at this instant and
        // swap in a hot spare, so this only matters for standalone use.)
        if self.meter.state() != PowerState::Standby {
            self.meter.transition(PowerState::Standby, now);
        }
        self.spindle = Spindle::Standby;
        let mut aborted: Vec<DiskRequest> = Vec::new();
        if let Some(svc) = self.in_service.take() {
            aborted.push(svc.req);
        }
        aborted.extend(self.foreground.drain(..));
        aborted.extend(self.background.drain(..));
        if self.record_breakdown {
            for req in &aborted {
                self.submit_times.remove(&req.id);
            }
        }
        aborted
    }

    /// Delivers a deferred-background retry: attempts to dispatch queued
    /// background work if the disk is still free.
    pub fn on_bg_retry(&mut self, now: SimTime) -> Option<DiskWake> {
        if self.in_service.is_some() || !matches!(self.spindle, Spindle::Ready) {
            return None;
        }
        let wake = self.start_next(now);
        if wake.is_none() && self.pending_park {
            self.pending_park = false;
            self.meter.transition(PowerState::SpinningDown, now);
            self.spindle = Spindle::SpinningDown { then_up: false };
            return Some(DiskWake::SpinDown(now + self.params.spin_down_time));
        }
        wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(seed: u64) -> Disk {
        Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(seed))
    }

    fn fg(id: u64, offset: u64, bytes: u64) -> DiskRequest {
        DiskRequest::new(id, IoKind::Write, offset, bytes, Priority::Foreground)
    }

    fn bg(id: u64, offset: u64, bytes: u64) -> DiskRequest {
        DiskRequest::new(id, IoKind::Write, offset, bytes, Priority::Background)
    }

    #[test]
    fn single_request_lifecycle() {
        let mut d = disk(1);
        assert!(d.is_idle());
        let wake = d.submit(fg(1, 0, 64 * 1024), SimTime::ZERO).unwrap();
        let DiskWake::Io(t) = wake else {
            panic!("expected Io wake")
        };
        assert!(d.is_busy());
        assert_eq!(d.power_state(), PowerState::Active);
        let out = d.on_io_complete(t);
        assert_eq!(out.completed.id, 1);
        assert!(out.next.is_none());
        assert!(d.is_idle());
        assert_eq!(d.power_state(), PowerState::Idle);
        assert_eq!(d.io_stats().foreground_requests, 1);
    }

    #[test]
    fn queued_requests_chain() {
        let mut d = disk(2);
        let w1 = d.submit(fg(1, 0, 4096), SimTime::ZERO).unwrap();
        assert!(d.submit(fg(2, 8192, 4096), SimTime::ZERO).is_none());
        let out1 = d.on_io_complete(w1.due());
        let w2 = out1.next.expect("second request should enter service");
        let out2 = d.on_io_complete(w2.due());
        assert_eq!(out2.completed.id, 2);
        assert!(out2.next.is_none());
    }

    #[test]
    fn foreground_jumps_ahead_of_background() {
        let mut d = disk(3);
        // Start past the idle guard so background work dispatches.
        let t0 = SimTime::from_secs(1);
        let w = d.submit(bg(10, 0, 4096), t0).unwrap();
        // Queue a background and a foreground while busy.
        d.submit(bg(11, 4096, 4096), t0);
        d.submit(fg(1, 8192, 4096), t0);
        let o1 = d.on_io_complete(w.due());
        assert_eq!(o1.completed.id, 10);
        let o2 = d.on_io_complete(o1.next.unwrap().due());
        assert_eq!(
            o2.completed.id, 1,
            "foreground must run before queued background"
        );
        // The remaining background request waits out the idle guard.
        let retry = o2.next.unwrap();
        assert!(matches!(retry, DiskWake::BgRetry(_)));
        let io = d.on_bg_retry(retry.due()).unwrap();
        let o3 = d.on_io_complete(io.due());
        assert_eq!(o3.completed.id, 11);
    }

    #[test]
    fn standby_disk_spins_up_on_submit() {
        let mut d = Disk::with_initial_state(
            0,
            DiskParams::ultrastar_36z15(),
            SimRng::seed_from(4),
            PowerState::Standby,
        );
        let wake = d.submit(fg(1, 0, 4096), SimTime::ZERO).unwrap();
        let DiskWake::SpinUp(t) = wake else {
            panic!("expected spin-up wake")
        };
        assert_eq!(
            t,
            SimTime::ZERO + DiskParams::ultrastar_36z15().spin_up_time
        );
        assert_eq!(d.io_stats().spin_up_faults, 1);
        let io = d
            .on_spin_up_complete(t)
            .expect("queued io starts after spin-up");
        let out = d.on_io_complete(io.due());
        assert_eq!(out.completed.id, 1);
        // Spin-up latency dominates: > 10.9 s.
        assert!(io.due().as_secs_f64() > 10.9);
        assert_eq!(d.energy_report(io.due()).spin_ups, 1);
    }

    #[test]
    fn spin_down_then_request_mid_transition() {
        let mut d = disk(5);
        let down = d.spin_down(SimTime::ZERO).unwrap();
        let DiskWake::SpinDown(t_down) = down else {
            panic!()
        };
        // Request arrives mid-spin-down.
        assert!(d
            .submit(fg(1, 0, 4096), SimTime::from_millis(500))
            .is_none());
        let up = d
            .on_spin_down_complete(t_down)
            .expect("must bounce back up");
        let DiskWake::SpinUp(t_up) = up else { panic!() };
        let io = d.on_spin_up_complete(t_up).unwrap();
        let out = d.on_io_complete(io.due());
        assert_eq!(out.completed.id, 1);
        let rep = d.energy_report(io.due());
        assert_eq!(rep.spin_downs, 1);
        assert_eq!(rep.spin_ups, 1);
    }

    #[test]
    fn spin_down_refused_when_busy() {
        let mut d = disk(6);
        d.submit(fg(1, 0, 4096), SimTime::ZERO);
        assert!(d.spin_down(SimTime::ZERO).is_none());
    }

    #[test]
    fn spin_down_completes_to_standby() {
        let mut d = disk(7);
        let w = d.spin_down(SimTime::ZERO).unwrap();
        assert!(d.on_spin_down_complete(w.due()).is_none());
        assert_eq!(d.power_state(), PowerState::Standby);
        assert!(!d.is_spun_up());
    }

    #[test]
    fn explicit_spin_up() {
        let mut d = Disk::with_initial_state(
            0,
            DiskParams::ultrastar_36z15(),
            SimRng::seed_from(8),
            PowerState::Standby,
        );
        let w = d.spin_up(SimTime::ZERO).unwrap();
        assert!(d.on_spin_up_complete(w.due()).is_none());
        assert_eq!(d.power_state(), PowerState::Idle);
        // Redundant spin-up is a no-op.
        assert!(d.spin_up(SimTime::from_secs(20)).is_none());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = disk(9);
        let w1 = d.submit(fg(1, 0, 64 * 1024), SimTime::ZERO).unwrap();
        d.submit(bg(2, 1 << 20, 32 * 1024), SimTime::ZERO);
        let o1 = d.on_io_complete(w1.due());
        // Background dispatch waits for the idle guard after fg activity.
        let retry = o1.next.unwrap();
        assert!(matches!(retry, DiskWake::BgRetry(_)));
        let io = d.on_bg_retry(retry.due()).unwrap();
        let o2 = d.on_io_complete(io.due());
        assert_eq!(o2.completed.id, 2);
        let s = d.io_stats();
        assert_eq!(s.foreground_bytes, 64 * 1024);
        assert_eq!(s.background_bytes, 32 * 1024);
        assert!(s.foreground_busy > Duration::ZERO);
        assert!(s.background_busy > Duration::ZERO);
    }

    #[test]
    fn energy_time_conservation() {
        let mut d = disk(10);
        let mut t = SimTime::ZERO;
        for i in 0..50u64 {
            let w = d
                .submit(fg(i, (i * 997 * 4096) % (16 << 30), 16 * 1024), t)
                .unwrap();
            t = w.due();
            d.on_io_complete(t);
            t += Duration::from_millis(7);
        }
        let rep = d.energy_report(t);
        assert_eq!(rep.total_time(), t.since(SimTime::ZERO));
        assert!(rep.total_joules > 0.0);
    }

    #[test]
    #[should_panic(expected = "io completion delivered to idle disk")]
    fn completion_without_service_panics() {
        let mut d = disk(11);
        d.on_io_complete(SimTime::ZERO);
    }

    #[test]
    fn park_while_busy_spins_down_on_drain() {
        let mut d = disk(12);
        let w = d.submit(fg(1, 0, 4096), SimTime::ZERO).unwrap();
        assert!(d.park_when_idle(SimTime::ZERO).is_none());
        assert!(d.is_park_pending());
        let out = d.on_io_complete(w.due());
        let DiskWake::SpinDown(t) = out.next.expect("park triggers spin-down") else {
            panic!("expected spin-down wake");
        };
        assert!(d.on_spin_down_complete(t).is_none());
        assert_eq!(d.power_state(), PowerState::Standby);
    }

    #[test]
    fn park_while_idle_is_immediate() {
        let mut d = disk(13);
        let w = d.park_when_idle(SimTime::ZERO).unwrap();
        assert!(matches!(w, DiskWake::SpinDown(_)));
    }

    #[test]
    fn new_submission_cancels_park() {
        let mut d = disk(14);
        let w1 = d.submit(fg(1, 0, 4096), SimTime::ZERO).unwrap();
        d.park_when_idle(SimTime::ZERO);
        // Fresh work arrives before the drain: the park is dropped.
        d.submit(fg(2, 8192, 4096), SimTime::ZERO);
        assert!(!d.is_park_pending());
        let o1 = d.on_io_complete(w1.due());
        let o2 = d.on_io_complete(o1.next.unwrap().due());
        assert!(o2.next.is_none());
        assert_eq!(d.power_state(), PowerState::Idle);
    }

    #[test]
    fn bg_idle_guard_defers_until_quiet() {
        let mut d = disk(16);
        // Foreground activity at t=0 stamps last_fg_activity.
        let w = d.submit(fg(1, 0, 4096), SimTime::ZERO).unwrap();
        let o = d.on_io_complete(w.due());
        assert!(o.next.is_none());
        // Background submitted immediately after is deferred ~50 ms.
        let wake = d.submit(bg(2, 8192, 4096), w.due()).unwrap();
        let DiskWake::BgRetry(t) = wake else {
            panic!("expected deferral, got {wake:?}");
        };
        assert_eq!(t, w.due() + Duration::from_millis(50));
        let io = d.on_bg_retry(t).expect("guard expired");
        assert!(matches!(io, DiskWake::Io(_)));
        let done = d.on_io_complete(io.due());
        assert_eq!(done.completed.id, 2);
    }

    #[test]
    fn fail_now_aborts_all_queued_work() {
        let mut d = disk(17);
        d.submit(fg(1, 0, 4096), SimTime::ZERO);
        d.submit(fg(2, 8192, 4096), SimTime::ZERO);
        d.submit(bg(3, 1 << 20, 4096), SimTime::ZERO);
        let aborted = d.fail_now(SimTime::from_millis(1));
        assert_eq!(aborted.len(), 3, "in-service + queued all aborted");
        assert!(d.is_dead());
        assert!(!d.is_busy());
        assert_eq!(d.power_state(), PowerState::Standby);
    }

    #[test]
    #[should_panic(expected = "submit to dead disk")]
    fn dead_disk_rejects_submissions() {
        let mut d = disk(18);
        d.fail_now(SimTime::ZERO);
        d.submit(fg(1, 0, 4096), SimTime::ZERO);
    }

    #[test]
    fn spare_meter_starts_at_install_time() {
        let t = SimTime::from_secs(100);
        let d = Disk::with_initial_state_at(
            0,
            DiskParams::ultrastar_36z15(),
            SimRng::seed_from(19),
            PowerState::Idle,
            t,
        );
        let rep = d.energy_report(SimTime::from_secs(110));
        assert_eq!(rep.total_time(), Duration::from_secs(10));
    }

    #[test]
    fn explicit_spin_up_cancels_park() {
        let mut d = disk(15);
        let w = d.submit(fg(1, 0, 4096), SimTime::ZERO).unwrap();
        d.park_when_idle(SimTime::ZERO);
        d.spin_up(SimTime::ZERO); // policy changed its mind
        let out = d.on_io_complete(w.due());
        assert!(out.next.is_none());
        assert_eq!(d.power_state(), PowerState::Idle);
    }
}

#[cfg(test)]
mod idle_gap_tests {
    use super::*;

    #[test]
    fn records_idle_slots_between_requests() {
        let mut d = Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(30));
        let mut t = SimTime::ZERO;
        for i in 0..5u64 {
            let w = d
                .submit(
                    DiskRequest::new(i, IoKind::Write, i * (1 << 20), 4096, Priority::Foreground),
                    t,
                )
                .unwrap();
            t = w.due();
            d.on_io_complete(t);
            t += Duration::from_millis(20); // 20 ms idle slots
        }
        let h = d.io_stats().idle_gaps;
        // The first request finds the disk idle since t=0 (one long-ish
        // gap of 0); subsequent ones record ~20 ms gaps.
        assert!(h.count >= 4);
        assert!(h.fraction_shorter_than(Duration::from_millis(100)) > 0.9);
        assert!(h.mean() <= Duration::from_millis(25));
    }

    #[test]
    fn fraction_respects_threshold() {
        let mut h = IdleGapHistogram::default();
        h.record(Duration::from_millis(5)); // bucket <10ms
        h.record(Duration::from_secs(50)); // bucket <100s
        assert!((h.fraction_shorter_than(Duration::from_millis(10)) - 0.5).abs() < 1e-9);
        assert!((h.fraction_shorter_than(Duration::from_secs(100)) - 1.0).abs() < 1e-9);
        assert_eq!(h.fraction_shorter_than(Duration::from_micros(500)), 0.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = IdleGapHistogram::default();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.fraction_shorter_than(Duration::from_secs(1)), 0.0);
    }
}

#[cfg(test)]
mod scheduler_tests {
    use super::*;

    #[test]
    fn sstf_picks_nearest_queued_request() {
        let mut d = Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(40));
        d.set_scheduler(SchedulerKind::Sstf);
        // Park the head near offset 0.
        let w = d.submit(fg_req(0, 0), SimTime::ZERO).unwrap();
        // Queue far and near requests while busy.
        d.submit(fg_req(1, 10 << 30), SimTime::ZERO);
        d.submit(fg_req(2, 1 << 20), SimTime::ZERO);
        let o1 = d.on_io_complete(w.due());
        let o2 = d.on_io_complete(o1.next.unwrap().due());
        assert_eq!(o2.completed.id, 2, "nearest request serviced first");
        let o3 = d.on_io_complete(o2.next.unwrap().due());
        assert_eq!(o3.completed.id, 1);
    }

    #[test]
    fn fifo_preserves_order() {
        let mut d = Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(41));
        let w = d.submit(fg_req(0, 0), SimTime::ZERO).unwrap();
        d.submit(fg_req(1, 10 << 30), SimTime::ZERO);
        d.submit(fg_req(2, 1 << 20), SimTime::ZERO);
        let o1 = d.on_io_complete(w.due());
        let o2 = d.on_io_complete(o1.next.unwrap().due());
        assert_eq!(o2.completed.id, 1);
    }

    #[test]
    fn sstf_reduces_total_seek_time_on_deep_queues() {
        let run = |sched: SchedulerKind| {
            let mut d = Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(42));
            d.set_scheduler(sched);
            let mut rng = SimRng::seed_from(43);
            // Submit a deep batch all at once.
            let mut wake = None;
            for i in 0..64u64 {
                let off = rng.below((16u64 << 30) / 4096) * 4096;
                if let Some(w) = d.submit(fg_req(i, off), SimTime::ZERO) {
                    wake = Some(w);
                }
            }
            let mut t = wake.expect("first submit starts service").due();
            loop {
                let out = d.on_io_complete(t);
                match out.next {
                    Some(w) => t = w.due(),
                    None => break,
                }
            }
            t
        };
        let fifo_done = run(SchedulerKind::Fifo);
        let sstf_done = run(SchedulerKind::Sstf);
        assert!(
            sstf_done.as_secs_f64() < fifo_done.as_secs_f64() * 0.95,
            "SSTF {sstf_done} should beat FIFO {fifo_done} by >5%"
        );
    }

    fn fg_req(id: u64, offset: u64) -> DiskRequest {
        DiskRequest::new(id, IoKind::Write, offset, 16 * 1024, Priority::Foreground)
    }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;

    fn disk(seed: u64) -> Disk {
        let mut d = Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(seed));
        d.set_record_breakdown(true);
        d
    }

    fn fg(id: u64, offset: u64) -> DiskRequest {
        DiskRequest::new(id, IoKind::Write, offset, 16 * 1024, Priority::Foreground)
    }

    #[test]
    fn recording_off_by_default() {
        let mut d = Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(60));
        let w = d.submit(fg(1, 0), SimTime::ZERO).unwrap();
        d.on_io_complete(w.due());
        assert!(d.take_breakdown().is_none());
    }

    #[test]
    fn service_parts_sum_and_queue_wait() {
        let mut d = disk(61);
        let w1 = d.submit(fg(1, 0), SimTime::ZERO).unwrap();
        d.submit(fg(2, 1 << 30), SimTime::ZERO);
        let o1 = d.on_io_complete(w1.due());
        let b1 = d.take_breakdown().unwrap();
        assert_eq!(b1.id, 1);
        assert_eq!(b1.submit, SimTime::ZERO);
        assert_eq!(b1.queue_wait(), Duration::ZERO);
        assert_eq!(b1.seek + b1.rotation + b1.transfer, b1.end.since(b1.start));
        let w2 = o1.next.unwrap();
        d.on_io_complete(w2.due());
        let b2 = d.take_breakdown().unwrap();
        assert_eq!(b2.id, 2);
        // Second request waited out the first one's service time.
        assert_eq!(b2.queue_wait(), w1.due().since(SimTime::ZERO));
        assert_eq!(b2.spinup_stall, Duration::ZERO);
        assert_eq!(b2.bg_interference, Duration::ZERO);
        assert_eq!(
            b2.queue_wait()
                + b2.spinup_stall
                + b2.bg_interference
                + b2.seek
                + b2.rotation
                + b2.transfer,
            b2.total()
        );
    }

    #[test]
    fn spin_up_stall_is_attributed() {
        let mut d = Disk::with_initial_state(
            0,
            DiskParams::ultrastar_36z15(),
            SimRng::seed_from(62),
            PowerState::Standby,
        );
        d.set_record_breakdown(true);
        let w = d.submit(fg(1, 0), SimTime::ZERO).unwrap();
        let DiskWake::SpinUp(t) = w else { panic!() };
        let io = d.on_spin_up_complete(t).unwrap();
        d.on_io_complete(io.due());
        let b = d.take_breakdown().unwrap();
        assert_eq!(b.spinup_stall, DiskParams::ultrastar_36z15().spin_up_time);
        assert_eq!(b.queue_wait(), Duration::ZERO);
    }

    #[test]
    fn background_interference_is_attributed() {
        let mut d = disk(63);
        // Past the idle guard so the background transfer dispatches.
        let t0 = SimTime::from_secs(1);
        let w = d
            .submit(
                DiskRequest::new(10, IoKind::Write, 0, 1 << 20, Priority::Background),
                t0,
            )
            .unwrap();
        // Foreground arrives mid-background-transfer.
        let t_fg = t0 + Duration::from_micros(100);
        assert!(d.submit(fg(1, 1 << 30), t_fg).is_none());
        let o = d.on_io_complete(w.due());
        let bg_done = w.due();
        let b_bg = d.take_breakdown().unwrap();
        assert!(b_bg.background);
        d.on_io_complete(o.next.unwrap().due());
        let b = d.take_breakdown().unwrap();
        assert_eq!(b.id, 1);
        assert_eq!(b.bg_interference, bg_done.since(t_fg));
        assert_eq!(b.queue_wait(), Duration::ZERO);
    }
}

#[cfg(test)]
mod queue_depth_tests {
    use super::*;

    #[test]
    fn max_queue_depth_tracks_backlog() {
        let mut d = Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(50));
        let mut wake = None;
        for i in 0..5u64 {
            let r = DiskRequest::new(i, IoKind::Write, i * (1 << 20), 4096, Priority::Foreground);
            if let Some(w) = d.submit(r, SimTime::ZERO) {
                wake = Some(w);
            }
        }
        assert_eq!(d.io_stats().max_queue_depth, 5);
        // Drain.
        let mut t = wake.unwrap().due();
        while let Some(w) = d.on_io_complete(t).next {
            t = w.due();
        }
        assert_eq!(d.io_stats().max_queue_depth, 5, "high-water mark persists");
    }
}
