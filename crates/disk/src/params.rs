//! Disk mechanical and power parameters.
//!
//! Parameter values for the IBM Ultrastar 36Z15 are taken verbatim from
//! Table II of the paper; the geometry (cylinder count) is derived from the
//! public datasheet. Alternate capacities (used by the paper's disk-size
//! sensitivity study, §V-C) are produced with [`DiskParams::with_capacity`].

use rolo_sim::Duration;
use serde::{Deserialize, Serialize};

/// Mechanical, geometric and power parameters of a disk model.
///
/// # Example
///
/// ```
/// use rolo_disk::DiskParams;
/// let p = DiskParams::ultrastar_36z15();
/// assert_eq!(p.rpm, 15_000);
/// assert!((p.full_rotation().as_millis_f64() - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Human-readable model name.
    pub model: String,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Datasheet average seek time.
    pub avg_seek: Duration,
    /// Fixed per-seek settle/overhead component.
    pub seek_settle: Duration,
    /// Sustained media transfer rate in bytes per second.
    pub transfer_rate: u64,
    /// Number of logical cylinders used by the seek-distance model.
    pub cylinders: u32,
    /// Power drawn while actively servicing a request (W).
    pub power_active_w: f64,
    /// Power drawn while spun up but idle (W).
    pub power_idle_w: f64,
    /// Power drawn while spun down (W).
    pub power_standby_w: f64,
    /// Energy consumed by one spin-down transition (J).
    pub spin_down_energy_j: f64,
    /// Energy consumed by one spin-up transition (J).
    pub spin_up_energy_j: f64,
    /// Wall time of a spin-down transition.
    pub spin_down_time: Duration,
    /// Wall time of a spin-up transition.
    pub spin_up_time: Duration,
}

impl DiskParams {
    /// The IBM Ultrastar 36Z15 used throughout the paper's evaluation
    /// (Table II): 18.4 GB, 15 kRPM, 3.4 ms average seek, 55 MB/s,
    /// 13.5/10.2/2.5 W active/idle/standby, 13 J / 135 J and 1.5 s / 10.9 s
    /// spin down/up.
    pub fn ultrastar_36z15() -> Self {
        DiskParams {
            model: "IBM Ultrastar 36Z15".to_owned(),
            capacity_bytes: 18_400 * 1024 * 1024, // 18.4 GB (binary MB, close enough to datasheet)
            rpm: 15_000,
            avg_seek: Duration::from_micros(3_400),
            seek_settle: Duration::from_micros(300),
            transfer_rate: 55 * 1024 * 1024,
            cylinders: 18_986, // datasheet user cylinders
            power_active_w: 13.5,
            power_idle_w: 10.2,
            power_standby_w: 2.5,
            spin_down_energy_j: 13.0,
            spin_up_energy_j: 135.0,
            spin_down_time: Duration::from_millis(1_500),
            spin_up_time: Duration::from_millis(10_900),
        }
    }

    /// The Seagate Cheetah 15K.5 the paper names for its disk-model
    /// future work (§V-C: *"The energy saving effectiveness of RoLo over
    /// GRAID under different disk models, such as Seagate Cheetah 15K.5
    /// ... will be studied as our future work"*). Datasheet-approximate:
    /// 300 GB, 15 kRPM, 3.5 ms average seek, ~85 MB/s sustained,
    /// 17.8/12.0/2.8 W active/idle/standby, heavier spindle (15 s
    /// spin-up at 200 J).
    pub fn cheetah_15k5() -> Self {
        DiskParams {
            model: "Seagate Cheetah 15K.5".to_owned(),
            capacity_bytes: 300_000 * 1024 * 1024,
            rpm: 15_000,
            avg_seek: Duration::from_micros(3_500),
            seek_settle: Duration::from_micros(300),
            transfer_rate: 85 * 1024 * 1024,
            cylinders: 50_864,
            power_active_w: 17.8,
            power_idle_w: 12.0,
            power_standby_w: 2.8,
            spin_down_energy_j: 20.0,
            spin_up_energy_j: 200.0,
            spin_down_time: Duration::from_millis(2_000),
            spin_up_time: Duration::from_millis(15_000),
        }
    }

    /// Same mechanics with a different usable capacity (GiB), for the disk
    /// size sensitivity study. The cylinder count scales with capacity so
    /// seek distances stay proportionate.
    pub fn with_capacity(&self, capacity_gib: f64) -> Self {
        assert!(capacity_gib > 0.0, "capacity must be positive");
        let capacity_bytes = (capacity_gib * 1024.0 * 1024.0 * 1024.0) as u64;
        let ratio = capacity_bytes as f64 / self.capacity_bytes as f64;
        DiskParams {
            model: format!("{} ({capacity_gib} GiB)", self.model),
            capacity_bytes,
            cylinders: ((self.cylinders as f64 * ratio).round() as u32).max(64),
            ..self.clone()
        }
    }

    /// Time of one full platter rotation.
    pub fn full_rotation(&self) -> Duration {
        Duration::from_secs_f64(60.0 / f64::from(self.rpm))
    }

    /// Average rotational latency (half a rotation).
    pub fn avg_rotation(&self) -> Duration {
        self.full_rotation() / 2
    }

    /// Bytes per logical cylinder under the simplified geometry.
    pub fn bytes_per_cylinder(&self) -> u64 {
        (self.capacity_bytes / u64::from(self.cylinders)).max(1)
    }

    /// Transfer time for `bytes` at the sustained media rate.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.transfer_rate as f64)
    }

    /// The break-even time of the spin-down/up cycle: the shortest idle
    /// period for which spinning down saves energy versus idling. Idle
    /// periods shorter than this (the common case, per §II) make spin-down
    /// counterproductive.
    pub fn break_even_time(&self) -> Duration {
        // Solve: idle_power * T = down_e + up_e + standby_power * (T - down_t - up_t)
        let trans_e = self.spin_down_energy_j + self.spin_up_energy_j;
        let trans_t = self.spin_down_time + self.spin_up_time;
        let delta_p = self.power_idle_w - self.power_standby_w;
        assert!(delta_p > 0.0, "idle power must exceed standby power");
        let t = (trans_e - self.power_standby_w * trans_t.as_secs_f64()) / delta_p;
        Duration::from_secs_f64(t.max(trans_t.as_secs_f64()))
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        Self::ultrastar_36z15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let p = DiskParams::ultrastar_36z15();
        assert_eq!(p.rpm, 15_000);
        assert_eq!(p.avg_seek, Duration::from_micros(3_400));
        assert_eq!(p.power_active_w, 13.5);
        assert_eq!(p.power_idle_w, 10.2);
        assert_eq!(p.power_standby_w, 2.5);
        assert_eq!(p.spin_up_energy_j, 135.0);
        assert_eq!(p.spin_down_energy_j, 13.0);
        assert_eq!(p.spin_up_time, Duration::from_millis(10_900));
        assert_eq!(p.spin_down_time, Duration::from_millis(1_500));
    }

    #[test]
    fn rotation_is_4ms_at_15k() {
        let p = DiskParams::ultrastar_36z15();
        assert!((p.full_rotation().as_millis_f64() - 4.0).abs() < 1e-9);
        assert!((p.avg_rotation().as_millis_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_matches_rate() {
        let p = DiskParams::ultrastar_36z15();
        let t = p.transfer_time(55 * 1024 * 1024);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        // 64 KiB at 55 MiB/s ~ 1.136 ms
        let t64k = p.transfer_time(64 * 1024);
        assert!((t64k.as_millis_f64() - 1.136).abs() < 0.01);
    }

    #[test]
    fn capacity_scaling_keeps_mechanics() {
        let p = DiskParams::ultrastar_36z15();
        let half = p.with_capacity(9.2);
        assert_eq!(half.rpm, p.rpm);
        assert_eq!(half.avg_seek, p.avg_seek);
        assert!(half.capacity_bytes < p.capacity_bytes);
        assert!(half.cylinders < p.cylinders);
    }

    #[test]
    fn break_even_is_many_seconds() {
        let p = DiskParams::ultrastar_36z15();
        let be = p.break_even_time();
        // (148 - 2.5*12.4) / 7.7 ≈ 15.2 s
        assert!(be.as_secs_f64() > 12.0 && be.as_secs_f64() < 20.0, "{be}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn with_capacity_rejects_zero() {
        DiskParams::ultrastar_36z15().with_capacity(0.0);
    }

    #[test]
    fn cheetah_is_bigger_faster_hungrier() {
        let u = DiskParams::ultrastar_36z15();
        let c = DiskParams::cheetah_15k5();
        assert!(c.capacity_bytes > 10 * u.capacity_bytes);
        assert!(c.transfer_rate > u.transfer_rate);
        assert!(c.power_idle_w > u.power_idle_w);
        assert_eq!(c.rpm, 15_000);
        // Heavier spindle → longer break-even.
        assert!(c.break_even_time() > u.break_even_time());
    }
}
