//! Positioning-aware service-time model.
//!
//! Service time = seek + rotational latency + media transfer, with head
//! position tracked across requests:
//!
//! * **Seek** follows the classical `settle + b·√(cylinder distance)` curve.
//!   The coefficient `b` is calibrated so that the *expected* seek over
//!   uniformly random cylinder pairs equals the datasheet average seek
//!   (for `U = |X−Y|` with `X,Y ~ U[0,1]`, `E[√U] = 8/15`).
//! * **Rotational latency** is uniform in `[0, full rotation)` for
//!   non-sequential accesses and zero when the request starts exactly where
//!   the previous one ended (the sequential-append fast path that logging
//!   architectures exploit).
//! * **Transfer** is `bytes / sustained rate`.
//!
//! This reproduces the two regimes that drive every result in the paper:
//! random in-place writes cost ~½ rotation + seek, sequential log appends
//! cost transfer only.

use crate::params::DiskParams;
use rolo_sim::{Duration, SimRng};

/// Decomposition of one service time into its physical parts.
///
/// `seek + rotation + transfer` always equals the value
/// [`ServiceModel::service_time`] would have returned for the same
/// request — the decomposition is exact, not a re-estimate, so the span
/// layer can attribute every microsecond of media time to a phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceParts {
    /// Arm movement under the √-distance curve (zero when sequential or
    /// rewriting within the current cylinder).
    pub seek: Duration,
    /// Rotational latency: a uniform draw for random accesses, one full
    /// revolution for the same-cylinder rewrite (RMW) case, the
    /// datasheet average for the first-ever request, zero when
    /// sequential.
    pub rotation: Duration,
    /// Media transfer (`bytes / sustained rate`).
    pub transfer: Duration,
}

impl ServiceParts {
    /// Total service time: the sum of the three parts.
    pub fn total(&self) -> Duration {
        self.seek + self.rotation + self.transfer
    }
}

/// Computes per-request service times while tracking head position.
///
/// # Example
///
/// ```
/// use rolo_disk::{DiskParams, ServiceModel};
/// use rolo_sim::SimRng;
///
/// let params = DiskParams::ultrastar_36z15();
/// let mut m = ServiceModel::new(params.clone(), SimRng::seed_from(3));
/// let first = m.service_time(0, 64 * 1024);
/// let sequential = m.service_time(64 * 1024, 64 * 1024);
/// // The sequential follow-up pays neither seek nor rotation.
/// assert_eq!(sequential, params.transfer_time(64 * 1024));
/// assert!(first >= sequential);
/// ```
#[derive(Debug, Clone)]
pub struct ServiceModel {
    params: DiskParams,
    rng: SimRng,
    /// Byte offset immediately after the last transferred byte; `None`
    /// before the first request (head position unknown).
    head: Option<u64>,
    /// Calibrated √-seek coefficient in microseconds.
    seek_coeff_us: f64,
    /// Pre-drawn rotational-latency samples, consumed in draw order.
    /// Refilled from `rng` in chunks of `batch`; because the rotation
    /// bound is a constant of the model and `rng` feeds nothing else,
    /// the value sequence is identical to scalar per-request draws.
    draws: Vec<u64>,
    next_draw: usize,
    batch: usize,
}

/// Rotation draws pre-fetched per refill; amortizes the per-draw RNG
/// call overhead on the service-time hot path.
const ROTATION_BATCH: usize = 64;

impl ServiceModel {
    /// Creates a model for `params` with its own random stream for
    /// rotational-latency draws.
    pub fn new(params: DiskParams, rng: SimRng) -> Self {
        // E[sqrt(|X-Y|)] = 8/15 for X,Y ~ U[0,1]; calibrate b so that
        // settle + b * 8/15 = avg_seek.
        let variable = params.avg_seek.as_micros() as f64 - params.seek_settle.as_micros() as f64;
        assert!(
            variable > 0.0,
            "average seek must exceed the settle overhead"
        );
        let seek_coeff_us = variable * 15.0 / 8.0;
        ServiceModel {
            params,
            rng,
            head: None,
            seek_coeff_us,
            draws: Vec::new(),
            next_draw: 0,
            batch: ROTATION_BATCH,
        }
    }

    /// Overrides how many rotation draws are pre-fetched per RNG refill.
    /// `1` degenerates to scalar per-request draws; any size yields the
    /// same value sequence (see the draw-order regression test).
    pub fn set_rotation_batch(&mut self, batch: usize) {
        assert!(batch > 0, "rotation batch must be positive");
        self.batch = batch;
    }

    /// The disk parameters this model was built from.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Seek time between two byte offsets under the √-distance curve.
    /// Zero within the same cylinder.
    pub fn seek_time(&self, from: u64, to: u64) -> Duration {
        let bpc = self.params.bytes_per_cylinder();
        let c_from = from / bpc;
        let c_to = to / bpc;
        if c_from == c_to {
            return Duration::ZERO;
        }
        let dist = c_from.abs_diff(c_to) as f64 / f64::from(self.params.cylinders);
        let us = self.params.seek_settle.as_micros() as f64 + self.seek_coeff_us * dist.sqrt();
        Duration::from_micros(us.round() as u64)
    }

    /// True if a request at `offset` continues exactly where the head is.
    pub fn is_sequential(&self, offset: u64) -> bool {
        self.head == Some(offset)
    }

    /// Computes the service time for a request at byte `offset` of length
    /// `bytes`, and advances the head.
    ///
    /// # Panics
    ///
    /// Panics if the request extends past the end of the disk.
    pub fn service_time(&mut self, offset: u64, bytes: u64) -> Duration {
        self.service_parts(offset, bytes).total()
    }

    /// Like [`service_time`](Self::service_time) but returns the
    /// seek/rotation/transfer decomposition. Draws from the same random
    /// stream in the same order, so a run that asks for parts is
    /// bit-identical to one that asks for totals.
    ///
    /// # Panics
    ///
    /// Panics if the request extends past the end of the disk.
    pub fn service_parts(&mut self, offset: u64, bytes: u64) -> ServiceParts {
        assert!(
            offset + bytes <= self.params.capacity_bytes,
            "request [{offset}, {}) exceeds capacity {}",
            offset + bytes,
            self.params.capacity_bytes
        );
        let transfer = self.params.transfer_time(bytes);
        let bpc = self.params.bytes_per_cylinder();
        let (seek, rotation) = match self.head {
            Some(h) if h == offset => (Duration::ZERO, Duration::ZERO),
            // Rewriting (or re-reading) a sector the head just passed on
            // the same cylinder costs a missed revolution — the physics
            // behind the RAID small-write read-modify-write penalty.
            Some(h) if offset < h && h / bpc == offset / bpc => {
                (Duration::ZERO, self.params.full_rotation())
            }
            Some(h) => (self.seek_time(h, offset), self.rotation_draw()),
            // First request ever: charge an average positioning cost.
            None => (self.params.avg_seek, self.params.avg_rotation()),
        };
        self.head = Some(offset + bytes);
        ServiceParts {
            seek,
            rotation,
            transfer,
        }
    }

    /// Current head position (end of last transfer), if known.
    pub fn head_position(&self) -> Option<u64> {
        self.head
    }

    fn rotation_draw(&mut self) -> Duration {
        if self.next_draw == self.draws.len() {
            let full = self.params.full_rotation().as_micros().max(1);
            self.draws.clear();
            self.rng.fill_below(full, self.batch, &mut self.draws);
            self.next_draw = 0;
        }
        let v = self.draws[self.next_draw];
        self.next_draw += 1;
        Duration::from_micros(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model(seed: u64) -> ServiceModel {
        ServiceModel::new(DiskParams::ultrastar_36z15(), SimRng::seed_from(seed))
    }

    #[test]
    fn sequential_pays_transfer_only() {
        let mut m = model(1);
        let _ = m.service_time(1024 * 1024, 64 * 1024);
        let t = m.service_time(1024 * 1024 + 64 * 1024, 64 * 1024);
        assert_eq!(t, m.params().transfer_time(64 * 1024));
    }

    #[test]
    fn random_access_costs_more_than_sequential() {
        let mut m = model(2);
        let _ = m.service_time(0, 4096);
        let far = m.params().capacity_bytes / 2;
        let random = m.service_time(far, 4096);
        assert!(random > m.params().transfer_time(4096));
    }

    #[test]
    fn seek_is_zero_within_cylinder() {
        let m = model(3);
        let bpc = m.params().bytes_per_cylinder();
        assert_eq!(m.seek_time(10, bpc - 1), Duration::ZERO);
        assert!(m.seek_time(0, bpc * 100) > Duration::ZERO);
    }

    #[test]
    fn seek_grows_with_distance() {
        let m = model(4);
        let bpc = m.params().bytes_per_cylinder();
        let near = m.seek_time(0, bpc * 10);
        let far = m.seek_time(0, bpc * 10_000);
        assert!(far > near, "{far} !> {near}");
    }

    #[test]
    fn mean_random_seek_close_to_datasheet() {
        let mut m = model(5);
        let mut rng = SimRng::seed_from(77);
        let cap = m.params().capacity_bytes;
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            let a = rng.below(cap);
            let b = rng.below(cap);
            total += m.seek_time(a, b).as_secs_f64();
        }
        let mean_ms = total / n as f64 * 1e3;
        assert!(
            (mean_ms - 3.4).abs() < 0.15,
            "mean random seek {mean_ms} ms should be ~3.4 ms"
        );
        let _ = &mut m;
    }

    #[test]
    fn rmw_rewrite_costs_full_rotation() {
        // Read X, then write X again: the head just passed the sector, so
        // the rewrite waits out one full revolution.
        let mut m = model(20);
        let x = 512 * 1024;
        let _ = m.service_time(x, 16 * 1024);
        let t = m.service_time(x, 16 * 1024);
        let expect = m.params().full_rotation() + m.params().transfer_time(16 * 1024);
        assert_eq!(t, expect);
    }

    #[test]
    fn parts_sum_to_service_time_with_identical_rng_stream() {
        let mut totals = model(21);
        let mut parts = model(21);
        let mut rng = SimRng::seed_from(22);
        for _ in 0..200 {
            let off = rng.below(totals.params().capacity_bytes - (1 << 20));
            let bytes = 4096 * (1 + rng.below(64));
            let t = totals.service_time(off, bytes);
            let p = parts.service_parts(off, bytes);
            assert_eq!(p.total(), t, "decomposition must be exact");
            assert_eq!(p.transfer, totals.params().transfer_time(bytes));
        }
        assert_eq!(totals.head_position(), parts.head_position());
    }

    #[test]
    fn batched_draws_match_scalar_on_1k_requests() {
        // The RNG batching contract: pre-fetching rotation draws must
        // consume the seeded stream in exactly the order scalar
        // per-request draws would, so every per-request decomposition —
        // and therefore every simulated byte downstream — is identical.
        let mut scalar = model(31);
        scalar.set_rotation_batch(1);
        let mut batched = model(31); // default ROTATION_BATCH
        let mut rng = SimRng::seed_from(32);
        for i in 0..1000 {
            let off = rng.below(scalar.params().capacity_bytes - (1 << 21));
            let bytes = 4096 * (1 + rng.below(128));
            let a = scalar.service_parts(off, bytes);
            let b = batched.service_parts(off, bytes);
            assert_eq!(a, b, "request {i}: batched parts diverged from scalar");
        }
        assert_eq!(scalar.head_position(), batched.head_position());
    }

    #[test]
    fn head_advances() {
        let mut m = model(6);
        assert_eq!(m.head_position(), None);
        m.service_time(100 * 1024, 64 * 1024);
        assert_eq!(m.head_position(), Some(164 * 1024));
        assert!(m.is_sequential(164 * 1024));
        assert!(!m.is_sequential(0));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn rejects_out_of_range() {
        let mut m = model(7);
        let cap = m.params().capacity_bytes;
        m.service_time(cap - 10, 4096);
    }

    proptest! {
        #[test]
        fn prop_service_time_at_least_transfer(
            offset in 0u64..18_000 * 1024 * 1024,
            kib in 1u64..2048,
        ) {
            let mut m = model(8);
            let bytes = kib * 1024;
            prop_assume!(offset + bytes <= m.params().capacity_bytes);
            let t = m.service_time(offset, bytes);
            prop_assert!(t >= m.params().transfer_time(bytes));
        }

        #[test]
        fn prop_seek_symmetric(a in 0u64..18_000u64 * 1024 * 1024, b in 0u64..18_000u64 * 1024 * 1024) {
            let m = model(9);
            prop_assert_eq!(m.seek_time(a, b), m.seek_time(b, a));
        }

        #[test]
        fn prop_seek_bounded_by_full_stroke(a in 0u64..18_000u64 * 1024 * 1024, b in 0u64..18_000u64 * 1024 * 1024) {
            let m = model(10);
            let full = m.seek_time(0, m.params().capacity_bytes - 1);
            prop_assert!(m.seek_time(a, b) <= full);
        }
    }
}
