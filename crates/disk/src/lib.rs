#![warn(missing_docs)]
//! Disk service-time and power model for the RoLo simulator.
//!
//! This crate is the reproduction's substitute for DiskSim 4.0 augmented
//! with the Dempsey power model (see DESIGN.md §1). It provides:
//!
//! * [`DiskParams`] — mechanical and power parameters, including the IBM
//!   Ultrastar 36Z15 configuration used throughout the paper (Table II);
//! * [`service`] — a positioning-aware service-time model (seek +
//!   rotation + transfer) that recognises sequential accesses, which is
//!   the physical effect every logging architecture exploits;
//! * [`power`] — a five-state power model (ACTIVE, IDLE, STANDBY, spinning
//!   up/down) with energy integration and spin-cycle counting;
//! * [`Disk`] — a single simulated disk: a two-priority request queue
//!   (foreground user I/O vs. background destage I/O), the power state
//!   machine, and per-disk statistics.
//!
//! The disk is a *passive* state machine: it never owns the event queue.
//! Callers submit requests and feed completions back in; every method that
//! starts an activity returns the simulated instant at which the caller
//! must deliver the corresponding completion event. This inversion keeps
//! the hot path free of shared mutability.
//!
//! # Example
//!
//! ```
//! use rolo_disk::{Disk, DiskParams, DiskRequest, IoKind, Priority};
//! use rolo_sim::{SimRng, SimTime};
//!
//! let mut disk = Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(1));
//! let req = DiskRequest::new(1, IoKind::Write, 0, 64 * 1024, Priority::Foreground);
//! let wake = disk.submit(req, SimTime::ZERO).unwrap();
//! let done = disk.on_io_complete(wake.due());
//! assert_eq!(done.completed.id, 1);
//! ```

pub mod disk;
pub mod integrity;
pub mod params;
pub mod power;
pub mod service;

pub use disk::{
    CompletionOutcome, Disk, DiskIoStats, DiskRequest, DiskWake, IdleGapHistogram, IoKind,
    IoOutcome, Priority, SchedulerKind, ServiceBreakdown,
};
pub use integrity::IntegrityMap;
pub use params::DiskParams;
pub use power::{DiskEnergyReport, EnergyMeter, PowerState};
pub use service::{ServiceModel, ServiceParts};

/// Identifier of a disk within an array.
pub type DiskId = usize;
