//! Calibrated profiles for the seven MSR Cambridge traces the paper uses.
//!
//! Each profile carries the characteristics the paper publishes (Tables
//! III and VI) plus the qualitative attributes of Table V (burstiness
//! class, read locality). Two of the published numbers require careful
//! interpretation, and the paper's own Table I pins the interpretation
//! down:
//!
//! * **"Write Capacity" is the total write *volume* of the week-long
//!   trace.** With an 8 GB per-disk logger, RoLo rotates its logger once
//!   per ~8 GB logged; Table I reports 4 rotations for src2_2 (33 GB) and
//!   12 for proj_0 (99.3 GB) — exactly `volume / 8 GB`. Likewise GRAID's
//!   spin counts match `volume / (0.8 × 16 GB)` destage cycles × 20
//!   mirror disks.
//! * **Table III's IOPS is therefore the *busy-interval* arrival rate**,
//!   not the week-long mean (33 GB over a week is only ~56 KB/s, while
//!   78.8 IOPS × 63.6 KB would be ~5 MB/s). We model this with an ON/OFF
//!   arrival process whose ON-phase rate is the table IOPS and whose duty
//!   cycle is derived so the long-run byte rate matches the write volume.
//!   This is also what makes src2_2 "Very High" burstiness (duty ≈ 1 %)
//!   versus proj_0 "Very Low" (duty ≈ 14 %), matching Table V.

use crate::synth::{Burstiness, SizeDist, SyntheticConfig, SyntheticTrace};
use rolo_sim::Duration;
use serde::{Deserialize, Serialize};

/// Seconds in the week-long MSR collection window.
pub const WEEK_SECS: f64 = 7.0 * 24.0 * 3600.0;

/// A calibrated description of one of the paper's traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Trace name as used in the paper (e.g. `"src2_2"`).
    pub name: &'static str,
    /// Fraction of requests that are writes (Table III/VI).
    pub write_ratio: f64,
    /// Busy-interval request arrival rate (Table III/VI "IOPS").
    pub burst_iops: f64,
    /// Mean request size over all requests (Table III/VI), bytes.
    pub avg_req_bytes: u64,
    /// Mean read request size (given for src2_2/proj_0 in §V-C), bytes.
    pub read_req_bytes: u64,
    /// Total bytes written over the one-week trace (Table III/VI "Write
    /// Capacity").
    pub week_write_volume: u64,
    /// Burstiness class (Table V wording).
    pub burstiness_class: &'static str,
    /// Read-locality: achievable cache hit rate (Table V where given).
    pub read_hot_fraction: f64,
    /// Mean requests per back-to-back micro-batch during busy intervals.
    pub batch_mean: f64,
}

impl TraceProfile {
    /// Mean *write* request size implied by the overall and read means.
    pub fn write_req_bytes(&self) -> u64 {
        if self.write_ratio >= 1.0 {
            return self.avg_req_bytes;
        }
        let r = 1.0 - self.write_ratio;
        let w = (self.avg_req_bytes as f64 - r * self.read_req_bytes as f64) / self.write_ratio;
        (w.max(4096.0)) as u64
    }

    /// Long-run average write bandwidth (bytes/s) of the original trace.
    pub fn avg_write_bandwidth(&self) -> f64 {
        self.week_write_volume as f64 / WEEK_SECS
    }

    /// Long-run average request rate implied by the write volume.
    pub fn avg_iops(&self) -> f64 {
        let per_write = self.write_ratio * self.write_req_bytes() as f64;
        (self.avg_write_bandwidth() / per_write).min(self.burst_iops)
    }

    /// ON-phase duty cycle: average rate ÷ busy rate.
    pub fn duty_cycle(&self) -> f64 {
        (self.avg_iops() / self.burst_iops).clamp(0.0, 1.0)
    }

    /// Total bytes written over a run of `duration` (in expectation).
    pub fn write_volume(&self, duration: Duration) -> u64 {
        (self.avg_write_bandwidth() * duration.as_secs_f64()) as u64
    }

    /// Write footprint for a run of `duration`. The paper's volume figures
    /// show little overwrite at week scale (Table I's rotation counts
    /// equal volume ÷ logger size), so the footprint tracks the volume,
    /// floored so short tests still exercise placement.
    pub fn scaled_footprint(&self, duration: Duration) -> u64 {
        self.write_volume(duration).max(64 << 20)
    }

    /// Builds the synthetic configuration for a run of `duration`.
    pub fn config(&self, duration: Duration) -> SyntheticConfig {
        let fp = self.scaled_footprint(duration);
        let duty = self.duty_cycle();
        let burstiness = if duty >= 0.85 {
            Burstiness::Smooth
        } else {
            Burstiness::Bursty {
                on_fraction: duty.max(1e-3),
                mean_on_secs: 30.0,
            }
        };
        SyntheticConfig {
            iops: self.avg_iops(),
            write_ratio: self.write_ratio,
            read_size: SizeDist::Fixed(self.read_req_bytes),
            write_size: SizeDist::Fixed(self.write_req_bytes()),
            sequential_fraction: 0.3,
            write_footprint: fp,
            read_footprint: (fp * 2).max(256 << 20),
            read_hot_fraction: self.read_hot_fraction,
            // The hot set is deliberately tiny: the paper's hit rates
            // (90.6 % over src2_2's ~2000 reads, with the cache wiped at
            // every logger rotation) imply a popular set of only a
            // handful of blocks that re-warms after a few accesses, not
            // a broad working set.
            hot_set_bytes: 1 << 20,
            burstiness,
            batch_mean: self.batch_mean,
            align: 4096,
        }
    }

    /// Convenience: the record iterator for a run of `duration`.
    pub fn generator(&self, duration: Duration, seed: u64) -> SyntheticTrace {
        self.config(duration).generator(duration, seed)
    }
}

/// `src2_2` — source control; the most write-intensive trace
/// (Table III: 99.62 % writes, 78.80 IOPS, 63.64 KB, 33 GB written;
/// Table V: very high burstiness, 90.6 % read hit rate).
pub fn src2_2() -> TraceProfile {
    TraceProfile {
        name: "src2_2",
        write_ratio: 0.9962,
        burst_iops: 78.80,
        avg_req_bytes: (63.64 * 1024.0) as u64,
        read_req_bytes: (68.08 * 1024.0) as u64,
        week_write_volume: 33 << 30,
        burstiness_class: "Very High",
        read_hot_fraction: 0.9059,
        batch_mean: 8.0,
    }
}

/// `proj_0` — project directories (Table III: 94.90 % writes, 23.89 IOPS,
/// 51.42 KB, 99.3 GB written; Table V: very low burstiness, 26.7 % hit
/// rate).
pub fn proj_0() -> TraceProfile {
    TraceProfile {
        name: "proj_0",
        write_ratio: 0.9490,
        burst_iops: 23.89,
        avg_req_bytes: (51.42 * 1024.0) as u64,
        read_req_bytes: (17.84 * 1024.0) as u64,
        week_write_volume: (99.3 * f64::from(1 << 30)) as u64,
        burstiness_class: "Very Low",
        read_hot_fraction: 0.2667,
        batch_mean: 2.0,
    }
}

/// `mds_0` — media server (Table VI).
pub fn mds_0() -> TraceProfile {
    TraceProfile {
        name: "mds_0",
        write_ratio: 0.8811,
        burst_iops: 2.00,
        avg_req_bytes: (9.20 * 1024.0) as u64,
        read_req_bytes: (9.20 * 1024.0) as u64,
        week_write_volume: 7 << 30,
        burstiness_class: "Low",
        read_hot_fraction: 0.5,
        batch_mean: 2.0,
    }
}

/// `wdev_0` — test web server (Table VI).
pub fn wdev_0() -> TraceProfile {
    TraceProfile {
        name: "wdev_0",
        write_ratio: 0.7992,
        burst_iops: 1.89,
        avg_req_bytes: (9.08 * 1024.0) as u64,
        read_req_bytes: (9.08 * 1024.0) as u64,
        week_write_volume: (7.15 * f64::from(1 << 30)) as u64,
        burstiness_class: "Low",
        read_hot_fraction: 0.5,
        batch_mean: 2.0,
    }
}

/// `web_1` — web/SQL server (Table VI).
pub fn web_1() -> TraceProfile {
    TraceProfile {
        name: "web_1",
        write_ratio: 0.4589,
        burst_iops: 0.27,
        avg_req_bytes: (29.07 * 1024.0) as u64,
        read_req_bytes: (29.07 * 1024.0) as u64,
        week_write_volume: 664 << 20,
        burstiness_class: "Low",
        read_hot_fraction: 0.6,
        batch_mean: 1.0,
    }
}

/// `rsrch_2` — research projects (Table VI).
pub fn rsrch_2() -> TraceProfile {
    TraceProfile {
        name: "rsrch_2",
        write_ratio: 0.3431,
        burst_iops: 0.35,
        avg_req_bytes: (4.08 * 1024.0) as u64,
        read_req_bytes: (4.08 * 1024.0) as u64,
        week_write_volume: 295 << 20,
        burstiness_class: "Low",
        read_hot_fraction: 0.6,
        batch_mean: 1.0,
    }
}

/// `hm_1` — hardware monitoring (Table VI; the most read-intensive).
pub fn hm_1() -> TraceProfile {
    TraceProfile {
        name: "hm_1",
        write_ratio: 0.0466,
        burst_iops: 1.02,
        avg_req_bytes: (15.16 * 1024.0) as u64,
        read_req_bytes: (15.16 * 1024.0) as u64,
        week_write_volume: 553 << 20,
        burstiness_class: "Low",
        read_hot_fraction: 0.6,
        batch_mean: 1.0,
    }
}

/// All seven profiles, write-intensive first (paper order).
pub fn all() -> Vec<TraceProfile> {
    vec![
        src2_2(),
        proj_0(),
        mds_0(),
        wdev_0(),
        web_1(),
        rsrch_2(),
        hm_1(),
    ]
}

/// Looks a profile up by its paper name.
pub fn by_name(name: &str) -> Option<TraceProfile> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn table_iii_values_round_trip() {
        let p = src2_2();
        assert!((p.write_ratio - 0.9962).abs() < 1e-9);
        assert!((p.burst_iops - 78.80).abs() < 1e-9);
        let q = proj_0();
        assert!((q.burst_iops - 23.89).abs() < 1e-9);
    }

    #[test]
    fn write_size_consistent_with_overall_mean() {
        for p in all() {
            let mix = p.write_ratio * p.write_req_bytes() as f64
                + (1.0 - p.write_ratio) * p.read_req_bytes as f64;
            let err = (mix - p.avg_req_bytes as f64).abs() / p.avg_req_bytes as f64;
            assert!(err < 0.05, "{}: mean mismatch {err}", p.name);
        }
    }

    #[test]
    fn table_i_rotation_arithmetic() {
        // The calibration invariant: write volume ÷ 8 GB logger ≈ the
        // paper's RoLo-P rotation counts (Table I: 4 and 12).
        let rotations = |p: &TraceProfile| p.week_write_volume as f64 / (8u64 << 30) as f64;
        assert!((rotations(&src2_2()) - 4.0).abs() < 0.5);
        assert!((rotations(&proj_0()) - 12.0).abs() < 0.5);
    }

    #[test]
    fn duty_cycles_match_burstiness_classes() {
        // src2_2 "Very High" burstiness → tiny duty cycle; proj_0 "Very
        // Low" → an order of magnitude larger.
        let s = src2_2().duty_cycle();
        let p = proj_0().duty_cycle();
        assert!(s < 0.03, "src2_2 duty {s}");
        assert!(p > 5.0 * s, "proj_0 duty {p} vs src2_2 {s}");
    }

    #[test]
    fn avg_iops_far_below_burst_iops_for_bursty_traces() {
        let p = src2_2();
        assert!(p.avg_iops() < p.burst_iops / 10.0);
    }

    #[test]
    fn footprint_scales_with_duration() {
        let p = proj_0();
        let short = p.scaled_footprint(Duration::from_secs(3600));
        let long = p.scaled_footprint(Duration::from_secs(7200));
        assert!(long > short);
        assert!(short >= 64 << 20);
    }

    #[test]
    fn generated_volume_matches_calibration() {
        let p = proj_0();
        // Long enough that the ON/OFF arrival process averages out: at
        // 20 000 s the realized volume is still dominated by a handful
        // of bursts and the error is seed-dependent (up to ~25%).
        let dur = Duration::from_secs(120_000);
        let recs: Vec<_> = p.generator(dur, 17).collect();
        let stats = TraceStats::from_records(&recs, dur);
        let expect = p.write_volume(dur) as f64;
        let err = (stats.bytes_written as f64 - expect).abs() / expect;
        assert!(err < 0.2, "volume err {err}");
        assert!(
            (stats.write_ratio - p.write_ratio).abs() < 0.05,
            "write ratio {}",
            stats.write_ratio
        );
    }

    #[test]
    fn by_name_finds_all() {
        for p in all() {
            assert_eq!(by_name(p.name).unwrap(), p);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn src2_2_is_bursty_wdev_0_is_not() {
        let d = Duration::from_secs(100);
        assert!(matches!(
            src2_2().config(d).burstiness,
            Burstiness::Bursty { .. }
        ));
        // wdev_0's duty cycle is near 1: smooth arrivals.
        assert!(matches!(wdev_0().config(d).burstiness, Burstiness::Smooth));
    }
}
