//! Export of trace records to the MSR Cambridge CSV format.
//!
//! The inverse of [`parse_msr_csv`](crate::msr::parse_msr_csv): write any
//! record stream (synthetic or otherwise) as an MSR-format file, so
//! workloads generated here can be replayed by other tools — or a
//! synthetic trace can be archived alongside an experiment's results.

use crate::record::{ReqKind, TraceRecord};
use std::io::{self, Write};

/// The FILETIME epoch offset used for exported timestamps (an arbitrary
/// but fixed origin so round-trips are exact).
const BASE_TICKS: u64 = 128_166_372_000_000_000;

/// Writes `records` to `out` in MSR CSV format with the given hostname.
///
/// Arrival times are encoded as Windows FILETIME ticks (100 ns units)
/// from a fixed epoch; a header row is included. Parsing the output with
/// [`parse_msr_csv`](crate::msr::parse_msr_csv) reproduces the records
/// exactly up to the parser's arrival normalisation (it re-bases time on
/// the first record).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
///
/// # Example
///
/// ```
/// use rolo_trace::{export_msr_csv, parse_msr_csv, ReqKind, TraceRecord};
/// use rolo_sim::SimTime;
///
/// let recs = vec![
///     TraceRecord::new(SimTime::ZERO, ReqKind::Write, 4096, 8192),
///     TraceRecord::new(SimTime::from_millis(5), ReqKind::Read, 0, 4096),
/// ];
/// let mut buf = Vec::new();
/// export_msr_csv(&recs, "demo", &mut buf)?;
/// let back = parse_msr_csv(buf.as_slice(), None)?;
/// assert_eq!(back, recs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn export_msr_csv<W: Write>(
    records: &[TraceRecord],
    hostname: &str,
    mut out: W,
) -> io::Result<()> {
    writeln!(
        out,
        "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"
    )?;
    for r in records {
        let ticks = BASE_TICKS + r.arrival.as_micros() * 10;
        let kind = match r.kind {
            ReqKind::Read => "Read",
            ReqKind::Write => "Write",
        };
        writeln!(
            out,
            "{ticks},{hostname},0,{kind},{},{},0",
            r.offset, r.bytes
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::parse_msr_csv;
    use crate::synth::SyntheticConfig;
    use rolo_sim::Duration;

    #[test]
    fn synthetic_trace_round_trips_modulo_origin() {
        let cfg = SyntheticConfig::motivation_write_only(40.0);
        let recs: Vec<TraceRecord> = cfg.generator(Duration::from_secs(30), 5).collect();
        let mut buf = Vec::new();
        export_msr_csv(&recs, "synthetic", &mut buf).unwrap();
        let back = parse_msr_csv(buf.as_slice(), None).unwrap();
        // The MSR parser normalises arrivals to the first record, so
        // compare shifted originals.
        let origin = recs[0].arrival;
        assert_eq!(back.len(), recs.len());
        for (a, b) in recs.iter().zip(&back) {
            assert_eq!(
                b.arrival,
                rolo_sim::SimTime::from_micros(a.arrival.as_micros() - origin.as_micros())
            );
            assert_eq!((b.kind, b.offset, b.bytes), (a.kind, a.offset, a.bytes));
        }
    }

    #[test]
    fn empty_trace_is_header_only() {
        let mut buf = Vec::new();
        export_msr_csv(&[], "h", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("Timestamp,"));
    }
}
