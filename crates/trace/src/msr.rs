//! Parser for the MSR Cambridge block-trace CSV format.
//!
//! The MSR Cambridge traces (Narayanan et al., FAST'08 — the traces used
//! by the paper) are CSV lines of the form:
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061629,src2,2,Write,805306368,4096,1331
//! ```
//!
//! `Timestamp` is a Windows FILETIME (100 ns ticks since 1601-01-01);
//! `Offset`/`Size` are bytes; `ResponseTime` (ignored here) is in 100 ns
//! units. Arrival times are normalised so the first record is at time 0.

use crate::record::{ReqKind, TraceRecord};
use rolo_sim::SimTime;
use std::error::Error;
use std::fmt;
use std::io::BufRead;

/// Error from parsing an MSR-format trace.
#[derive(Debug)]
pub enum MsrParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a reason.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for MsrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsrParseError::Io(e) => write!(f, "trace read failed: {e}"),
            MsrParseError::Malformed { line, reason } => {
                write!(f, "malformed trace line {line}: {reason}")
            }
        }
    }
}

impl Error for MsrParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MsrParseError::Io(e) => Some(e),
            MsrParseError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for MsrParseError {
    fn from(e: std::io::Error) -> Self {
        MsrParseError::Io(e)
    }
}

/// Parses an MSR Cambridge trace from a reader.
///
/// Records are returned in file order with arrivals normalised to start at
/// zero. A leading header line (starting with a non-digit) is skipped.
/// Offsets are taken modulo `volume_capacity` if `Some` (the paper replays
/// per-volume traces onto differently sized arrays), otherwise kept raw.
///
/// # Errors
///
/// Returns [`MsrParseError`] on I/O failure or any malformed data line.
///
/// # Example
///
/// ```
/// use rolo_trace::parse_msr_csv;
/// let csv = "128166372003061629,src2,2,Write,4096,8192,1331\n\
///            128166372013061629,src2,2,Read,0,4096,900\n";
/// let recs = parse_msr_csv(csv.as_bytes(), None)?;
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[0].arrival.as_micros(), 0);
/// assert_eq!(recs[1].arrival.as_micros(), 1_000_000); // 10^7 ticks = 1 s
/// # Ok::<(), rolo_trace::MsrParseError>(())
/// ```
pub fn parse_msr_csv<R: BufRead>(
    reader: R,
    volume_capacity: Option<u64>,
) -> Result<Vec<TraceRecord>, MsrParseError> {
    let mut out = Vec::new();
    let mut first_ts: Option<u64> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Skip a header row.
        if idx == 0 && !line.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        let rec = parse_line(line, idx + 1)?;
        let base = *first_ts.get_or_insert(rec.0);
        let ticks = rec.0.checked_sub(base).ok_or(MsrParseError::Malformed {
            line: idx + 1,
            reason: "timestamp goes backwards past the first record".into(),
        })?;
        let offset = match volume_capacity {
            Some(cap) if cap > rec.3 => (rec.2 % (cap - rec.3)).min(cap - rec.3),
            Some(_) => 0,
            None => rec.2,
        };
        out.push(TraceRecord {
            // 100 ns ticks → µs.
            arrival: SimTime::from_micros(ticks / 10),
            kind: rec.1,
            offset,
            bytes: rec.3,
        });
    }
    Ok(out)
}

/// (timestamp ticks, kind, offset, size)
fn parse_line(line: &str, lineno: usize) -> Result<(u64, ReqKind, u64, u64), MsrParseError> {
    let malformed = |reason: &str| MsrParseError::Malformed {
        line: lineno,
        reason: reason.to_owned(),
    };
    let mut fields = line.split(',');
    let ts: u64 = fields
        .next()
        .ok_or_else(|| malformed("missing timestamp"))?
        .trim()
        .parse()
        .map_err(|_| malformed("unparseable timestamp"))?;
    let _host = fields.next().ok_or_else(|| malformed("missing hostname"))?;
    let _disk = fields
        .next()
        .ok_or_else(|| malformed("missing disk number"))?;
    let kind = match fields
        .next()
        .ok_or_else(|| malformed("missing request type"))?
        .trim()
    {
        t if t.eq_ignore_ascii_case("read") => ReqKind::Read,
        t if t.eq_ignore_ascii_case("write") => ReqKind::Write,
        other => {
            return Err(malformed(&format!("unknown request type {other:?}")));
        }
    };
    let offset: u64 = fields
        .next()
        .ok_or_else(|| malformed("missing offset"))?
        .trim()
        .parse()
        .map_err(|_| malformed("unparseable offset"))?;
    let size: u64 = fields
        .next()
        .ok_or_else(|| malformed("missing size"))?
        .trim()
        .parse()
        .map_err(|_| malformed("unparseable size"))?;
    if size == 0 {
        return Err(malformed("zero-length request"));
    }
    Ok((ts, kind, offset, size))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
128166372003061629,src2,2,Write,805306368,4096,1331
128166372003061639,src2,2,write,805310464,8192,1100
128166372013061629,src2,2,Read,0,4096,900
";

    #[test]
    fn parses_sample() {
        let recs = parse_msr_csv(SAMPLE.as_bytes(), None).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].kind, ReqKind::Write);
        assert_eq!(recs[0].offset, 805306368);
        assert_eq!(recs[0].bytes, 4096);
        assert_eq!(recs[0].arrival, SimTime::ZERO);
        // Case-insensitive type.
        assert_eq!(recs[1].kind, ReqKind::Write);
        assert_eq!(recs[1].arrival.as_micros(), 1); // 10 ticks
        assert_eq!(recs[2].kind, ReqKind::Read);
        assert_eq!(recs[2].arrival.as_micros(), 1_000_000);
    }

    #[test]
    fn skips_header() {
        let csv = format!("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n{SAMPLE}");
        let recs = parse_msr_csv(csv.as_bytes(), None).unwrap();
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn wraps_offsets_to_capacity() {
        let recs = parse_msr_csv(SAMPLE.as_bytes(), Some(1 << 20)).unwrap();
        for r in &recs {
            assert!(r.end() <= 1 << 20, "{r:?}");
        }
    }

    #[test]
    fn rejects_garbage() {
        // A non-digit first line is treated as a header, but garbage on a
        // later line is an error.
        assert!(parse_msr_csv("header\nnot,a,trace".as_bytes(), None).is_err());
        assert!(parse_msr_csv("1,h,0,Frobnicate,0,4096,1".as_bytes(), None).is_err());
        assert!(parse_msr_csv("1,h,0,Read,0,0,1".as_bytes(), None).is_err());
        assert!(parse_msr_csv("1,h,0,Read,xyz,4096,1".as_bytes(), None).is_err());
    }

    #[test]
    fn rejects_backwards_time() {
        let csv = "100,h,0,Read,0,4096,1\n50,h,0,Read,0,4096,1\n";
        let err = parse_msr_csv(csv.as_bytes(), None).unwrap_err();
        assert!(err.to_string().contains("backwards"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let recs = parse_msr_csv("".as_bytes(), None).unwrap();
        assert!(recs.is_empty());
    }
}
