//! Trace statistics — the columns of the paper's Tables III and VI.

use crate::record::TraceRecord;
use rolo_sim::Duration;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Aggregate characteristics of a trace, in the units of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of records.
    pub requests: u64,
    /// Fraction of requests that are writes.
    pub write_ratio: f64,
    /// Mean arrival rate over the analysed window.
    pub iops: f64,
    /// Mean request size in bytes, over all requests.
    pub avg_req_bytes: f64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Unique bytes touched by writes (4 KiB granularity) — the "Write
    /// Capacity" column of Table III.
    pub write_footprint: u64,
}

impl TraceStats {
    /// Computes statistics over `records` for a window of `duration`.
    ///
    /// The footprint is tracked at 4 KiB granularity, matching the
    /// alignment of both the generator and the MSR traces.
    pub fn from_records(records: &[TraceRecord], duration: Duration) -> TraceStats {
        const GRAIN: u64 = 4096;
        let mut writes = 0u64;
        let mut bytes_written = 0u64;
        let mut bytes_read = 0u64;
        let mut total_bytes = 0u64;
        let mut blocks: HashSet<u64> = HashSet::new();
        for r in records {
            total_bytes += r.bytes;
            if r.kind.is_write() {
                writes += 1;
                bytes_written += r.bytes;
                let first = r.offset / GRAIN;
                let last = (r.end() - 1) / GRAIN;
                for b in first..=last {
                    blocks.insert(b);
                }
            } else {
                bytes_read += r.bytes;
            }
        }
        let n = records.len() as u64;
        let secs = duration.as_secs_f64();
        TraceStats {
            requests: n,
            write_ratio: if n == 0 {
                0.0
            } else {
                writes as f64 / n as f64
            },
            iops: if secs == 0.0 { 0.0 } else { n as f64 / secs },
            avg_req_bytes: if n == 0 {
                0.0
            } else {
                total_bytes as f64 / n as f64
            },
            bytes_written,
            bytes_read,
            write_footprint: blocks.len() as u64 * GRAIN,
        }
    }

    /// Overwrite factor: total written ÷ unique written (≥ 1 when any
    /// write exists).
    pub fn overwrite_factor(&self) -> f64 {
        if self.write_footprint == 0 {
            return 0.0;
        }
        self.bytes_written as f64 / self.write_footprint as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ReqKind;
    use rolo_sim::SimTime;

    fn rec(t: u64, kind: ReqKind, offset: u64, bytes: u64) -> TraceRecord {
        TraceRecord::new(SimTime::from_secs(t), kind, offset, bytes)
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::from_records(&[], Duration::from_secs(10));
        assert_eq!(s.requests, 0);
        assert_eq!(s.write_ratio, 0.0);
        assert_eq!(s.overwrite_factor(), 0.0);
    }

    #[test]
    fn counts_and_ratios() {
        let recs = vec![
            rec(0, ReqKind::Write, 0, 8192),
            rec(1, ReqKind::Write, 0, 8192), // overwrite
            rec(2, ReqKind::Read, 4096, 4096),
            rec(3, ReqKind::Write, 16384, 4096),
        ];
        let s = TraceStats::from_records(&recs, Duration::from_secs(4));
        assert_eq!(s.requests, 4);
        assert!((s.write_ratio - 0.75).abs() < 1e-12);
        assert_eq!(s.bytes_written, 20480);
        assert_eq!(s.bytes_read, 4096);
        // Unique blocks: {0,1} from the first two writes + {4}.
        assert_eq!(s.write_footprint, 3 * 4096);
        assert!((s.overwrite_factor() - 20480.0 / 12288.0).abs() < 1e-12);
        assert!((s.iops - 1.0).abs() < 1e-12);
    }

    #[test]
    fn footprint_spans_partial_blocks() {
        // A write crossing a block boundary touches both blocks.
        let recs = vec![rec(0, ReqKind::Write, 4000, 200)];
        let s = TraceStats::from_records(&recs, Duration::from_secs(1));
        assert_eq!(s.write_footprint, 2 * 4096);
    }
}
