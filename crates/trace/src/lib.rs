#![warn(missing_docs)]
//! Block I/O trace infrastructure: records, the MSR Cambridge trace
//! parser, calibrated synthetic workload generators, and trace statistics.
//!
//! The paper evaluates RoLo with seven MSR Cambridge block traces
//! (src2_2, proj_0, mds_0, wdev_0, web_1, rsrch_2, hm_1). Those traces are
//! not redistributable, so this crate provides two interchangeable
//! sources:
//!
//! * [`msr`] — a parser for the genuine MSR trace CSV format, so real
//!   traces drop in unchanged when available;
//! * [`synth`] + [`profiles`] — synthetic generators calibrated to each
//!   trace's *published* characteristics (Tables III and VI: write ratio,
//!   IOPS, mean request size, write footprint) plus the burstiness class
//!   and read-locality the authors report in Table V. DESIGN.md §1
//!   documents why this substitution preserves the paper's behaviour.
//!
//! # Example
//!
//! ```
//! use rolo_trace::{profiles, TraceStats};
//! use rolo_sim::Duration;
//!
//! let profile = profiles::src2_2();
//! let records: Vec<_> = profile
//!     .generator(Duration::from_secs(600), 42)
//!     .collect();
//! let stats = TraceStats::from_records(&records, Duration::from_secs(600));
//! assert!((stats.write_ratio - 0.9962).abs() < 0.02);
//! ```

pub mod burstiness;
pub mod export;
pub mod msr;
pub mod profiles;
pub mod record;
pub mod stats;
pub mod synth;
pub mod tools;

pub use export::export_msr_csv;
pub use msr::{parse_msr_csv, MsrParseError};
pub use profiles::TraceProfile;
pub use record::{ReqKind, TraceRecord};
pub use stats::TraceStats;
pub use synth::{Burstiness, SizeDist, SyntheticConfig, SyntheticTrace};
