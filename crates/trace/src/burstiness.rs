//! Burstiness measurement — the quantitative backing for Table V's
//! qualitative "Very Low" … "Very High" labels.
//!
//! Two standard measures over the arrival process:
//!
//! * the **index of dispersion for counts** (IDC): the variance-to-mean
//!   ratio of per-window arrival counts (1 for Poisson, ≫ 1 for bursty);
//! * the **squared coefficient of variation** (CV²) of inter-arrival
//!   times (1 for Poisson).

use crate::record::TraceRecord;
use rolo_sim::Duration;
use serde::{Deserialize, Serialize};

/// Burstiness measures of an arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burstiness {
    /// Variance/mean of per-window arrival counts.
    pub index_of_dispersion: f64,
    /// Squared coefficient of variation of inter-arrival gaps.
    pub cv2_interarrival: f64,
    /// Number of analysis windows used.
    pub windows: usize,
}

impl Burstiness {
    /// Maps the index of dispersion onto the paper's Table V wording.
    pub fn classify(&self) -> &'static str {
        match self.index_of_dispersion {
            x if x < 2.0 => "Very Low",
            x if x < 10.0 => "Low",
            x if x < 50.0 => "High",
            _ => "Very High",
        }
    }
}

/// Measures burstiness over `records` with the given counting window.
///
/// Returns `None` when there are fewer than two records or fewer than two
/// windows (nothing meaningful to measure).
///
/// # Panics
///
/// Panics if `window` is zero.
///
/// # Example
///
/// ```
/// use rolo_trace::{burstiness, profiles};
/// use rolo_sim::Duration;
///
/// let recs: Vec<_> = profiles::src2_2()
///     .generator(Duration::from_secs(40_000), 3)
///     .collect();
/// let b = burstiness::measure(&recs, Duration::from_secs(60)).unwrap();
/// assert!(b.index_of_dispersion > 10.0, "src2_2 is strongly bursty");
/// ```
pub fn measure(records: &[TraceRecord], window: Duration) -> Option<Burstiness> {
    assert!(!window.is_zero(), "zero analysis window");
    if records.len() < 2 {
        return None;
    }
    let span = records.last()?.arrival.since(records.first()?.arrival);
    let nwin = (span.as_micros() / window.as_micros()) as usize + 1;
    if nwin < 2 {
        return None;
    }
    let base = records.first()?.arrival;
    let mut counts = vec![0f64; nwin];
    for r in records {
        let w = (r.arrival.since(base).as_micros() / window.as_micros()) as usize;
        counts[w.min(nwin - 1)] += 1.0;
    }
    let mean = counts.iter().sum::<f64>() / nwin as f64;
    let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / nwin as f64;
    let idc = if mean > 0.0 { var / mean } else { 0.0 };

    let gaps: Vec<f64> = records
        .windows(2)
        .map(|w| w[1].arrival.since(w[0].arrival).as_secs_f64())
        .collect();
    let gmean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let gvar = gaps.iter().map(|g| (g - gmean).powi(2)).sum::<f64>() / gaps.len() as f64;
    let cv2 = if gmean > 0.0 {
        gvar / (gmean * gmean)
    } else {
        0.0
    };

    Some(Burstiness {
        index_of_dispersion: idc,
        cv2_interarrival: cv2,
        windows: nwin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ReqKind;
    use crate::synth::{self, SizeDist, SyntheticConfig};
    use rolo_sim::SimTime;

    fn smooth_cfg(iops: f64) -> SyntheticConfig {
        SyntheticConfig {
            iops,
            write_ratio: 1.0,
            read_size: SizeDist::Fixed(4096),
            write_size: SizeDist::Fixed(4096),
            sequential_fraction: 0.0,
            write_footprint: 1 << 30,
            read_footprint: 1 << 30,
            read_hot_fraction: 0.5,
            hot_set_bytes: 1 << 20,
            burstiness: synth::Burstiness::Smooth,
            batch_mean: 1.0,
            align: 4096,
        }
    }

    #[test]
    fn poisson_has_unit_dispersion() {
        let recs: Vec<_> = smooth_cfg(20.0)
            .generator(Duration::from_secs(4000), 1)
            .collect();
        let b = measure(&recs, Duration::from_secs(10)).unwrap();
        assert!((b.index_of_dispersion - 1.0).abs() < 0.3, "{b:?}");
        assert!((b.cv2_interarrival - 1.0).abs() < 0.3, "{b:?}");
        assert_eq!(b.classify(), "Very Low");
    }

    #[test]
    fn onoff_process_is_overdispersed() {
        let mut cfg = smooth_cfg(20.0);
        cfg.burstiness = synth::Burstiness::Bursty {
            on_fraction: 0.05,
            mean_on_secs: 30.0,
        };
        let recs: Vec<_> = cfg.generator(Duration::from_secs(20_000), 2).collect();
        let b = measure(&recs, Duration::from_secs(10)).unwrap();
        assert!(b.index_of_dispersion > 20.0, "{b:?}");
        assert!(matches!(b.classify(), "High" | "Very High"));
    }

    #[test]
    fn table_v_ordering_src2_2_vs_proj_0() {
        let dur = Duration::from_secs(100_000);
        let s: Vec<_> = crate::profiles::src2_2().generator(dur, 3).collect();
        let p: Vec<_> = crate::profiles::proj_0().generator(dur, 3).collect();
        let bs = measure(&s, Duration::from_secs(60)).unwrap();
        let bp = measure(&p, Duration::from_secs(60)).unwrap();
        assert!(
            bs.index_of_dispersion > 3.0 * bp.index_of_dispersion,
            "src2_2 {bs:?} must dwarf proj_0 {bp:?}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(measure(&[], Duration::from_secs(1)).is_none());
        let one = vec![TraceRecord::new(SimTime::ZERO, ReqKind::Read, 0, 4096)];
        assert!(measure(&one, Duration::from_secs(1)).is_none());
    }
}
