//! Trace manipulation utilities: slicing, rate scaling, merging.
//!
//! Handy when working with real MSR traces (replay one busy hour, stress
//! a scheme at 2× the recorded intensity, combine volumes) and used by
//! the harness's what-if experiments.

use crate::record::TraceRecord;
use rolo_sim::{Duration, SimTime};

/// Returns the records whose arrivals fall within `[start, start + len)`,
/// re-based so the window starts at time zero.
///
/// # Example
///
/// ```
/// use rolo_trace::{tools, ReqKind, TraceRecord};
/// use rolo_sim::{Duration, SimTime};
///
/// let recs = vec![
///     TraceRecord::new(SimTime::from_secs(1), ReqKind::Write, 0, 4096),
///     TraceRecord::new(SimTime::from_secs(5), ReqKind::Write, 0, 4096),
///     TraceRecord::new(SimTime::from_secs(9), ReqKind::Write, 0, 4096),
/// ];
/// let window = tools::slice(&recs, SimTime::from_secs(4), Duration::from_secs(4));
/// assert_eq!(window.len(), 1);
/// assert_eq!(window[0].arrival, SimTime::from_secs(1)); // 5 − 4
/// ```
pub fn slice(records: &[TraceRecord], start: SimTime, len: Duration) -> Vec<TraceRecord> {
    let end = start + len;
    records
        .iter()
        .filter(|r| r.arrival >= start && r.arrival < end)
        .map(|r| TraceRecord {
            arrival: SimTime::from_micros(r.arrival.as_micros() - start.as_micros()),
            ..*r
        })
        .collect()
}

/// Scales the arrival rate by `factor` (> 1 compresses time: a 2× factor
/// makes the same requests arrive twice as fast).
///
/// # Panics
///
/// Panics unless `factor` is finite and positive.
pub fn scale_rate(records: &[TraceRecord], factor: f64) -> Vec<TraceRecord> {
    assert!(
        factor.is_finite() && factor > 0.0,
        "invalid rate factor {factor}"
    );
    records
        .iter()
        .map(|r| TraceRecord {
            arrival: SimTime::from_micros((r.arrival.as_micros() as f64 / factor).round() as u64),
            ..*r
        })
        .collect()
}

/// Merges multiple traces into one arrival-ordered stream, offsetting
/// each input's addresses by `address_stride` per input index so volumes
/// don't collide.
///
/// # Panics
///
/// Panics if any input is not sorted by arrival.
pub fn merge(inputs: &[&[TraceRecord]], address_stride: u64) -> Vec<TraceRecord> {
    let mut out: Vec<TraceRecord> = Vec::with_capacity(inputs.iter().map(|i| i.len()).sum());
    for (idx, input) in inputs.iter().enumerate() {
        assert!(
            input.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "input {idx} is not sorted by arrival"
        );
        out.extend(input.iter().map(|r| TraceRecord {
            offset: r.offset + address_stride * idx as u64,
            ..*r
        }));
    }
    out.sort_by_key(|r| r.arrival);
    out
}

/// The busiest window of the trace: the start time of the `len`-long
/// window containing the most arrivals (useful for extracting a
/// representative burst). Returns `None` on an empty trace.
pub fn busiest_window(records: &[TraceRecord], len: Duration) -> Option<SimTime> {
    if records.is_empty() {
        return None;
    }
    let mut best_start = records[0].arrival;
    let mut best_count = 0usize;
    let mut lo = 0usize;
    for hi in 0..records.len() {
        while records[hi].arrival.since(records[lo].arrival) >= len {
            lo += 1;
        }
        let count = hi - lo + 1;
        if count > best_count {
            best_count = count;
            best_start = records[lo].arrival;
        }
    }
    Some(best_start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ReqKind;

    fn rec(secs: u64, offset: u64) -> TraceRecord {
        TraceRecord::new(SimTime::from_secs(secs), ReqKind::Write, offset, 4096)
    }

    #[test]
    fn slice_rebases_and_filters() {
        let recs = vec![rec(1, 0), rec(5, 0), rec(9, 0)];
        let w = slice(&recs, SimTime::from_secs(4), Duration::from_secs(10));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].arrival, SimTime::from_secs(1));
        assert_eq!(w[1].arrival, SimTime::from_secs(5));
    }

    #[test]
    fn slice_of_nothing_is_empty() {
        let recs = vec![rec(1, 0)];
        assert!(slice(&recs, SimTime::from_secs(100), Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn scale_compresses_time() {
        let recs = vec![rec(2, 0), rec(10, 0)];
        let fast = scale_rate(&recs, 2.0);
        assert_eq!(fast[0].arrival, SimTime::from_secs(1));
        assert_eq!(fast[1].arrival, SimTime::from_secs(5));
        let slow = scale_rate(&recs, 0.5);
        assert_eq!(slow[1].arrival, SimTime::from_secs(20));
    }

    #[test]
    fn merge_interleaves_and_strides() {
        let a = vec![rec(1, 100), rec(3, 200)];
        let b = vec![rec(2, 100)];
        let m = merge(&[&a, &b], 1 << 30);
        assert_eq!(m.len(), 3);
        assert!(m.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(m[1].offset, 100 + (1 << 30)); // from input 1
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn merge_rejects_unsorted() {
        let bad = vec![rec(5, 0), rec(1, 0)];
        merge(&[&bad], 0);
    }

    #[test]
    fn busiest_window_finds_the_burst() {
        let mut recs: Vec<TraceRecord> = (0..10).map(|i| rec(i * 10, 0)).collect();
        // A burst of 5 requests around t=41..45.
        for s in 41..=45 {
            recs.push(rec(s, 0));
        }
        recs.sort_by_key(|r| r.arrival);
        let start = busiest_window(&recs, Duration::from_secs(10)).unwrap();
        assert!(start >= SimTime::from_secs(36) && start <= SimTime::from_secs(45));
        assert!(busiest_window(&[], Duration::from_secs(1)).is_none());
    }
}
