//! Trace record type shared by the parser and the generators.

use rolo_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Read or write, as recorded in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqKind {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

impl ReqKind {
    /// True for writes.
    pub fn is_write(self) -> bool {
        matches!(self, ReqKind::Write)
    }
}

/// One logical block-level request from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival time relative to the start of the trace.
    pub arrival: SimTime,
    /// Read or write.
    pub kind: ReqKind,
    /// Logical byte offset within the volume.
    pub offset: u64,
    /// Request length in bytes.
    pub bytes: u64,
}

impl TraceRecord {
    /// Convenience constructor.
    pub fn new(arrival: SimTime, kind: ReqKind, offset: u64, bytes: u64) -> Self {
        TraceRecord {
            arrival,
            kind,
            offset,
            bytes,
        }
    }

    /// The first byte past the end of the request.
    pub fn end(&self) -> u64 {
        self.offset + self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_is_exclusive() {
        let r = TraceRecord::new(SimTime::ZERO, ReqKind::Write, 100, 50);
        assert_eq!(r.end(), 150);
        assert!(r.kind.is_write());
        assert!(!ReqKind::Read.is_write());
    }
}
