//! Calibrated synthetic workload generation.
//!
//! The generator produces a stream of [`TraceRecord`]s shaped by the
//! aggregate characteristics the paper publishes for each MSR trace:
//! arrival intensity (optionally bursty), read/write mix, request-size
//! distributions, write footprint (the set of unique bytes ever written,
//! which bounds destage volume), write sequentiality, and a hot/cold read
//! locality model (which determines the RoLo-E cache hit rate the paper
//! reports in Table V).

use crate::record::{ReqKind, TraceRecord};
use rolo_sim::{Duration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Request-size distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every request has the same size.
    Fixed(u64),
    /// Uniform over `[min, max]`, rounded to the alignment.
    Uniform {
        /// Smallest size (bytes).
        min: u64,
        /// Largest size (bytes).
        max: u64,
    },
    /// Two-point mixture: `small` with probability `1 − p_large`, `large`
    /// with probability `p_large`.
    TwoPoint {
        /// The common small size (bytes).
        small: u64,
        /// The occasional large size (bytes).
        large: u64,
        /// Probability of drawing `large`.
        p_large: f64,
    },
}

impl SizeDist {
    /// Draws a size, rounded to the nearest multiple of `align`
    /// (minimum one `align` unit).
    pub fn sample(&self, rng: &mut SimRng, align: u64) -> u64 {
        let raw = match *self {
            SizeDist::Fixed(b) => b,
            SizeDist::Uniform { min, max } => {
                assert!(min <= max, "uniform size dist with min > max");
                min + rng.below(max - min + 1)
            }
            SizeDist::TwoPoint {
                small,
                large,
                p_large,
            } => {
                if rng.chance(p_large) {
                    large
                } else {
                    small
                }
            }
        };
        (((raw + align / 2) / align).max(1)) * align
    }

    /// Expected size in bytes (before alignment).
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(b) => b as f64,
            SizeDist::Uniform { min, max } => (min + max) as f64 / 2.0,
            SizeDist::TwoPoint {
                small,
                large,
                p_large,
            } => small as f64 * (1.0 - p_large) + large as f64 * p_large,
        }
    }
}

/// Arrival-process shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Burstiness {
    /// Poisson arrivals at the configured rate.
    Smooth,
    /// ON/OFF-modulated Poisson: arrivals only during ON phases, at rate
    /// `iops / on_fraction` so the long-run average stays at `iops`.
    Bursty {
        /// Long-run fraction of time spent in the ON phase (0, 1].
        on_fraction: f64,
        /// Mean ON-phase length in seconds.
        mean_on_secs: f64,
    },
}

/// Configuration of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Long-run average arrival rate (requests per second).
    pub iops: f64,
    /// Fraction of requests that are writes, in `[0, 1]`.
    pub write_ratio: f64,
    /// Size distribution of reads.
    pub read_size: SizeDist,
    /// Size distribution of writes.
    pub write_size: SizeDist,
    /// Fraction of writes that continue sequentially from the previous
    /// write (the paper's motivating workload uses 0.3 = "70 % random").
    pub sequential_fraction: f64,
    /// Unique bytes the write stream covers (destage volume bound).
    pub write_footprint: u64,
    /// Bytes of the cold read region.
    pub read_footprint: u64,
    /// Probability a read targets the hot set (≈ achievable cache hit
    /// rate once the hot set is resident).
    pub read_hot_fraction: f64,
    /// Size of the hot read set in bytes (must fit the cache under test
    /// for `read_hot_fraction` to approximate the hit rate).
    pub hot_set_bytes: u64,
    /// Arrival-process shape.
    pub burstiness: Burstiness,
    /// Mean arrivals per micro-batch (≥ 1). Requests inside a batch are
    /// spaced ~1 ms apart, modelling the back-to-back bursts that drive
    /// queueing delay in the paper's response-time figures. `1.0`
    /// disables batching.
    pub batch_mean: f64,
    /// Offset/size alignment in bytes (typically 4096).
    pub align: u64,
}

impl SyntheticConfig {
    /// A 100 %-write, 70 %-random, 64 KB workload at the given intensity —
    /// the workload used for the paper's motivation experiments (§II,
    /// Figs. 2 and 3).
    pub fn motivation_write_only(iops: f64) -> Self {
        SyntheticConfig {
            iops,
            write_ratio: 1.0,
            read_size: SizeDist::Fixed(64 * 1024),
            write_size: SizeDist::Fixed(64 * 1024),
            sequential_fraction: 0.3,
            // Much larger than any logger under test, so the unique dirty
            // volume tracks the logged volume and destage work scales
            // linearly with logger capacity (the paper's flat Fig. 2c/d).
            write_footprint: 96 << 30,
            read_footprint: 96 << 30,
            read_hot_fraction: 0.5,
            hot_set_bytes: 1 << 30,
            burstiness: Burstiness::Smooth,
            batch_mean: 1.0,
            align: 4096,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities, zero footprints or zero
    /// alignment; generation would otherwise misbehave silently.
    pub fn validate(&self) {
        assert!(self.iops > 0.0, "iops must be positive");
        assert!(
            (0.0..=1.0).contains(&self.write_ratio),
            "write_ratio out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.sequential_fraction),
            "sequential_fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.read_hot_fraction),
            "read_hot_fraction out of range"
        );
        assert!(self.align > 0, "alignment must be positive");
        assert!(
            self.write_footprint >= self.align,
            "write footprint too small"
        );
        assert!(
            self.read_footprint >= self.align,
            "read footprint too small"
        );
        assert!(self.hot_set_bytes >= self.align, "hot set too small");
        assert!(
            self.batch_mean >= 1.0 && self.batch_mean.is_finite(),
            "batch_mean must be >= 1"
        );
        if let Burstiness::Bursty {
            on_fraction,
            mean_on_secs,
        } = self.burstiness
        {
            assert!(
                on_fraction > 0.0 && on_fraction <= 1.0,
                "on_fraction out of range"
            );
            assert!(mean_on_secs > 0.0, "mean_on_secs must be positive");
        }
    }

    /// The volume capacity the workload addresses (max of the regions).
    pub fn address_space(&self) -> u64 {
        self.write_footprint
            .max(self.read_footprint)
            .max(self.hot_set_bytes)
    }

    /// Creates the record iterator for a run of the given length.
    pub fn generator(&self, duration: Duration, seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(self.clone(), duration, seed)
    }
}

/// Iterator producing a deterministic synthetic trace.
///
/// # Example
///
/// ```
/// use rolo_trace::SyntheticConfig;
/// use rolo_sim::Duration;
///
/// let cfg = SyntheticConfig::motivation_write_only(100.0);
/// let records: Vec<_> = cfg.generator(Duration::from_secs(60), 7).collect();
/// // ~6000 requests, all writes, all 64 KB.
/// assert!((records.len() as f64 - 6000.0).abs() < 400.0);
/// assert!(records.iter().all(|r| r.kind.is_write() && r.bytes == 64 * 1024));
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    cfg: SyntheticConfig,
    duration: Duration,
    rng: SimRng,
    clock_secs: f64,
    /// End of the current ON phase (bursty mode only).
    on_until_secs: f64,
    write_cursor: u64,
    /// Remaining requests in the current micro-batch.
    batch_left: u32,
}

impl SyntheticTrace {
    fn new(cfg: SyntheticConfig, duration: Duration, seed: u64) -> Self {
        cfg.validate();
        let mut rng = SimRng::seed_from(seed).fork("synthetic-trace");
        let on_until_secs = match cfg.burstiness {
            Burstiness::Smooth => f64::INFINITY,
            Burstiness::Bursty { mean_on_secs, .. } => rng.exp(mean_on_secs),
        };
        let write_cursor = rng.below(cfg.write_footprint / cfg.align) * cfg.align;
        SyntheticTrace {
            cfg,
            duration,
            rng,
            clock_secs: 0.0,
            on_until_secs,
            write_cursor,
            batch_left: 0,
        }
    }

    /// Advances the arrival clock by one inter-arrival gap, honouring the
    /// ON/OFF modulation and micro-batching. Batched requests arrive 1 ms
    /// apart; the underlying batch-start process is thinned by
    /// `batch_mean` so the configured `iops` remains the long-run total.
    fn next_arrival(&mut self) -> f64 {
        if self.batch_left > 0 {
            self.batch_left -= 1;
            self.clock_secs += 0.001;
            return self.clock_secs;
        }
        if self.cfg.batch_mean > 1.0 {
            // Geometric batch size with the configured mean.
            let p = 1.0 / self.cfg.batch_mean;
            let u = self.rng.unit().max(f64::MIN_POSITIVE);
            let k = (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u32;
            self.batch_left = k - 1;
        }
        let process_rate = self.cfg.iops / self.cfg.batch_mean;
        match self.cfg.burstiness {
            Burstiness::Smooth => {
                self.clock_secs += self.rng.exp(1.0 / process_rate);
                self.clock_secs
            }
            Burstiness::Bursty {
                on_fraction,
                mean_on_secs,
            } => {
                let rate_on = process_rate / on_fraction;
                let mean_off_secs = mean_on_secs * (1.0 - on_fraction) / on_fraction;
                loop {
                    let gap = self.rng.exp(1.0 / rate_on);
                    if self.clock_secs + gap <= self.on_until_secs {
                        self.clock_secs += gap;
                        return self.clock_secs;
                    }
                    // Jump over the OFF phase into the next ON phase.
                    let off = if mean_off_secs > 0.0 {
                        self.rng.exp(mean_off_secs)
                    } else {
                        0.0
                    };
                    self.clock_secs = self.on_until_secs + off;
                    self.on_until_secs = self.clock_secs + self.rng.exp(mean_on_secs);
                }
            }
        }
    }

    fn place_write(&mut self, bytes: u64) -> u64 {
        let fp = self.cfg.write_footprint;
        let bytes = bytes.min(fp);
        let offset = if self.rng.chance(self.cfg.sequential_fraction) {
            self.write_cursor
        } else {
            self.rng.below((fp / self.cfg.align).max(1)) * self.cfg.align
        };
        let offset = if offset + bytes > fp { 0 } else { offset };
        self.write_cursor = if offset + bytes >= fp {
            0
        } else {
            offset + bytes
        };
        offset
    }

    fn place_read(&mut self, bytes: u64) -> u64 {
        let (region, _hot) = if self.rng.chance(self.cfg.read_hot_fraction) {
            (self.cfg.hot_set_bytes, true)
        } else {
            (self.cfg.read_footprint, false)
        };
        let region = region.max(self.cfg.align);
        let bytes = bytes.min(region);
        let offset = self.rng.below((region / self.cfg.align).max(1)) * self.cfg.align;
        if offset + bytes > region {
            region - bytes
        } else {
            offset
        }
    }
}

impl Iterator for SyntheticTrace {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let arrival_secs = self.next_arrival();
        let arrival = SimTime::from_micros((arrival_secs * 1e6) as u64);
        if arrival.since(SimTime::ZERO) >= self.duration {
            return None;
        }
        let is_write = self.rng.chance(self.cfg.write_ratio);
        let (kind, bytes, offset) = if is_write {
            let bytes = self.cfg.write_size.sample(&mut self.rng, self.cfg.align);
            let offset = self.place_write(bytes);
            (ReqKind::Write, bytes.min(self.cfg.write_footprint), offset)
        } else {
            let bytes = self.cfg.read_size.sample(&mut self.rng, self.cfg.align);
            let offset = self.place_read(bytes);
            (ReqKind::Read, bytes.min(self.cfg.read_footprint), offset)
        };
        Some(TraceRecord {
            arrival,
            kind,
            offset,
            bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn base_cfg() -> SyntheticConfig {
        SyntheticConfig {
            iops: 50.0,
            write_ratio: 0.8,
            read_size: SizeDist::Fixed(16 * 1024),
            write_size: SizeDist::Fixed(32 * 1024),
            sequential_fraction: 0.3,
            write_footprint: 1 << 30,
            read_footprint: 2 << 30,
            read_hot_fraction: 0.7,
            hot_set_bytes: 64 << 20,
            burstiness: Burstiness::Smooth,
            batch_mean: 1.0,
            align: 4096,
        }
    }

    #[test]
    fn batching_keeps_rate_but_clusters() {
        let mut cfg = base_cfg();
        cfg.batch_mean = 8.0;
        let recs: Vec<_> = cfg.generator(Duration::from_secs(4000), 21).collect();
        let rate = recs.len() as f64 / 4000.0;
        assert!((rate - 50.0).abs() < 5.0, "rate {rate}");
        // A large share of gaps are the 1 ms intra-batch spacing.
        let close = recs
            .windows(2)
            .filter(|w| w[1].arrival.since(w[0].arrival) <= Duration::from_millis(1))
            .count();
        assert!(close as f64 / recs.len() as f64 > 0.5);
    }

    #[test]
    fn rate_is_calibrated() {
        let recs: Vec<_> = base_cfg().generator(Duration::from_secs(2000), 1).collect();
        let rate = recs.len() as f64 / 2000.0;
        assert!((rate - 50.0).abs() < 2.5, "rate {rate}");
    }

    #[test]
    fn write_ratio_is_calibrated() {
        let recs: Vec<_> = base_cfg().generator(Duration::from_secs(2000), 2).collect();
        let writes = recs.iter().filter(|r| r.kind.is_write()).count();
        let ratio = writes as f64 / recs.len() as f64;
        assert!((ratio - 0.8).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn bursty_preserves_average_rate() {
        let mut cfg = base_cfg();
        cfg.burstiness = Burstiness::Bursty {
            on_fraction: 0.1,
            mean_on_secs: 20.0,
        };
        let recs: Vec<_> = cfg.generator(Duration::from_secs(20_000), 3).collect();
        let rate = recs.len() as f64 / 20_000.0;
        assert!((rate - 50.0).abs() < 5.0, "rate {rate}");
    }

    #[test]
    fn bursty_has_higher_variance_than_smooth() {
        let count_in_bins = |cfg: &SyntheticConfig, seed: u64| -> f64 {
            let recs: Vec<_> = cfg.generator(Duration::from_secs(4000), seed).collect();
            let mut bins = vec![0.0f64; 400];
            for r in &recs {
                let b = (r.arrival.as_secs_f64() / 10.0) as usize;
                bins[b.min(399)] += 1.0;
            }
            let mean = bins.iter().sum::<f64>() / bins.len() as f64;
            bins.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins.len() as f64
        };
        let smooth = base_cfg();
        let mut bursty = base_cfg();
        bursty.burstiness = Burstiness::Bursty {
            on_fraction: 0.1,
            mean_on_secs: 20.0,
        };
        assert!(
            count_in_bins(&bursty, 4) > 3.0 * count_in_bins(&smooth, 4),
            "bursty traffic should be much more variable"
        );
    }

    #[test]
    fn offsets_stay_in_footprint() {
        let recs: Vec<_> = base_cfg().generator(Duration::from_secs(500), 5).collect();
        for r in &recs {
            if r.kind.is_write() {
                assert!(r.end() <= 1 << 30, "{r:?}");
            } else {
                assert!(r.end() <= 2 << 30, "{r:?}");
            }
            assert_eq!(r.offset % 4096, 0);
        }
    }

    #[test]
    fn sequential_fraction_produces_contiguous_writes() {
        let mut cfg = base_cfg();
        cfg.write_ratio = 1.0;
        cfg.sequential_fraction = 1.0;
        let recs: Vec<_> = cfg.generator(Duration::from_secs(100), 6).collect();
        let contiguous = recs
            .windows(2)
            .filter(|w| w[1].offset == w[0].end())
            .count();
        // All writes chain sequentially (modulo footprint wrap).
        assert!(contiguous as f64 / (recs.len() - 1) as f64 > 0.95);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = base_cfg().generator(Duration::from_secs(50), 9).collect();
        let b: Vec<_> = base_cfg().generator(Duration::from_secs(50), 9).collect();
        let c: Vec<_> = base_cfg().generator(Duration::from_secs(50), 10).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_monotonic() {
        let recs: Vec<_> = base_cfg().generator(Duration::from_secs(300), 11).collect();
        for w in recs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }

    #[test]
    fn size_dist_mean_and_alignment() {
        let mut rng = SimRng::seed_from(12);
        let d = SizeDist::TwoPoint {
            small: 4096,
            large: 65536,
            p_large: 0.25,
        };
        assert!((d.mean() - (0.75 * 4096.0 + 0.25 * 65536.0)).abs() < 1e-9);
        let n = 10_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut rng, 4096)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.05);
        let u = SizeDist::Uniform {
            min: 4096,
            max: 131072,
        };
        for _ in 0..100 {
            let s = u.sample(&mut rng, 4096);
            assert_eq!(s % 4096, 0);
            assert!((4096..=131072).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "write_ratio out of range")]
    fn validate_rejects_bad_ratio() {
        let mut cfg = base_cfg();
        cfg.write_ratio = 1.5;
        cfg.validate();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_records_well_formed(seed in 0u64..1000, iops in 1.0f64..300.0) {
            let mut cfg = base_cfg();
            cfg.iops = iops;
            for r in cfg.generator(Duration::from_secs(30), seed) {
                prop_assert!(r.bytes > 0);
                prop_assert_eq!(r.bytes % 4096, 0);
                prop_assert!(r.arrival.as_secs_f64() < 30.0);
                prop_assert!(r.end() <= cfg.address_space());
            }
        }
    }
}
