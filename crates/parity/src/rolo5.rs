//! RoLo-5: rotated parity-update logging with decentralized destaging.
//!
//! The write path sheds the parity read-modify-write from the foreground:
//! read-old-data + write-new-data on the data disk, plus one *sequential*
//! append of the parity delta to the on-duty logger's logging region. The
//! parity itself goes stale; per-parity-disk destage processes apply the
//! pending updates (read-parity + write-parity) as background I/O in idle
//! slots. When a parity disk's backlog drains, every delta segment
//! destined for it is reclaimed pool-wide, and the logger keeps rotating
//! over the array's free space — RoLo's two mechanisms (§III-A),
//! transplanted to RAID5 per §VII.

use crate::geometry::Raid5Geometry;
use rolo_core::ctx::SimCtx;
use rolo_core::dirty::DirtyMap;
use rolo_core::logspace::LoggerSpace;
use rolo_core::policy::{Policy, PolicyStats};
use rolo_core::IoSlot;
use rolo_disk::{DiskId, DiskRequest, IoKind, Priority};
use rolo_sim::IoMap;
use rolo_trace::{ReqKind, TraceRecord};

#[derive(Debug, Clone, Copy)]
enum Tag {
    User(IoSlot),
    ChainRead(u64),
    ChainWrite(u64),
    /// Background flush of NVRAM-staged deltas to the log.
    NvramFlush,
    DestageRead {
        disk: usize,
        off: u64,
        len: u64,
    },
    DestageWrite {
        disk: usize,
        len: u64,
    },
}

#[derive(Debug)]
struct Chain {
    user: IoSlot,
    data_disk: DiskId,
    data_offset: u64,
    bytes: u64,
    /// Parity mark applied when the chain completes.
    parity_disk: usize,
    parity_mark: (u64, u64),
    /// Delta append pieces (disk, offset, len) issued in phase 2, or the
    /// direct parity RMW when deactivated.
    writes_left: u8,
    direct: bool,
    /// On-duty logger chosen at submission time for this chain's delta.
    log_target: usize,
}

/// The RoLo-5 controller.
#[derive(Debug)]
pub struct Rolo5Policy {
    geometry: Raid5Geometry,
    /// The current on-duty logger slots (§III-D: the append bottleneck is
    /// alleviated "by adjusting the number of on-duty log disks" — one
    /// logger cannot absorb an entire array's write load when every disk
    /// also serves data).
    loggers: Vec<usize>,
    /// Round-robin cursor across the slots.
    cursor: usize,
    period: u64,
    rotate_threshold: f64,
    chunk: u64,
    logger_size: u64,
    spaces: Vec<LoggerSpace>,
    /// Stale parity ranges per parity disk (accumulating).
    dirty: Vec<DirtyMap>,
    /// The snapshot being destaged this round, per parity disk. Rounds
    /// are finite even under sustained load: marks arriving mid-round go
    /// to `dirty` and wait for the next round, and segments older than
    /// the round's watermark period become reclaimable when it ends.
    draining: Vec<DirtyMap>,
    watermark: Vec<u64>,
    destage_active: Vec<bool>,
    chain_busy: Vec<bool>,
    io_map: IoMap<Tag>,
    chains: IoMap<Chain>,
    next_chain: u64,
    deactivated: bool,
    drain_mode: bool,
    /// NVRAM append staging: deltas are durable the moment they enter the
    /// buffer (classic Parity Logging's fault-tolerant buffer), so the
    /// foreground write path drops the log append entirely; batches are
    /// flushed to the on-duty logger as large sequential background
    /// writes. `None` disables staging.
    nvram_batch: Option<u64>,
    nvram_pending: Vec<(usize, u64)>,
    nvram_pending_bytes: u64,
    stats: PolicyStats,
}

impl Rolo5Policy {
    /// Creates a RoLo-5 controller; every disk contributes a logger
    /// region `[logger_base, logger_base + logger_size)`.
    ///
    /// # Panics
    ///
    /// Panics on a zero logger region.
    pub fn new(
        geometry: Raid5Geometry,
        logger_base: u64,
        logger_size: u64,
        rotate_threshold: f64,
        chunk: u64,
    ) -> Self {
        Self::with_loggers(
            geometry,
            logger_base,
            logger_size,
            rotate_threshold,
            chunk,
            2,
        )
    }

    /// Creates a RoLo-5 controller with `on_duty` simultaneous loggers.
    ///
    /// # Panics
    ///
    /// Panics if `on_duty` is zero or leaves no off-duty disk.
    pub fn with_loggers(
        geometry: Raid5Geometry,
        logger_base: u64,
        logger_size: u64,
        rotate_threshold: f64,
        chunk: u64,
        on_duty: usize,
    ) -> Self {
        assert!(logger_size > 0, "zero logger region");
        let disks = geometry.disks();
        assert!(
            on_duty >= 1 && on_duty < disks,
            "on-duty window out of range"
        );
        Rolo5Policy {
            geometry,
            loggers: (0..on_duty).collect(),
            cursor: 0,
            period: 0,
            rotate_threshold,
            chunk,
            logger_size,
            spaces: (0..disks)
                .map(|_| LoggerSpace::new(logger_base, logger_size))
                .collect(),
            dirty: (0..disks).map(|_| DirtyMap::new()).collect(),
            draining: (0..disks).map(|_| DirtyMap::new()).collect(),
            watermark: vec![0; disks],
            destage_active: vec![false; disks],
            chain_busy: vec![false; disks],
            io_map: IoMap::default(),
            chains: IoMap::default(),
            next_chain: 0,
            deactivated: false,
            drain_mode: false,
            nvram_batch: None,
            nvram_pending: Vec::new(),
            nvram_pending_bytes: 0,
            stats: PolicyStats::default(),
        }
    }

    /// Enables NVRAM append staging with the given flush batch size —
    /// the "RoLo-5 + NVRAM" variant of the §VII study. Deltas become
    /// durable on entry to the buffer, so writes no longer wait on a log
    /// append; full batches flush to the on-duty logger as sequential
    /// background writes.
    ///
    /// # Panics
    ///
    /// Panics if `batch_bytes` is zero.
    pub fn enable_nvram(&mut self, batch_bytes: u64) {
        assert!(batch_bytes > 0, "zero NVRAM batch");
        self.nvram_batch = Some(batch_bytes);
    }

    /// Flushes staged deltas to the log if a full batch (or `force`) is
    /// pending.
    fn maybe_flush_nvram(&mut self, ctx: &mut SimCtx, force: bool) {
        let Some(batch) = self.nvram_batch else {
            return;
        };
        if self.nvram_pending_bytes == 0 {
            return;
        }
        if !force && self.nvram_pending_bytes < batch {
            return;
        }
        if self.deactivated {
            // No log space: a real controller replays the buffer straight
            // into the parity destage; the dirty marks already cover it.
            self.stats.direct_writes += self.nvram_pending.len() as u64;
            self.nvram_pending.clear();
            self.nvram_pending_bytes = 0;
            return;
        }
        let entries = std::mem::take(&mut self.nvram_pending);
        let total = self.nvram_pending_bytes;
        self.nvram_pending_bytes = 0;
        let target = match self.pick_logger(total) {
            Some(t) => Some(t),
            None => {
                if self.rotate(ctx) {
                    self.pick_logger(total)
                } else {
                    None
                }
            }
        };
        let Some(target) = target else {
            self.deactivate(ctx);
            self.stats.direct_writes += entries.len() as u64;
            return;
        };
        for (pd, len) in entries {
            let segs = self.spaces[target]
                .alloc(len, pd, self.period)
                .expect("picked logger has space");
            for seg in segs {
                let id = ctx.submit(
                    target,
                    IoKind::Write,
                    seg.offset,
                    seg.bytes,
                    Priority::Background,
                );
                self.io_map.insert(id, Tag::NvramFlush);
                self.stats.log_appended_bytes += seg.bytes;
            }
        }
        ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
    }

    /// The RAID5 geometry in use.
    pub fn geometry(&self) -> &Raid5Geometry {
        &self.geometry
    }

    /// The disks currently serving as on-duty loggers.
    pub fn on_duty_loggers(&self) -> Vec<usize> {
        self.loggers.clone()
    }

    /// Picks the next on-duty logger with room for `needed`, round-robin
    /// across the slots; `None` forces a rotation.
    fn pick_logger(&mut self, needed: u64) -> Option<usize> {
        let floor = (self.logger_size as f64 * self.rotate_threshold) as u64;
        let k = self.loggers.len();
        for i in 0..k {
            let idx = self.loggers[(self.cursor + i) % k];
            let free = self.spaces[idx].free_bytes();
            if free >= needed && free > floor {
                self.cursor = (self.cursor + i + 1) % k;
                return Some(idx);
            }
        }
        None
    }

    /// Live delta bytes across the pool.
    pub fn log_used_bytes(&self) -> u64 {
        self.spaces.iter().map(|s| s.used_bytes()).sum()
    }

    /// Stale parity bytes awaiting destage (accumulating + in-round).
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.iter().map(|d| d.bytes()).sum::<u64>()
            + self.draining.iter().map(|d| d.bytes()).sum::<u64>()
    }

    /// True while delta logging is suspended for lack of pool space.
    pub fn is_deactivated(&self) -> bool {
        self.deactivated
    }

    /// Replaces the fullest on-duty logger with an off-duty disk whose
    /// logging region is *fully reclaimed* — appending into an empty
    /// region is what keeps log writes sequential (a partially reclaimed
    /// region is fragmented and every append would seek). Returns false
    /// when no empty region exists (the caller then deactivates).
    fn rotate(&mut self, ctx: &mut SimCtx) -> bool {
        // Keep destaging every pending backlog so regions empty out;
        // `destage_active` makes this idempotent and cheap. On-duty
        // loggers are skipped — parity RMW between their appends would
        // destroy the appends' sequentiality; their backlog is processed
        // once they leave the window.
        for d in 0..self.geometry.disks() {
            if self.loggers.contains(&d) {
                continue;
            }
            if !self.dirty[d].is_clean() {
                self.activate_destage(ctx, d);
            } else {
                self.reclaim_for_quiet(d);
            }
        }
        let replacement = (0..self.geometry.disks())
            .find(|d| !self.loggers.contains(d) && self.spaces[*d].used_bytes() == 0);
        let Some(new_disk) = replacement else {
            return false;
        };
        // Swap out the fullest slot.
        let (slot, _) = self
            .loggers
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| self.spaces[d].free_bytes())
            .expect("at least one logger");
        let retired = std::mem::replace(&mut self.loggers[slot], new_disk);
        self.period += 1;
        self.stats.rotations += 1;
        // The retired logger is off duty: its deferred parity backlog can
        // now be applied.
        if !self.dirty[retired].is_clean() {
            self.activate_destage(ctx, retired);
        }
        true
    }

    /// Reclaims segments whose parity backlog is already clean (their
    /// updates were applied by an earlier destage round) from off-duty
    /// regions.
    fn reclaim_for_quiet(&mut self, pd: usize) {
        if self.dirty[pd].is_clean() && !self.destage_active[pd] {
            let loggers = self.loggers.clone();
            for (d, space) in self.spaces.iter_mut().enumerate() {
                if loggers.contains(&d) {
                    continue;
                }
                space.reclaim(|seg| seg.pair == pd);
            }
        }
    }

    fn activate_destage(&mut self, ctx: &mut SimCtx, disk: usize) {
        if self.destage_active[disk] {
            self.pump(ctx, disk);
            return;
        }
        if self.dirty[disk].is_clean() && self.draining[disk].is_clean() {
            // Nothing pending: reclaim any stale segments directly.
            self.reclaim_for(ctx, disk);
            return;
        }
        // Start a round: snapshot the backlog; marks arriving mid-round
        // accumulate for the next round.
        if self.draining[disk].is_clean() {
            self.draining[disk] = std::mem::take(&mut self.dirty[disk]);
            self.watermark[disk] = self.period;
        }
        self.destage_active[disk] = true;
        self.pump(ctx, disk);
    }

    fn pump(&mut self, ctx: &mut SimCtx, disk: usize) {
        if !self.destage_active[disk] || self.chain_busy[disk] {
            return;
        }
        // Never run parity RMW on an on-duty logger (except while
        // draining or deactivated, when nothing is being appended).
        if self.loggers.contains(&disk) && !self.drain_mode && !self.deactivated {
            return;
        }
        match self.draining[disk].take_next(self.chunk) {
            Some((off, len)) => {
                self.chain_busy[disk] = true;
                let id = ctx.submit(disk, IoKind::Read, off, len, Priority::Background);
                self.io_map.insert(id, Tag::DestageRead { disk, off, len });
            }
            None => self.complete_destage(ctx, disk),
        }
    }

    fn complete_destage(&mut self, ctx: &mut SimCtx, disk: usize) {
        if !self.destage_active[disk] || self.chain_busy[disk] || !self.draining[disk].is_clean() {
            return;
        }
        self.destage_active[disk] = false;
        self.stats.destage_cycles += 1;
        // Everything logged up to the round's watermark is now applied.
        let watermark = self.watermark[disk];
        self.reclaim_for_watermark(ctx, disk, watermark);
        // More arrived mid-round: chain straight into the next round.
        if !self.dirty[disk].is_clean() && (self.draining_allowed(disk) || self.draining_forced()) {
            self.activate_destage(ctx, disk);
        }
        if self.deactivated {
            self.try_reactivate(ctx);
        }
    }

    fn draining_allowed(&self, disk: usize) -> bool {
        !self.loggers.contains(&disk)
    }

    fn draining_forced(&self) -> bool {
        self.drain_mode || self.deactivated
    }

    /// Reclaims `pd`'s delta segments up to `watermark` on off-duty
    /// regions.
    fn reclaim_for_watermark(&mut self, ctx: &mut SimCtx, pd: usize, watermark: u64) {
        let loggers = self.loggers.clone();
        let drain_all = self.drain_mode || self.deactivated;
        for (d, space) in self.spaces.iter_mut().enumerate() {
            if loggers.contains(&d) && !drain_all {
                continue;
            }
            space.reclaim(|seg| seg.pair == pd && seg.period <= watermark);
        }
        ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
    }

    /// Reclaims `pd`'s stale delta segments on every *off-duty* region.
    /// On-duty regions are left untouched — punching holes into a region
    /// that is actively receiving appends would fragment it and turn the
    /// sequential append stream into random writes; their stale segments
    /// are reclaimed when the disk leaves the window ([`rotate`]'s
    /// `reclaim_for_quiet` sweep).
    fn reclaim_for(&mut self, ctx: &mut SimCtx, disk: usize) {
        let drain_all = self.drain_mode || self.deactivated;
        for (d, space) in self.spaces.iter_mut().enumerate() {
            if self.loggers.contains(&d) && !drain_all {
                continue;
            }
            space.reclaim(|seg| seg.pair == disk);
        }
        ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
    }

    fn deactivate(&mut self, ctx: &mut SimCtx) {
        if self.deactivated {
            return;
        }
        self.deactivated = true;
        self.stats.deactivations += 1;
        for d in 0..self.geometry.disks() {
            if !self.dirty[d].is_clean() {
                self.activate_destage(ctx, d);
            }
        }
    }

    fn try_reactivate(&mut self, ctx: &mut SimCtx) {
        if !self.deactivated
            || self.destage_active.iter().any(|&a| a)
            || self.dirty.iter().any(|d| !d.is_clean())
            || self.log_used_bytes() > 0
        {
            return;
        }
        self.deactivated = false;
        let _ = self.rotate(ctx);
    }
}

impl Policy for Rolo5Policy {
    fn name(&self) -> &'static str {
        "RoLo-5"
    }

    fn initial_standby(&self, _disk: DiskId) -> bool {
        false
    }

    fn attach(&mut self, _ctx: &mut SimCtx) {}

    fn on_user_request(&mut self, ctx: &mut SimCtx, user_id: u64, rec: &TraceRecord) {
        let capacity = self.geometry.logical_capacity();
        let bytes = rec.bytes.min(capacity);
        let offset = rec.offset.min(capacity - bytes);
        let exts = self.geometry.split(offset, bytes);
        match rec.kind {
            ReqKind::Read => {
                let uslot = ctx.register_user(user_id, rec.kind, ctx.now, exts.len() as u32);
                for e in exts {
                    let id = ctx.submit(
                        e.data_disk,
                        IoKind::Read,
                        e.offset,
                        e.bytes,
                        Priority::Foreground,
                    );
                    self.io_map.insert(id, Tag::User(uslot));
                }
            }
            ReqKind::Write => {
                let uslot = ctx.register_user(user_id, rec.kind, ctx.now, exts.len() as u32);
                for e in &exts {
                    let mut target = None;
                    if !self.deactivated {
                        target = self.pick_logger(e.bytes);
                        if target.is_none() {
                            if self.rotate(ctx) {
                                target = self.pick_logger(e.bytes);
                            }
                            if target.is_none() {
                                self.deactivate(ctx);
                            }
                        }
                    }
                    let chain_id = self.next_chain;
                    self.next_chain += 1;
                    let direct = target.is_none();
                    self.chains.insert(
                        chain_id,
                        Chain {
                            user: uslot,
                            data_disk: e.data_disk,
                            data_offset: e.offset,
                            bytes: e.bytes,
                            parity_disk: e.parity_disk,
                            parity_mark: (e.offset, e.bytes),
                            writes_left: 0,
                            direct,
                            log_target: target.unwrap_or(0),
                        },
                    );
                    // Phase 1: read old data (always); plus old parity when
                    // falling back to the in-place RMW.
                    let r1 = ctx.submit(
                        e.data_disk,
                        IoKind::Read,
                        e.offset,
                        e.bytes,
                        Priority::Foreground,
                    );
                    self.io_map.insert(r1, Tag::ChainRead(chain_id));
                    let chain = self.chains.get_mut(&chain_id).expect("just inserted");
                    chain.writes_left = 1; // reads pending marker reused below
                    if direct {
                        let r2 = ctx.submit(
                            e.parity_disk,
                            IoKind::Read,
                            e.parity_offset,
                            e.bytes,
                            Priority::Foreground,
                        );
                        self.io_map.insert(r2, Tag::ChainRead(chain_id));
                        chain.writes_left = 2;
                        self.stats.direct_writes += 1;
                    }
                }
            }
        }
    }

    fn on_io_complete(&mut self, ctx: &mut SimCtx, _disk: DiskId, req: DiskRequest) {
        match self.io_map.remove(&req.id).expect("unknown sub-request") {
            Tag::User(user) => {
                ctx.user_sub_done(user);
            }
            Tag::ChainRead(chain_id) => {
                let chain = self.chains.get_mut(&chain_id).expect("chain exists");
                // `writes_left` counts outstanding phase-1 reads here.
                chain.writes_left -= 1;
                if chain.writes_left > 0 {
                    return;
                }
                let (dd, doff, len, direct, pd) = (
                    chain.data_disk,
                    chain.data_offset,
                    chain.bytes,
                    chain.direct,
                    chain.parity_disk,
                );
                let poff = chain.parity_mark.0;
                let log_target = chain.log_target;
                let nvram = self.nvram_batch.is_some();
                if direct {
                    // In-place fallback: write data + write parity.
                    chain.writes_left = 2;
                    let w1 = ctx.submit(dd, IoKind::Write, doff, len, Priority::Foreground);
                    self.io_map.insert(w1, Tag::ChainWrite(chain_id));
                    let w2 = ctx.submit(pd, IoKind::Write, poff, len, Priority::Foreground);
                    self.io_map.insert(w2, Tag::ChainWrite(chain_id));
                } else if nvram {
                    // Delta staged in NVRAM (already durable): only the
                    // in-place data write remains in the foreground.
                    let chain = self.chains.get_mut(&chain_id).expect("chain exists");
                    chain.writes_left = 1;
                    let w1 = ctx.submit(dd, IoKind::Write, doff, len, Priority::Foreground);
                    self.io_map.insert(w1, Tag::ChainWrite(chain_id));
                    self.nvram_pending.push((pd, len));
                    self.nvram_pending_bytes += len;
                    self.maybe_flush_nvram(ctx, false);
                } else {
                    // Write data in place + append the parity delta.
                    let segs = match self.spaces[log_target].alloc(len, pd, self.period) {
                        Some(segs) => segs,
                        None => {
                            // Pool raced to full: in-place fallback.
                            chain.writes_left = 2;
                            self.stats.direct_writes += 1;
                            self.chains.get_mut(&chain_id).expect("chain").direct = true;
                            let w1 = ctx.submit(dd, IoKind::Write, doff, len, Priority::Foreground);
                            self.io_map.insert(w1, Tag::ChainWrite(chain_id));
                            let w2 = ctx.submit(pd, IoKind::Write, poff, len, Priority::Foreground);
                            self.io_map.insert(w2, Tag::ChainWrite(chain_id));
                            return;
                        }
                    };
                    let chain = self.chains.get_mut(&chain_id).expect("chain exists");
                    chain.writes_left = 1 + segs.len() as u8;
                    let w1 = ctx.submit(dd, IoKind::Write, doff, len, Priority::Foreground);
                    self.io_map.insert(w1, Tag::ChainWrite(chain_id));
                    for seg in segs {
                        let id = ctx.submit(
                            log_target,
                            IoKind::Write,
                            seg.offset,
                            seg.bytes,
                            Priority::Foreground,
                        );
                        self.io_map.insert(id, Tag::ChainWrite(chain_id));
                        self.stats.log_appended_bytes += seg.bytes;
                    }
                    ctx.log_timeline.push(ctx.now, self.log_used_bytes() as f64);
                }
            }
            Tag::NvramFlush => {}
            Tag::ChainWrite(chain_id) => {
                let chain = self.chains.get_mut(&chain_id).expect("chain exists");
                chain.writes_left -= 1;
                if chain.writes_left == 0 {
                    let user = chain.user;
                    let pd = chain.parity_disk;
                    let (moff, mlen) = chain.parity_mark;
                    let direct = chain.direct;
                    self.chains.remove(&chain_id);
                    ctx.user_sub_done(user);
                    if direct {
                        // Parity freshly rewritten in place.
                        self.dirty[pd].clear_range(moff, mlen);
                        if self.destage_active[pd]
                            && self.dirty[pd].is_clean()
                            && !self.chain_busy[pd]
                        {
                            self.complete_destage(ctx, pd);
                        }
                    } else {
                        self.dirty[pd].mark(moff, mlen);
                        if self.destage_active[pd] {
                            self.pump(ctx, pd);
                        } else if self.drain_mode || self.deactivated {
                            self.activate_destage(ctx, pd);
                        }
                    }
                }
            }
            Tag::DestageRead { disk, off, len } => {
                let id = ctx.submit(disk, IoKind::Write, off, len, Priority::Background);
                self.io_map.insert(id, Tag::DestageWrite { disk, len });
            }
            Tag::DestageWrite { disk, len } => {
                self.stats.destaged_bytes += len;
                self.chain_busy[disk] = false;
                // `pump` continues the round or completes it when the
                // draining snapshot is empty.
                self.pump(ctx, disk);
            }
        }
    }

    fn on_spin_up(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}
    fn on_spin_down(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}
    fn on_timer(&mut self, _ctx: &mut SimCtx, _token: u64) {}

    fn begin_drain(&mut self, ctx: &mut SimCtx) {
        self.drain_mode = true;
        self.maybe_flush_nvram(ctx, true);
        for d in 0..self.geometry.disks() {
            if !self.dirty[d].is_clean() || !self.draining[d].is_clean() {
                self.activate_destage(ctx, d);
            } else if self.destage_active[d] {
                self.pump(ctx, d);
            } else {
                self.reclaim_for(ctx, d);
            }
        }
    }

    fn is_drained(&self, ctx: &SimCtx) -> bool {
        self.nvram_pending_bytes == 0
            && ctx.outstanding_users() == 0
            && self.chains.is_empty()
            && self.io_map.is_empty()
            && self.dirty.iter().all(|d| d.is_clean())
            && self.draining.iter().all(|d| d.is_clean())
            && self.log_used_bytes() == 0
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn check_consistency(&self, ctx: &SimCtx) -> Result<(), String> {
        for space in &self.spaces {
            space.check_invariants()?;
        }
        for (d, m) in self.dirty.iter().enumerate() {
            m.check_invariants()?;
            self.draining[d].check_invariants()?;
            if !m.is_clean() || !self.draining[d].is_clean() {
                return Err(format!("parity disk {d} still has stale bytes"));
            }
        }
        if self.log_used_bytes() != 0 {
            return Err(format!("{} delta bytes unreclaimed", self.log_used_bytes()));
        }
        if self.nvram_pending_bytes != 0 {
            return Err(format!(
                "{} NVRAM bytes unflushed",
                self.nvram_pending_bytes
            ));
        }
        if !self.chains.is_empty() {
            return Err(format!("{} chains still open", self.chains.len()));
        }
        if ctx.outstanding_users() != 0 {
            return Err(format!(
                "{} user requests unfinished",
                ctx.outstanding_users()
            ));
        }
        Ok(())
    }
}
