//! RAID5 layout: block-striping with left-symmetric rotating parity.
//!
//! A row of the array holds `disks − 1` data stripe units plus one parity
//! unit; the parity unit rotates right-to-left across rows so parity
//! traffic spreads over all spindles.

use serde::{Deserialize, Serialize};

/// One physically contiguous piece of a logical request on RAID5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raid5Extent {
    /// Disk holding the data.
    pub data_disk: usize,
    /// Byte offset of the data on that disk.
    pub offset: u64,
    /// Extent length in bytes.
    pub bytes: u64,
    /// Stripe row the extent lives in.
    pub row: u64,
    /// Disk holding the row's parity.
    pub parity_disk: usize,
    /// Byte offset of the row's parity unit (same on-disk offset space).
    pub parity_offset: u64,
}

/// Left-symmetric RAID5 geometry.
///
/// # Example
///
/// ```
/// use rolo_parity::Raid5Geometry;
///
/// let g = Raid5Geometry::new(5, 64 * 1024, 1 << 30);
/// assert_eq!(g.logical_capacity(), 4 << 30); // 4 data units per row
/// let e = g.map(0, 4096);
/// // Row 0's parity sits on the last disk.
/// assert_eq!(e.parity_disk, 4);
/// assert_ne!(e.data_disk, e.parity_disk);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raid5Geometry {
    disks: usize,
    stripe_unit: u64,
    /// Per-disk data-region size (must be a multiple of the stripe unit).
    data_region: u64,
}

impl Raid5Geometry {
    /// Creates a geometry over `disks` drives.
    ///
    /// # Panics
    ///
    /// Panics unless `disks ≥ 3`, the stripe unit is non-zero and the
    /// data region is a non-zero multiple of the stripe unit.
    pub fn new(disks: usize, stripe_unit: u64, data_region: u64) -> Self {
        assert!(disks >= 3, "RAID5 needs at least three disks");
        assert!(stripe_unit > 0, "zero stripe unit");
        assert!(
            data_region > 0 && data_region.is_multiple_of(stripe_unit),
            "data region must be a non-zero multiple of the stripe unit"
        );
        Raid5Geometry {
            disks,
            stripe_unit,
            data_region,
        }
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.disks
    }

    /// Stripe unit in bytes.
    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    /// Stripe rows available.
    pub fn rows(&self) -> u64 {
        self.data_region / self.stripe_unit
    }

    /// Usable logical capacity: `(disks − 1)` data units per row.
    pub fn logical_capacity(&self) -> u64 {
        self.rows() * (self.disks as u64 - 1) * self.stripe_unit
    }

    /// The disk holding parity for `row` (left-symmetric: rotates
    /// backwards from the last disk).
    pub fn parity_disk(&self, row: u64) -> usize {
        let n = self.disks as u64;
        ((n - 1) - (row % n)) as usize
    }

    /// Maps a logical byte address to its location, clipped to the end of
    /// the stripe unit.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or `bytes` is zero.
    pub fn map(&self, offset: u64, bytes: u64) -> Raid5Extent {
        assert!(bytes > 0, "zero-length extent");
        assert!(
            offset + bytes <= self.logical_capacity(),
            "extent [{offset}, {}) exceeds capacity {}",
            offset + bytes,
            self.logical_capacity()
        );
        let data_per_row = (self.disks as u64 - 1) * self.stripe_unit;
        let row = offset / data_per_row;
        let in_row = offset % data_per_row;
        let unit_index = in_row / self.stripe_unit;
        let within = in_row % self.stripe_unit;
        let parity_disk = self.parity_disk(row);
        // Left-symmetric: data units fill the slots after the parity
        // disk, wrapping around.
        let data_disk = ((parity_disk as u64 + 1 + unit_index) % self.disks as u64) as usize;
        let disk_offset = row * self.stripe_unit + within;
        Raid5Extent {
            data_disk,
            offset: disk_offset,
            bytes: bytes.min(self.stripe_unit - within),
            row,
            parity_disk,
            parity_offset: row * self.stripe_unit,
        }
    }

    /// Splits a logical extent into stripe-unit-bounded pieces.
    ///
    /// # Panics
    ///
    /// Panics if the extent exceeds the logical capacity.
    pub fn split(&self, offset: u64, bytes: u64) -> Vec<Raid5Extent> {
        let mut out = Vec::with_capacity((bytes / self.stripe_unit + 2) as usize);
        let mut cur = offset;
        let end = offset + bytes;
        while cur < end {
            let e = self.map(cur, end - cur);
            cur += e.bytes;
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SU: u64 = 64 * 1024;

    fn geo() -> Raid5Geometry {
        Raid5Geometry::new(5, SU, 1 << 30)
    }

    #[test]
    fn parity_rotates_across_rows() {
        let g = geo();
        let ps: Vec<usize> = (0..5).map(|r| g.parity_disk(r)).collect();
        assert_eq!(ps, vec![4, 3, 2, 1, 0]);
        assert_eq!(g.parity_disk(5), 4); // wraps
    }

    #[test]
    fn data_never_lands_on_parity_disk() {
        let g = geo();
        for unit in 0..200u64 {
            let e = g.map(unit * SU, SU);
            assert_ne!(e.data_disk, e.parity_disk, "unit {unit}");
        }
    }

    #[test]
    fn row_units_cover_all_non_parity_disks() {
        let g = geo();
        // Units 0..4 of row 0 must land on four distinct non-parity disks.
        let mut disks: Vec<usize> = (0..4).map(|u| g.map(u * SU, SU).data_disk).collect();
        disks.sort_unstable();
        assert_eq!(disks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn capacity_accounts_for_parity() {
        let g = geo();
        assert_eq!(g.logical_capacity(), 4 << 30);
        assert_eq!(g.rows(), (1 << 30) / SU);
    }

    #[test]
    fn split_tiles_exactly() {
        let g = geo();
        let exts = g.split(SU / 2, 3 * SU);
        let total: u64 = exts.iter().map(|e| e.bytes).sum();
        assert_eq!(total, 3 * SU);
        for e in &exts {
            assert!(e.bytes <= SU);
            assert!(e.offset + e.bytes <= 1 << 30);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn out_of_range_panics() {
        let g = geo();
        g.map(g.logical_capacity(), 1);
    }

    proptest! {
        #[test]
        fn prop_distinct_logical_units_distinct_physical(
            a in 0u64..24_000,
            b in 0u64..24_000,
        ) {
            prop_assume!(a != b);
            let g = Raid5Geometry::new(7, 16 * 1024, 64 << 20);
            prop_assume!((a + 1) * 16 * 1024 <= g.logical_capacity());
            prop_assume!((b + 1) * 16 * 1024 <= g.logical_capacity());
            let ea = g.map(a * 16 * 1024, 1);
            let eb = g.map(b * 16 * 1024, 1);
            prop_assert!(ea.data_disk != eb.data_disk || ea.offset != eb.offset);
        }

        #[test]
        fn prop_split_preserves_bytes(start in 0u64..(3u64 << 30), len in 1u64..(8u64 << 20)) {
            let g = Raid5Geometry::new(5, 64 * 1024, 1 << 30);
            prop_assume!(start + len <= g.logical_capacity());
            let exts = g.split(start, len);
            let total: u64 = exts.iter().map(|e| e.bytes).sum();
            prop_assert_eq!(total, len);
            // Logical continuity.
            let mut cur = start;
            for e in &exts {
                let expect = g.map(cur, 1);
                prop_assert_eq!(expect.data_disk, e.data_disk);
                prop_assert_eq!(expect.offset, e.offset);
                cur += e.bytes;
            }
        }
    }
}
