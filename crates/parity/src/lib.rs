#![warn(missing_docs)]
//! RoLo on parity-based storage — the paper's stated future work (§VII:
//! *"A study on the feasibility and efficiency of RoLo deployed in
//! parity-based storage systems will be conducted as our future work"*).
//!
//! On RAID5 the pain point is not idle mirrors (every disk holds data and
//! must keep spinning) but the **small-write penalty**: each in-place
//! write needs read-old-data, read-old-parity, write-data, write-parity —
//! four mostly random I/Os, two of them on the parity disk of the stripe.
//!
//! [`Rolo5Policy`] transplants RoLo's two mechanisms:
//!
//! * **rotated logging** — the free space of *all* array disks forms the
//!   logical logging pool; one on-duty logger at a time absorbs
//!   parity-update deltas as sequential appends (the write path becomes
//!   read-old + write-new on the data disk plus one sequential append);
//! * **decentralized destaging** — pending parity updates are applied
//!   (read-parity + write-parity) as background I/O in idle slots, per
//!   parity disk; when a parity disk's backlog drains, every delta
//!   segment destined for it — wherever it sits in the pool — is stale
//!   and is reclaimed, letting the logger rotate indefinitely.
//!
//! [`Raid5Policy`] is the in-place read-modify-write baseline. Both run
//! on the same driver/disk substrate as the RAID10 schemes, so the
//! comparison isolates the logging architecture. The `parity_study`
//! binary in `rolo-bench` reports the comparison.

pub mod degraded;
pub mod geometry;
pub mod raid5;
pub mod rolo5;

pub use degraded::{simulate_raid5_rebuild, Raid5RebuildReport};
pub use geometry::{Raid5Extent, Raid5Geometry};
pub use raid5::Raid5Policy;
pub use rolo5::Rolo5Policy;
