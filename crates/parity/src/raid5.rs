//! In-place RAID5 baseline: the classic small-write read-modify-write.
//!
//! Each sub-stripe write performs read-old-data + read-old-parity, then
//! write-data + write-parity (two dependent phases). Reads are single
//! I/Os. All disks stay ACTIVE/IDLE (every spindle holds data).

use crate::geometry::Raid5Geometry;
use rolo_core::ctx::SimCtx;
use rolo_core::policy::{Policy, PolicyStats};
use rolo_core::IoSlot;
use rolo_disk::{DiskId, DiskRequest, IoKind, Priority};
use rolo_sim::IoMap;
use rolo_trace::{ReqKind, TraceRecord};

#[derive(Debug, Clone, Copy)]
enum Tag {
    /// Direct user sub-request (reads).
    User(IoSlot),
    /// Phase-1 read of an RMW chain.
    ChainRead(u64),
    /// Phase-2 write of an RMW chain.
    ChainWrite(u64),
}

#[derive(Debug)]
struct Chain {
    user: IoSlot,
    data_disk: DiskId,
    data_offset: u64,
    parity_disk: DiskId,
    parity_offset: u64,
    bytes: u64,
    reads_left: u8,
    writes_left: u8,
}

/// The in-place RAID5 controller.
#[derive(Debug)]
pub struct Raid5Policy {
    geometry: Raid5Geometry,
    io_map: IoMap<Tag>,
    chains: IoMap<Chain>,
    next_chain: u64,
}

impl Raid5Policy {
    /// Creates the baseline controller over `geometry`.
    pub fn new(geometry: Raid5Geometry) -> Self {
        Raid5Policy {
            geometry,
            io_map: IoMap::default(),
            chains: IoMap::default(),
            next_chain: 0,
        }
    }

    /// The RAID5 geometry in use.
    pub fn geometry(&self) -> &Raid5Geometry {
        &self.geometry
    }
}

impl Policy for Raid5Policy {
    fn name(&self) -> &'static str {
        "RAID5"
    }

    fn initial_standby(&self, _disk: DiskId) -> bool {
        false
    }

    fn attach(&mut self, _ctx: &mut SimCtx) {}

    fn on_user_request(&mut self, ctx: &mut SimCtx, user_id: u64, rec: &TraceRecord) {
        let capacity = self.geometry.logical_capacity();
        let bytes = rec.bytes.min(capacity);
        let offset = rec.offset.min(capacity - bytes);
        let exts = self.geometry.split(offset, bytes);
        match rec.kind {
            ReqKind::Read => {
                let uslot = ctx.register_user(user_id, rec.kind, ctx.now, exts.len() as u32);
                for e in exts {
                    let id = ctx.submit(
                        e.data_disk,
                        IoKind::Read,
                        e.offset,
                        e.bytes,
                        Priority::Foreground,
                    );
                    self.io_map.insert(id, Tag::User(uslot));
                }
            }
            ReqKind::Write => {
                // One RMW chain per extent; the user completes when every
                // chain's phase-2 writes land.
                let uslot = ctx.register_user(user_id, rec.kind, ctx.now, exts.len() as u32);
                for e in exts {
                    let chain = self.next_chain;
                    self.next_chain += 1;
                    self.chains.insert(
                        chain,
                        Chain {
                            user: uslot,
                            data_disk: e.data_disk,
                            data_offset: e.offset,
                            parity_disk: e.parity_disk,
                            parity_offset: e.parity_offset,
                            bytes: e.bytes,
                            reads_left: 2,
                            writes_left: 2,
                        },
                    );
                    let r1 = ctx.submit(
                        e.data_disk,
                        IoKind::Read,
                        e.offset,
                        e.bytes,
                        Priority::Foreground,
                    );
                    self.io_map.insert(r1, Tag::ChainRead(chain));
                    let r2 = ctx.submit(
                        e.parity_disk,
                        IoKind::Read,
                        e.parity_offset,
                        e.bytes,
                        Priority::Foreground,
                    );
                    self.io_map.insert(r2, Tag::ChainRead(chain));
                }
            }
        }
    }

    fn on_io_complete(&mut self, ctx: &mut SimCtx, _disk: DiskId, req: DiskRequest) {
        match self.io_map.remove(&req.id).expect("unknown sub-request") {
            Tag::User(user) => {
                ctx.user_sub_done(user);
            }
            Tag::ChainRead(chain_id) => {
                let chain = self.chains.get_mut(&chain_id).expect("chain exists");
                chain.reads_left -= 1;
                if chain.reads_left == 0 {
                    let (dd, doff, pd, poff, len) = (
                        chain.data_disk,
                        chain.data_offset,
                        chain.parity_disk,
                        chain.parity_offset,
                        chain.bytes,
                    );
                    let w1 = ctx.submit(dd, IoKind::Write, doff, len, Priority::Foreground);
                    self.io_map.insert(w1, Tag::ChainWrite(chain_id));
                    let w2 = ctx.submit(pd, IoKind::Write, poff, len, Priority::Foreground);
                    self.io_map.insert(w2, Tag::ChainWrite(chain_id));
                }
            }
            Tag::ChainWrite(chain_id) => {
                let chain = self.chains.get_mut(&chain_id).expect("chain exists");
                chain.writes_left -= 1;
                if chain.writes_left == 0 {
                    let user = chain.user;
                    self.chains.remove(&chain_id);
                    ctx.user_sub_done(user);
                }
            }
        }
    }

    fn on_spin_up(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}
    fn on_spin_down(&mut self, _ctx: &mut SimCtx, _disk: DiskId) {}
    fn on_timer(&mut self, _ctx: &mut SimCtx, _token: u64) {}
    fn begin_drain(&mut self, _ctx: &mut SimCtx) {}

    fn is_drained(&self, ctx: &SimCtx) -> bool {
        ctx.outstanding_users() == 0 && self.chains.is_empty()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }

    fn check_consistency(&self, ctx: &SimCtx) -> Result<(), String> {
        if !self.chains.is_empty() {
            return Err(format!("{} RMW chains still open", self.chains.len()));
        }
        if !self.io_map.is_empty() {
            return Err(format!("{} orphaned sub-requests", self.io_map.len()));
        }
        if ctx.outstanding_users() != 0 {
            return Err(format!(
                "{} user requests unfinished",
                ctx.outstanding_users()
            ));
        }
        Ok(())
    }
}
