//! Behavioural tests of the RAID5 baseline and RoLo-5.

use rolo_core::{run_trace, Scheme, SimConfig};
use rolo_parity::{Raid5Geometry, Raid5Policy, Rolo5Policy};
use rolo_sim::Duration;
use rolo_trace::{Burstiness, SizeDist, SyntheticConfig};

fn cfg() -> SimConfig {
    // 8 disks; the scheme field is unused by the parity policies but the
    // driver sizes the array from pairs.
    let mut cfg = SimConfig::paper_default(Scheme::Raid10, 4);
    cfg.logger_region = 64 << 20;
    cfg
}

fn geometry(cfg: &SimConfig) -> Raid5Geometry {
    Raid5Geometry::new(cfg.disk_count(), cfg.stripe_unit, cfg.data_region())
}

fn workload(iops: f64, write_ratio: f64) -> SyntheticConfig {
    SyntheticConfig {
        iops,
        write_ratio,
        read_size: SizeDist::Fixed(16 * 1024),
        write_size: SizeDist::Fixed(16 * 1024),
        sequential_fraction: 0.3,
        write_footprint: 4 << 30,
        read_footprint: 4 << 30,
        read_hot_fraction: 0.5,
        hot_set_bytes: 16 << 20,
        burstiness: Burstiness::Smooth,
        batch_mean: 1.0,
        align: 4096,
    }
}

#[test]
fn raid5_serves_and_stays_consistent() {
    let cfg = cfg();
    let dur = Duration::from_secs(300);
    let wl = workload(60.0, 0.8);
    let report = run_trace(
        &cfg,
        wl.generator(dur, 1),
        Raid5Policy::new(geometry(&cfg)),
        dur,
    );
    report.consistency.as_ref().expect("consistent");
    assert!(report.user_requests > 10_000);
    assert_eq!(report.scheme, "RAID5");
    assert_eq!(report.spin_cycles, 0, "RAID5 keeps every disk spinning");
}

#[test]
fn rolo5_consistent_and_reclaims() {
    let cfg = cfg();
    let geo = geometry(&cfg);
    let dur = Duration::from_secs(600);
    let wl = workload(60.0, 1.0);
    let policy = Rolo5Policy::new(
        geo.clone(),
        cfg.data_region(),
        cfg.logger_region,
        0.02,
        64 * 1024,
    );
    let report = run_trace(&cfg, wl.generator(dur, 2), policy, dur);
    report.consistency.as_ref().expect("consistent");
    assert!(report.policy.rotations > 0, "logger must rotate");
    assert!(report.policy.log_appended_bytes > 0);
    assert!(report.policy.destaged_bytes > 0);
}

#[test]
fn rolo5_spends_less_disk_time_than_raid5() {
    // The transplant's measurable win: three I/Os per write (read +
    // in-place write + append) cost less total media time than RAID5's
    // four-op read-modify-write — RoLo-5's aggregate ACTIVE disk time is
    // lower. Its *latency*, however, suffers because appends to
    // data-carrying disks keep losing sequentiality (§VII study finding;
    // see the parity_study binary), so we bound rather than reverse it.
    let cfg = cfg();
    let dur = Duration::from_secs(400);
    let wl = workload(150.0, 1.0);
    let base = run_trace(
        &cfg,
        wl.generator(dur, 3),
        Raid5Policy::new(geometry(&cfg)),
        dur,
    );
    let rolo = run_trace(
        &cfg,
        wl.generator(dur, 3),
        Rolo5Policy::new(
            geometry(&cfg),
            cfg.data_region(),
            cfg.logger_region,
            0.02,
            64 * 1024,
        ),
        dur,
    );
    base.consistency.as_ref().expect("raid5 consistent");
    rolo.consistency.as_ref().expect("rolo5 consistent");
    let base_busy = base.aggregate_energy.active.as_secs_f64();
    let rolo_busy = rolo.aggregate_energy.active.as_secs_f64();
    assert!(
        rolo_busy < base_busy,
        "RoLo-5 busy {rolo_busy:.1}s !< RAID5 busy {base_busy:.1}s"
    );
    // Latency penalty stays bounded at moderate load.
    assert!(
        rolo.write_responses.mean() < base.write_responses.mean() * 6,
        "RoLo-5 {:?} vs RAID5 {:?}",
        rolo.write_responses.mean(),
        base.write_responses.mean()
    );
}

#[test]
fn rolo5_survives_overload_by_deactivating() {
    let mut cfg = cfg();
    cfg.logger_region = 8 << 20;
    let dur = Duration::from_secs(120);
    let wl = workload(400.0, 1.0);
    let policy = Rolo5Policy::new(
        geometry(&cfg),
        cfg.data_region(),
        cfg.logger_region,
        0.02,
        64 * 1024,
    );
    let report = run_trace(&cfg, wl.generator(dur, 4), policy, dur);
    report
        .consistency
        .as_ref()
        .expect("consistent after overload");
    assert!(
        report.policy.deactivations > 0
            || report.policy.direct_writes > 0
            || report.policy.rotations > 5,
        "overload must trigger fallback behaviour: {:?}",
        report.policy
    );
}

#[test]
fn rolo5_deterministic() {
    let cfg = cfg();
    let dur = Duration::from_secs(120);
    let wl = workload(50.0, 0.9);
    let run = |seed| {
        run_trace(
            &cfg,
            wl.generator(dur, seed),
            Rolo5Policy::new(
                geometry(&cfg),
                cfg.data_region(),
                cfg.logger_region,
                0.02,
                64 * 1024,
            ),
            dur,
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.total_energy_j, b.total_energy_j);
    assert_eq!(a.responses.mean(), b.responses.mean());
}

#[test]
fn mixed_read_write_consistency() {
    let cfg = cfg();
    let dur = Duration::from_secs(300);
    for write_ratio in [0.2, 0.5, 0.95] {
        let wl = workload(40.0, write_ratio);
        let policy = Rolo5Policy::new(
            geometry(&cfg),
            cfg.data_region(),
            cfg.logger_region,
            0.02,
            64 * 1024,
        );
        let report = run_trace(&cfg, wl.generator(dur, 11), policy, dur);
        report
            .consistency
            .as_ref()
            .unwrap_or_else(|e| panic!("wr={write_ratio}: {e}"));
        assert!(report.read_responses.count() > 0);
    }
}

#[test]
fn nvram_staging_beats_raid5_on_latency_too() {
    // With the classic Parity Logging fix — durable NVRAM staging of the
    // deltas — the foreground write is read-old + write-new only, and
    // RoLo-5 wins on latency as well as media time.
    let cfg = cfg();
    let dur = Duration::from_secs(400);
    let wl = workload(150.0, 1.0);
    let base = run_trace(
        &cfg,
        wl.generator(dur, 13),
        Raid5Policy::new(geometry(&cfg)),
        dur,
    );
    let mut p = Rolo5Policy::with_loggers(
        geometry(&cfg),
        cfg.data_region(),
        cfg.logger_region,
        0.02,
        cfg.destage_chunk,
        2,
    );
    p.enable_nvram(1 << 20);
    let nv = run_trace(&cfg, wl.generator(dur, 13), p, dur);
    base.consistency.as_ref().expect("raid5 consistent");
    nv.consistency.as_ref().expect("nvram consistent");
    assert!(
        nv.write_responses.mean() < base.write_responses.mean(),
        "RoLo-5+NVRAM {:?} !< RAID5 {:?}",
        nv.write_responses.mean(),
        base.write_responses.mean()
    );
    assert!(
        nv.policy.log_appended_bytes > 0,
        "deltas still reach the log"
    );
}
